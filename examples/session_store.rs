//! A concurrent web-session store — the paper's *mixed workload*
//! (70% search / 20% insert / 10% delete) in application form, served
//! from a [`ShardedMap`]: the same front end the `nmbst-server` crate
//! puts behind a socket.
//!
//! Front-end threads look sessions up on every request; login handlers
//! create sessions; logout/expiry removes them. Every thread drives the
//! store through its own [`ShardedMapHandle`] (per-shard pinned
//! cursors), and the run ends with the store's *aggregated* metrics —
//! exact because dropping a handle flushes its batched counters.
//!
//! ```text
//! cargo run --release --example session_store
//! ```

use nmbst::{ShardedMap, DEFAULT_SHARD_COUNT};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
#[allow(dead_code)] // `user`/`issued_ms` document the payload; only `scopes` is read
struct Session {
    user: u64,
    issued_ms: u64,
    scopes: u32,
}

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn main() {
    const SESSION_SPACE: u64 = 50_000;
    const FRONTENDS: u64 = 6;
    const AUTH_WORKERS: u64 = 2;
    let mut store: ShardedMap<u64, Session> = ShardedMap::new();
    let epoch = Instant::now();

    // Seed half the session space, like the paper pre-populates trees.
    // One `bulk_extend` routes every pair to its shard's O(n) bulk
    // path; duplicate ids collapse first-wins, so overdraw the stream
    // until enough *distinct* ids accumulated.
    let mut seed = 1u64;
    let mut seen = vec![false; SESSION_SPACE as usize];
    let mut pairs = Vec::new();
    while pairs.len() < (SESSION_SPACE / 2) as usize {
        let id = splitmix(&mut seed) % SESSION_SPACE;
        if !std::mem::replace(&mut seen[id as usize], true) {
            pairs.push((
                id,
                Session {
                    user: id ^ 0xABCD,
                    issued_ms: 0,
                    scopes: 0b111,
                },
            ));
        }
    }
    store.bulk_extend(pairs);
    let store = store; // shared from here on

    let stop = AtomicBool::new(false);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let logins = AtomicU64::new(0);
    let logouts = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Front-end request handlers: mostly lookups, each through its
        // own per-shard-pinned handle.
        for t in 0..FRONTENDS {
            let store = &store;
            let stop = &stop;
            let hits = &hits;
            let misses = &misses;
            s.spawn(move || {
                let mut h = store.handle();
                let mut rng = 0x1000 + t;
                while !stop.load(Ordering::Relaxed) {
                    let id = splitmix(&mut rng) % SESSION_SPACE;
                    // Zero-copy authorization check under the guard.
                    match h.with_value(&id, |sess| sess.scopes & 0b001 != 0) {
                        Some(_authorized) => hits.fetch_add(1, Ordering::Relaxed),
                        None => misses.fetch_add(1, Ordering::Relaxed),
                    };
                }
                // Dropping `h` flushes its batched op counts into the
                // store's aggregated metrics.
            });
        }
        // Auth workers: logins (inserts) and logouts/expiry (deletes).
        for t in 0..AUTH_WORKERS {
            let store = &store;
            let stop = &stop;
            let logins = &logins;
            let logouts = &logouts;
            let epoch = &epoch;
            s.spawn(move || {
                let mut h = store.handle();
                let mut rng = 0x2000 + t;
                while !stop.load(Ordering::Relaxed) {
                    let r = splitmix(&mut rng);
                    let id = r % SESSION_SPACE;
                    if r & 0b11 != 0 {
                        // 3/4 logins
                        let sess = Session {
                            user: id ^ 0xABCD,
                            issued_ms: epoch.elapsed().as_millis() as u64,
                            scopes: (r >> 32) as u32 & 0b111,
                        };
                        if h.insert(id, sess) {
                            logins.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if h.remove(&id) {
                        logouts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(h);
                store.flush(); // hand retired sessions to the collector
            });
        }

        std::thread::sleep(Duration::from_millis(750));
        stop.store(true, Ordering::Relaxed);
    });

    let elapsed = epoch.elapsed().as_secs_f64();
    let h = hits.load(Ordering::Relaxed);
    let m = misses.load(Ordering::Relaxed);
    println!(
        "ran {FRONTENDS} front-ends + {AUTH_WORKERS} auth workers over {} shards for {elapsed:.2}s",
        DEFAULT_SHARD_COUNT
    );
    println!(
        "lookups : {h} hits / {m} misses ({:.1}% hit rate)",
        100.0 * h as f64 / (h + m).max(1) as f64
    );
    println!("logins  : {}", logins.load(Ordering::Relaxed));
    println!("logouts : {}", logouts.load(Ordering::Relaxed));
    println!("sessions live at shutdown: {}", store.count());
    println!(
        "total ops: {:.2}M ({:.2} Mops/s)",
        (h + m + logins.load(Ordering::Relaxed) + logouts.load(Ordering::Relaxed)) as f64 / 1e6,
        (h + m) as f64 / elapsed / 1e6
    );

    // The aggregated snapshot sums every shard; every handle above has
    // been dropped, so the counters are exact, not estimates.
    let snap = store.metrics();
    println!(
        "metrics : searches {} inserted {} removed {} size_estimate {}",
        snap.searches, snap.inserted, snap.removed, snap.size_estimate
    );
    assert_eq!(snap.searches, h + m, "drop-flush makes the counts exact");
    assert_eq!(snap.size_estimate as usize, store.count());
}
