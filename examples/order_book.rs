//! A price-level index for a limit order book — the paper's
//! *write-dominated* workload (≈50% insert / 50% delete) in application
//! form, plus ordered traversal for top-of-book queries.
//!
//! Each side of the book is an `NmTreeSet<u64>` of active price levels
//! (prices in ticks). Matching engines add a level when the first order
//! arrives at a price and remove it when the last order leaves — pure
//! insert/delete churn, exactly the regime where the NM algorithm's
//! single-CAS insert and three-atomic delete shine (Figure 4, left
//! column).
//!
//! ```text
//! cargo run --release --example order_book
//! ```

use nmbst::NmTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const TICKS: u64 = 4_096; // price grid
const MID: u64 = TICKS / 2;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn main() {
    let bids: NmTreeSet<u64> = NmTreeSet::new();
    let asks: NmTreeSet<u64> = NmTreeSet::new();

    // Seed a plausible book around the mid price.
    for d in 1..200 {
        bids.insert(MID - d);
        asks.insert(MID + d);
    }

    let stop = AtomicBool::new(false);
    let churn_ops = AtomicU64::new(0);
    let snapshots = AtomicU64::new(0);
    let t0 = Instant::now();

    std::thread::scope(|s| {
        // Matching engines: create/clear price levels near the mid.
        for t in 0..6u64 {
            let bids = &bids;
            let asks = &asks;
            let stop = &stop;
            let churn_ops = &churn_ops;
            s.spawn(move || {
                let mut rng = 0xB00C + t;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    // Price levels cluster near the mid (geometric-ish).
                    let depth = (r >> 48).trailing_zeros() as u64 * 13 % 400 + 1;
                    let (side, price) = if r & 1 == 0 {
                        (bids, MID.saturating_sub(depth).max(1))
                    } else {
                        (asks, (MID + depth).min(TICKS - 1))
                    };
                    if r & 2 == 0 {
                        side.insert(price);
                    } else {
                        side.remove(&price);
                    }
                    ops += 1;
                }
                churn_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Market-data thread: periodic ordered snapshots of each side.
        {
            let bids = &bids;
            let asks = &asks;
            let stop = &stop;
            let snapshots = &snapshots;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Best bid = max key; best ask = min key. for_each is
                    // ascending, so track the last/first seen.
                    let mut best_bid = None;
                    bids.for_each(|p| best_bid = Some(*p));
                    let mut best_ask = None;
                    asks.for_each(|p| {
                        if best_ask.is_none() {
                            best_ask = Some(*p);
                        }
                    });
                    if let (Some(b), Some(a)) = (best_bid, best_ask) {
                        // The book may be transiently crossed from the
                        // snapshot's weak consistency; that is expected
                        // and what real feeds debounce.
                        std::hint::black_box((b, a));
                    }
                    snapshots.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(750));
        stop.store(true, Ordering::Relaxed);
    });

    let secs = t0.elapsed().as_secs_f64();
    let ops = churn_ops.load(Ordering::Relaxed);
    println!(
        "churned {ops} level updates in {secs:.2}s ({:.2} Mops/s)",
        ops as f64 / secs / 1e6
    );
    println!(
        "market-data snapshots taken: {}",
        snapshots.load(Ordering::Relaxed)
    );
    println!(
        "book at close: {} bid levels, {} ask levels",
        bids.count(),
        asks.count()
    );

    // Deterministic post-run check: both sides stay inside the grid.
    bids.for_each(|p| assert!((1..MID).contains(p)));
    asks.for_each(|p| assert!((MID + 1..TICKS).contains(p)));
    println!("post-run range invariants: ok");
}
