//! A price-level index for a limit order book — the paper's
//! *write-dominated* workload (≈50% insert / 50% delete) in application
//! form, plus ordered traversal for top-of-book queries.
//!
//! Each side of the book is a [`ShardedSet<u64>`] of active price
//! levels (prices in ticks): hash-sharded for write throughput, while
//! `range_for_each` still merges the shards into one globally ascending
//! pass for the market-data feed. Matching engines drive their side
//! through a [`nmbst::ShardedSetHandle`], using the batch entry points
//! for quote-ladder refreshes — pure insert/delete churn, exactly the
//! regime where the NM algorithm's single-CAS insert and three-atomic
//! delete shine (Figure 4, left column).
//!
//! ```text
//! cargo run --release --example order_book
//! ```

use nmbst::ShardedSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const TICKS: u64 = 4_096; // price grid
const MID: u64 = TICKS / 2;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn main() {
    let bids: ShardedSet<u64> = ShardedSet::with_shards(4);
    let asks: ShardedSet<u64> = ShardedSet::with_shards(4);

    // Seed a plausible book around the mid price.
    for d in 1..200 {
        bids.insert(MID - d);
        asks.insert(MID + d);
    }

    let stop = AtomicBool::new(false);
    let churn_ops = AtomicU64::new(0);
    let snapshots = AtomicU64::new(0);
    let t0 = Instant::now();

    std::thread::scope(|s| {
        // Matching engines: create/clear price levels near the mid.
        for t in 0..6u64 {
            let bids = &bids;
            let asks = &asks;
            let stop = &stop;
            let churn_ops = &churn_ops;
            s.spawn(move || {
                let mut bid_h = bids.handle();
                let mut ask_h = asks.handle();
                let mut rng = 0xB00C + t;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let r = xorshift(&mut rng);
                    // Price levels cluster near the mid (geometric-ish).
                    let depth = (r >> 48).trailing_zeros() as u64 * 13 % 400 + 1;
                    if r & 0xFF == 0 {
                        // Occasional quote refresh: replace a ladder of
                        // levels on one side in two batched calls.
                        let (side, sign) = if r & 1 == 0 {
                            (&mut bid_h, -1i64)
                        } else {
                            (&mut ask_h, 1i64)
                        };
                        let rung = |i: u64| {
                            let p = MID as i64 + sign * (depth + 3 * i) as i64;
                            (p.clamp(1, TICKS as i64 - 1)) as u64
                        };
                        ops += side.insert_batch((0..8).map(rung)) as u64;
                        ops += side.remove_batch((8..16).map(rung)) as u64;
                    } else {
                        let (side, price) = if r & 1 == 0 {
                            (&mut bid_h, MID.saturating_sub(depth).max(1))
                        } else {
                            (&mut ask_h, (MID + depth).min(TICKS - 1))
                        };
                        if r & 2 == 0 {
                            side.insert(price);
                        } else {
                            side.remove(&price);
                        }
                        ops += 1;
                    }
                }
                churn_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Market-data thread: periodic ordered snapshots of each side.
        {
            let bids = &bids;
            let asks = &asks;
            let stop = &stop;
            let snapshots = &snapshots;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // `range_for_each` merges all shards and visits in
                    // ascending order: best bid = last key below the
                    // mid, best ask = first key at/above it.
                    let mut best_bid = None;
                    bids.range_for_each(1..MID, |p| best_bid = Some(*p));
                    let mut best_ask = None;
                    asks.range_for_each(MID..TICKS, |p| {
                        if best_ask.is_none() {
                            best_ask = Some(*p);
                        }
                    });
                    if let (Some(b), Some(a)) = (best_bid, best_ask) {
                        // The book may be transiently crossed from the
                        // snapshot's weak consistency; that is expected
                        // and what real feeds debounce.
                        std::hint::black_box((b, a));
                    }
                    snapshots.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(750));
        stop.store(true, Ordering::Relaxed);
    });

    let secs = t0.elapsed().as_secs_f64();
    let ops = churn_ops.load(Ordering::Relaxed);
    println!(
        "churned {ops} level updates in {secs:.2}s ({:.2} Mops/s)",
        ops as f64 / secs / 1e6
    );
    println!(
        "market-data snapshots taken: {}",
        snapshots.load(Ordering::Relaxed)
    );
    println!(
        "book at close: {} bid levels, {} ask levels ({} shards/side)",
        bids.count(),
        asks.count(),
        bids.shard_count()
    );

    // Deterministic post-run checks: both sides stay inside the grid,
    // in merged ascending order, and every shard's tree is well-formed.
    let mut last = 0;
    bids.for_each(|p| {
        assert!((1..MID).contains(p));
        assert!(*p > last || last == 0, "merged traversal stays sorted");
        last = *p;
    });
    asks.for_each(|p| assert!((MID..TICKS).contains(p)));
    let mut bids = bids;
    bids.check_invariants().expect("bid shards well-formed");
    println!("post-run range + shard invariants: ok");
}
