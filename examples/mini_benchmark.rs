//! A miniature Figure 4: compares all five implementations on one panel
//! using the `nmbst-harness` API directly. The full-grid regenerator is
//! `cargo run --release -p nmbst-bench --bin figure4`.
//!
//! ```text
//! cargo run --release --example mini_benchmark
//! ```

use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree, locked::LockedBTreeSet};
use nmbst_harness::adapter::{ConcurrentSet, NmEbr, NmLeaky};
use nmbst_harness::report::{fmt_mops, Table};
use nmbst_harness::{run_throughput, BenchConfig, Workload};
use std::time::Duration;

fn row<S: ConcurrentSet>(cfg: &BenchConfig) -> (&'static str, f64) {
    let r = run_throughput::<S>(cfg);
    (S::label(), r.mops())
}

fn main() {
    let cfg = BenchConfig {
        threads: 4,
        key_range: 10_000,
        workload: Workload::WRITE_DOMINATED,
        duration: Duration::from_millis(400),
        seed: 0x5EED,
        dist: nmbst_harness::runner::KeyDist::Uniform,
    };
    println!(
        "mini Figure 4 panel: {} threads, {} keys, {}",
        cfg.threads, cfg.key_range, cfg.workload.name
    );

    let mut table = Table::new(vec!["algorithm", "Mops/s"]);
    for (label, mops) in [
        row::<NmLeaky>(&cfg),
        row::<NmEbr>(&cfg),
        row::<EfrbTree>(&cfg),
        row::<HjTree>(&cfg),
        row::<BccoTree>(&cfg),
        row::<LockedBTreeSet>(&cfg),
    ] {
        table.push_row(vec![label.to_string(), fmt_mops(mops)]);
    }
    println!("{}", table.render());
    println!("note: NM-BST(ebr) shows the cost of real memory reclamation");
    println!("      relative to the paper's leak-everything regime (NM-BST).");
}
