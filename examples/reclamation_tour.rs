//! A tour of the memory-reclamation substrate (`nmbst-reclaim`),
//! implemented from scratch for this reproduction.
//!
//! The paper assumes removed nodes are never reclaimed (§3.2) and its
//! evaluation leaks in all implementations (§4). This example shows the
//! three schemes a real deployment chooses from, and the Treiber stack
//! that demonstrates hazard pointers where they *are* sound.
//!
//! ```text
//! cargo run --release --example reclamation_tour
//! ```

use nmbst::NmTreeSet;
use nmbst_reclaim::{Ebr, Leaky, Reclaim, RetireGuard, TreiberStack};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    // ---------- 1. Leaky: the paper's benchmark regime ----------------
    let leaky_set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    for k in 0..10_000 {
        leaky_set.insert(k);
    }
    for k in 0..10_000 {
        leaky_set.remove(&k);
    }
    println!("Leaky: 10k inserted+removed; removed nodes intentionally leaked");

    // ---------- 2. EBR: the production default ------------------------
    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let freed = Arc::new(AtomicUsize::new(0));
    {
        let map: nmbst::NmTreeMap<u64, Tracked, Ebr> = nmbst::NmTreeMap::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = &map;
                let freed = &freed;
                s.spawn(move || {
                    for i in 0..2_500 {
                        let k = t * 2_500 + i;
                        map.insert(k, Tracked(Arc::clone(freed)));
                        map.remove(&k);
                    }
                    map.flush(); // hand this thread's garbage to the collector
                });
            }
        });
        println!(
            "EBR: after churn, {} of 10000 removed values already freed while the tree lives",
            freed.load(Ordering::Relaxed)
        );
    }
    assert_eq!(freed.load(Ordering::Relaxed), 10_000);
    println!("EBR: all 10000 freed exactly once by tree drop");

    // ---------- 3. Raw EBR usage (for your own structures) ------------
    let ebr = Ebr::new();
    let guard = ebr.pin();
    let ptr = Box::into_raw(Box::new([0u8; 64]));
    // ... unlink `ptr` from your structure, then:
    unsafe { guard.retire(ptr) };
    drop(guard);
    drop(ebr); // frees everything pending
    println!("raw EBR: pin / retire / drop cycle ok");

    // ---------- 4. Hazard pointers, where they are sound ---------------
    // (Not the tree: NM-BST seeks walk through marked nodes, which plain
    // hazard validation cannot handle — see nmbst_reclaim::hazard docs.)
    let stack = TreiberStack::new();
    std::thread::scope(|s| {
        for t in 0..4 {
            let stack = &stack;
            s.spawn(move || {
                let handle = stack.register();
                for i in 0..50_000 {
                    stack.push(t * 50_000 + i);
                    if i % 2 == 0 {
                        stack.pop(&handle);
                    }
                }
            });
        }
    });
    let handle = stack.register();
    let mut drained = 0;
    while stack.pop(&handle).is_some() {
        drained += 1;
    }
    println!("hazard-pointer Treiber stack: drained {drained} remaining elements");
    assert_eq!(drained, 4 * 25_000);
}
