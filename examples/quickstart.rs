//! Quickstart: the paper's dictionary ADT in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nmbst::{NmTreeMap, NmTreeSet, TagMode};
use nmbst_reclaim::Leaky;

fn main() {
    // --- the set (the ADT of §2: search / insert / delete) -----------
    let set: NmTreeSet<u64> = NmTreeSet::new(); // epoch-reclaimed by default
    assert!(set.insert(42));
    assert!(!set.insert(42)); // duplicates rejected
    assert!(set.contains(&42));
    assert!(set.remove(&42));
    assert!(!set.remove(&42));
    println!("single-threaded set semantics: ok");

    // --- lock-free concurrency ---------------------------------------
    // Ten threads hammer overlapping ranges; no locks anywhere.
    std::thread::scope(|s| {
        for t in 0..10u64 {
            let set = &set;
            s.spawn(move || {
                for i in 0..10_000 {
                    let k = (t * 7919 + i) % 5_000;
                    if i % 3 == 0 {
                        set.remove(&k);
                    } else {
                        set.insert(k);
                    }
                }
            });
        }
    });
    println!(
        "after 100k contended ops: {} keys, all invariants hold",
        set.count()
    );

    // --- the map variant ----------------------------------------------
    let map: NmTreeMap<String, Vec<u8>> = NmTreeMap::new();
    map.insert("alpha".into(), vec![1, 2, 3]);
    map.insert("beta".into(), vec![4, 5]);
    // Zero-copy reads under an internal reclamation guard:
    let total: usize = map.with_value(&"alpha".to_string(), |v| v.len()).unwrap();
    assert_eq!(total, 3);
    // Ascending-order traversal (weakly consistent under concurrency):
    map.for_each(|k, v| println!("  {k} -> {} bytes", v.len()));

    // --- choosing a reclamation scheme ---------------------------------
    // `Leaky` reproduces the paper's benchmark regime: retired nodes are
    // never freed. Use it for measurements, never for long-running
    // services.
    let bench_set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    bench_set.insert(1);

    // --- the CAS-only variant (§6) --------------------------------------
    let cas_only: NmTreeSet<u64> = NmTreeSet::with_tag_mode(TagMode::CasLoop);
    cas_only.insert(7);
    assert!(cas_only.remove(&7));
    println!("CAS-only variant: ok");
}
