//! Long-running soak tests, `#[ignore]`d by default. Run explicitly:
//!
//! ```text
//! cargo test --release --test soak -- --ignored --test-threads=1
//! ```
//!
//! These shake out rare interleavings (helping chains, deep splices,
//! reclamation races) that the second-scale CI tests may miss.

use nmbst::NmTreeSet;
use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
use nmbst_reclaim::Ebr;
use std::sync::atomic::{AtomicI64, Ordering};

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Generic conservation soak: heavy churn on a tiny key space.
macro_rules! soak {
    ($name:ident, $make:expr, $insert:expr, $remove:expr, $contains:expr) => {
        #[test]
        #[ignore = "soak test: minutes of runtime; run with --ignored"]
        fn $name() {
            const THREADS: usize = 12;
            const OPS: usize = 400_000;
            const SPACE: u64 = 48;
            let set = $make;
            let balance: Vec<AtomicI64> = (0..SPACE).map(|_| AtomicI64::new(0)).collect();
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let set = &set;
                    let balance = &balance;
                    s.spawn(move || {
                        let mut x = 0x6A09E667F3BCC909u64 ^ ((t as u64) << 17) | 1;
                        for _ in 0..OPS {
                            let r = xorshift(&mut x);
                            let k = r % SPACE + 1;
                            if r & 8 == 0 {
                                if $insert(set, k) {
                                    balance[(k - 1) as usize].fetch_add(1, Ordering::Relaxed);
                                }
                            } else if r & 4 == 0 {
                                if $remove(set, k) {
                                    balance[(k - 1) as usize].fetch_sub(1, Ordering::Relaxed);
                                }
                            } else {
                                std::hint::black_box($contains(set, k));
                            }
                        }
                    });
                }
            });
            for k in 1..=SPACE {
                let b = balance[(k - 1) as usize].load(Ordering::Relaxed);
                assert!(b == 0 || b == 1, "key {k} balance {b}");
                assert_eq!($contains(&set, k), b == 1, "membership of {k}");
            }
        }
    };
}

soak!(
    soak_nm_ebr,
    NmTreeSet::<u64, Ebr>::new(),
    |s: &NmTreeSet<u64, Ebr>, k| s.insert(k),
    |s: &NmTreeSet<u64, Ebr>, k: u64| s.remove(&k),
    |s: &NmTreeSet<u64, Ebr>, k: u64| s.contains(&k)
);

soak!(
    soak_efrb,
    EfrbTree::new(),
    |s: &EfrbTree, k| s.insert(k),
    |s: &EfrbTree, k: u64| s.remove(&k),
    |s: &EfrbTree, k: u64| s.contains(&k)
);

soak!(
    soak_hj,
    HjTree::new(),
    |s: &HjTree, k| s.insert(k),
    |s: &HjTree, k: u64| s.remove(&k),
    |s: &HjTree, k: u64| s.contains(&k)
);

soak!(
    soak_bcco,
    BccoTree::new(),
    |s: &BccoTree, k| s.insert(k),
    |s: &BccoTree, k: u64| s.remove(&k),
    |s: &BccoTree, k: u64| s.contains(&k)
);

/// Wide schedule-exploration sweep: the per-PR gate in
/// `tests/chaos_explorer.rs` covers a small seed window; this covers
/// thousands. `NMBST_EXPLORE_SEEDS` overrides the seed count.
#[test]
#[ignore = "soak test: minutes of runtime; run with --ignored"]
fn soak_explorer_wide_seed_sweep() {
    use nmbst_lincheck::explore::{explore_many, ExploreConfig};
    let seeds: u64 = std::env::var("NMBST_EXPLORE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_096);
    let stats = explore_many(&ExploreConfig::default(), 0..seeds).unwrap_or_else(|v| {
        // Dump the flight-recorder postmortem where CI can pick it up as
        // an artifact before failing the test.
        let path = std::env::var("NMBST_POSTMORTEM_PATH")
            .unwrap_or_else(|_| "target/postmortem.txt".into());
        let _ = std::fs::write(&path, v.postmortem());
        panic!("explorer found a real violation (postmortem: {path}): {v}");
    });
    assert_eq!(stats.schedules as u64, seeds);
    println!(
        "explored {} schedules ({} events) — clean",
        stats.schedules, stats.events
    );
}

/// Memory soak: sustained churn with EBR must not grow memory without
/// bound — asserted indirectly by counting live tracked values.
#[test]
#[ignore = "soak test: minutes of runtime; run with --ignored"]
fn soak_reclamation_bounded_garbage() {
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    struct Tracked(Arc<AtomicUsize>);
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let live = Arc::new(AtomicUsize::new(0));
    let map: nmbst::NmTreeMap<u64, Tracked, Ebr> = nmbst::NmTreeMap::new();
    const ROUNDS: usize = 200;
    const SPACE: u64 = 2_000;
    for round in 0..ROUNDS {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = &map;
                let live = &live;
                s.spawn(move || {
                    for i in 0..SPACE / 4 {
                        let k = t * (SPACE / 4) + i;
                        live.fetch_add(1, Ordering::Relaxed);
                        if !map.insert(k, Tracked(Arc::clone(live))) {
                            // rejected duplicate: its value dropped now
                        }
                        map.remove(&k);
                    }
                    map.flush();
                });
            }
        });
        // After each quiescent round + flushes, live values must be
        // (nearly) zero: bounded by one thread-local bag per thread.
        let l = live.load(Ordering::Relaxed);
        assert!(
            l <= 4 * 64,
            "round {round}: {l} values still live — reclamation is lagging unboundedly"
        );
    }
    drop(map);
    assert_eq!(live.load(Ordering::Relaxed), 0);
}
