//! Mechanical linearizability checking of `NmTreeMap`'s *value-bearing*
//! operations (`insert(k, v)`, `remove_get`, `get`) — stronger than the
//! set checks: stamped values let the checker catch value mix-ups (a
//! remove returning another insert's payload), not just membership
//! errors.

use nmbst::NmTreeMap;
use nmbst_lincheck::spec::{check_history, GenEvent, MapOp, MapRet, MapSpec};
use nmbst_reclaim::Ebr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const THREADS: u64 = 3;
const OPS_PER_THREAD: u64 = 6;
const KEY_SPACE: u64 = 3;
const TRIALS: u64 = 120;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

#[test]
fn map_histories_with_values_are_linearizable() {
    for trial in 0..TRIALS {
        let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        let clock = AtomicU64::new(0);
        let stamp_gen = AtomicU64::new(1);
        let all: Mutex<Vec<GenEvent<MapSpec>>> = Mutex::new(Vec::new());

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let map = &map;
                let clock = &clock;
                let stamp_gen = &stamp_gen;
                let all = &all;
                s.spawn(move || {
                    let mut rng = trial * 7_368_787 + t * 104_729 + 1;
                    let mut local = Vec::new();
                    for _ in 0..OPS_PER_THREAD {
                        let r = xorshift(&mut rng);
                        let key = r % KEY_SPACE + 1;
                        let (op, run): (MapOp, Box<dyn FnOnce() -> MapRet>) = match r % 3 {
                            0 => {
                                // Globally unique stamp per insert.
                                let stamp = stamp_gen.fetch_add(1, Ordering::Relaxed);
                                (
                                    MapOp::Insert(key, stamp),
                                    Box::new(move || MapRet::Inserted(map.insert(key, stamp))),
                                )
                            }
                            1 => (
                                MapOp::Remove(key),
                                Box::new(move || MapRet::Removed(map.remove_get(&key))),
                            ),
                            _ => (
                                MapOp::Get(key),
                                Box::new(move || MapRet::Got(map.get(&key))),
                            ),
                        };
                        let invoke = clock.fetch_add(1, Ordering::AcqRel);
                        let ret = run();
                        let response = clock.fetch_add(1, Ordering::AcqRel);
                        local.push(GenEvent {
                            op,
                            ret,
                            invoke,
                            response,
                        });
                    }
                    all.lock().unwrap().extend(local);
                });
            }
        });

        let history = all.into_inner().unwrap();
        assert!(
            check_history(&MapSpec, &history).is_some(),
            "trial {trial}: non-linearizable map history:\n{history:#?}"
        );
    }
}

#[test]
fn checker_catches_value_swap() {
    // Feed the checker a corrupted history: remove reports a stamp that
    // was never inserted under that key.
    let h = vec![
        GenEvent::<MapSpec> {
            op: MapOp::Insert(1, 10),
            ret: MapRet::Inserted(true),
            invoke: 0,
            response: 1,
        },
        GenEvent::<MapSpec> {
            op: MapOp::Remove(1),
            ret: MapRet::Removed(Some(11)),
            invoke: 2,
            response: 3,
        },
    ];
    assert!(check_history(&MapSpec, &h).is_none());
}
