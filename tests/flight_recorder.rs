//! Acceptance tests for the flight recorder (ISSUE 3 tentpole): the
//! capture-scoped structural-event trace must be deterministic under the
//! seeded schedule explorer, and a forced helping-protocol bug must
//! yield a postmortem artifact naming the delete protocol's steps in
//! sequence order.

use nmbst::obs::{EventKind, FlightRecorder};
use nmbst::{NmTreeSet, TreeConfig};
use nmbst_lincheck::explore::{explore_many, explore_seed, ExploreConfig};
use nmbst_reclaim::Leaky;

/// Same config + same seed ⇒ byte-identical rendered trace. The
/// explorer's cooperative scheduler serializes every recording thread,
/// so the merged trace is a pure function of the seed.
#[test]
fn same_seed_renders_byte_identical_trace() {
    let cfg = ExploreConfig::default();
    for seed in [0u64, 1, 0xDEAD_BEEF, 42] {
        let a = explore_seed(&cfg, seed).expect("clean run");
        let b = explore_seed(&cfg, seed).expect("clean run");
        assert_eq!(a.trace, b.trace, "seed {seed:#x}: trace diverged");
        let render_a: String = a.trace.iter().map(|e| format!("{e}\n")).collect();
        let render_b: String = b.trace.iter().map(|e| format!("{e}\n")).collect();
        assert_eq!(render_a, render_b);
        assert!(
            !a.trace.is_empty(),
            "seed {seed:#x}: a run with inserts and removes must record structural events"
        );
    }
}

/// Different seeds produce different traces (sanity: the trace actually
/// reflects the schedule rather than some fixed sequence).
#[test]
fn different_seeds_diverge() {
    let cfg = ExploreConfig::default();
    let a = explore_seed(&cfg, 3).expect("clean run");
    let b = explore_seed(&cfg, 4).expect("clean run");
    assert_ne!(a.trace, b.trace);
}

/// The payoff path: force `Bug::DropFlagOnSplice`, let the explorer find
/// a violating seed, and check the postmortem artifact names the delete
/// protocol's InjectFlag → TagSibling → Splice steps in sequence order.
#[test]
fn violation_postmortem_names_the_delete_protocol_steps() {
    let cfg = ExploreConfig {
        inject_drop_flag_bug: true,
        ..ExploreConfig::default()
    };
    let violation = explore_many(&cfg, 0..256)
        .expect_err("the dropped-flag bug must be caught within the seed budget");

    let text = violation.postmortem();
    assert!(text.starts_with("nmbst explorer postmortem"));
    assert!(text.contains(&format!("seed: {:#x}", violation.report.seed)));
    assert!(text.contains("failed check:"));

    // The trace must show the three delete-protocol steps, in order:
    // some flag injection precedes some sibling tag precedes some splice.
    let trace = &violation.report.trace;
    let pos = |kind_match: fn(&EventKind) -> bool| trace.iter().position(|e| kind_match(&e.kind));
    let inject = pos(|k| matches!(k, EventKind::InjectFlag)).expect("postmortem has InjectFlag");
    let tag = trace
        .iter()
        .skip(inject)
        .position(|e| matches!(e.kind, EventKind::TagSibling))
        .map(|i| i + inject)
        .expect("postmortem has TagSibling after InjectFlag");
    let splice = trace
        .iter()
        .skip(tag)
        .position(|e| matches!(e.kind, EventKind::Splice { .. }))
        .map(|i| i + tag)
        .expect("postmortem has Splice after TagSibling");
    assert!(inject < tag && tag < splice);

    // Sequence numbers are strictly increasing in the merged trace, and
    // the rendered artifact lists the same events.
    assert!(trace.windows(2).all(|w| w[0].seq < w[1].seq));
    for kind in ["InjectFlag", "TagSibling", "Splice{chain_len="] {
        assert!(text.contains(kind), "artifact must mention {kind}");
    }

    // The artifact itself is deterministic: replaying the violating seed
    // under the same config reproduces it byte for byte.
    let replay = explore_seed(&cfg, violation.report.seed)
        .expect_err("violating seed must replay as a violation");
    assert_eq!(replay.postmortem(), text);
}

/// Recorder smoke test outside the explorer: attach on this thread, run
/// real tree operations, and check the expected event kinds show up with
/// strictly increasing sequence numbers.
#[test]
fn recorder_captures_tree_operations_directly() {
    let flight = FlightRecorder::new();
    // leaf_cap = 1: the remove must take the structural
    // flag/tag/splice path for its protocol events to appear (a fat-leaf
    // COW remove publishes a new block and emits no helping events).
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(TreeConfig::default().with_leaf_cap(1));
    {
        let _attached = flight.attach(0);
        for k in [10, 5, 15, 3, 7] {
            set.insert(k);
        }
        set.remove(&7);
        set.contains(&5);
    }
    // Events recorded after detach don't land in this capture.
    set.remove(&3);

    let trace = flight.merged();
    assert!(trace.iter().all(|e| e.thread == 0));
    assert!(trace.windows(2).all(|w| w[0].seq < w[1].seq));
    let count = |kind: fn(&EventKind) -> bool| trace.iter().filter(|e| kind(&e.kind)).count();
    // Searches descend without building a seek record, so only the six
    // modify operations start seeks.
    assert_eq!(
        count(|k| matches!(k, EventKind::SeekStart)),
        6,
        "5 inserts + 1 remove, one seek each"
    );
    assert_eq!(count(|k| matches!(k, EventKind::InjectFlag)), 1);
    assert_eq!(count(|k| matches!(k, EventKind::TagSibling)), 1);
    assert_eq!(count(|k| matches!(k, EventKind::Splice { .. })), 1);
    assert_eq!(flight.dropped(), 0);
}
