//! Integration tests for the fault-injection layer (`nmbst::chaos`) and
//! the seeded schedule explorer (`nmbst_lincheck::explore`).
//!
//! The headline test reintroduces a known protocol bug — dropping the
//! flag copy on the splice CAS (Algorithm 4, lines 107–108) — behind the
//! chaos-only `Bug::DropFlagOnSplice` switch and demonstrates the
//! explorer finds a violating schedule within a bounded seed budget, and
//! that the violating seed replays deterministically.

use nmbst::chaos::{self, FaultPlan, Point, StallCell};
use nmbst::{NmTreeSet, TreeConfig};
use nmbst_lincheck::explore::{explore_many, explore_seed, ExploreConfig, ReclaimKind};

/// The bounded per-PR seed budget (CI runs exactly this test). The wide
/// sweep lives in `soak.rs`.
const SEED_BUDGET: u64 = 256;

#[test]
fn explorer_catches_dropped_flag_copy_within_seed_budget() {
    let cfg = ExploreConfig {
        inject_drop_flag_bug: true,
        ..Default::default()
    };
    let violation = match explore_many(&cfg, 0..SEED_BUDGET) {
        Err(v) => v,
        Ok(stats) => panic!(
            "explorer missed the reintroduced Algorithm 4 flag-copy bug \
             across {} schedules ({} events)",
            stats.schedules, stats.events
        ),
    };
    // The violating seed must replay: exploration is deterministic, so
    // the same seed re-derives the same scenario, schedule, and failure.
    let replay = explore_seed(&cfg, violation.report.seed)
        .expect_err("violating seed no longer fails on replay");
    assert_eq!(replay.report, violation.report, "replay diverged");

    // The same seeds are clean without the bug switch: the violation
    // came from the reintroduced bug, not from the explorer itself.
    let clean = ExploreConfig::default();
    explore_seed(&clean, violation.report.seed)
        .unwrap_or_else(|v| panic!("violating seed fails even without the bug: {v}"));
}

#[test]
fn bounded_seed_sweep_is_clean_on_the_real_tree() {
    // The per-PR gate: a window of seeded schedules on the unmodified
    // tree must check out (linearizable + invariants) end to end.
    let stats = explore_many(&ExploreConfig::default(), 0..48).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(stats.schedules, 48);
}

#[test]
fn bounded_seed_sweep_is_clean_under_both_restart_policies() {
    // Same bounded window, run explicitly against each retry policy:
    // the local-restart seek must be linearizable under exactly the
    // schedules that validate the paper's root-restart retry loops.
    for restart in [nmbst::RestartPolicy::Local, nmbst::RestartPolicy::Root] {
        let cfg = ExploreConfig {
            restart,
            ..Default::default()
        };
        let stats = explore_many(&cfg, 0..32).unwrap_or_else(|v| panic!("policy {restart:?}: {v}"));
        assert_eq!(stats.schedules, 32, "policy {restart:?}");
    }
}

#[test]
fn bounded_seed_sweep_is_clean_with_recycling_pool() {
    // The PR 4 configuration: EBR actually reclaims mid-schedule and the
    // pool re-issues retired nodes' blocks to later inserts, so these
    // schedules exercise retire → grace period → recycle → realloc
    // interleaved with concurrent seeks. Linearizability and tree
    // invariants must hold exactly as without the pool.
    let cfg = ExploreConfig {
        pool: true,
        reclaim: ReclaimKind::Ebr,
        ..Default::default()
    };
    let stats = explore_many(&cfg, 0..32).unwrap_or_else(|v| panic!("pool+Ebr: {v}"));
    assert_eq!(stats.schedules, 32);
}

#[test]
fn bounded_seed_sweep_is_clean_across_leaf_capacities() {
    // PR 7 sweep: the same seed window must check out on the paper's
    // 1-key leaf shape (`leaf_cap = 1`, the ablation and historical
    // corpus) and on fat-leaf trees, where most inserts and removes
    // become copy-on-write block publishes and full blocks split.
    for leaf_cap in [1usize, 2, 8] {
        let cfg = ExploreConfig {
            leaf_cap,
            ..Default::default()
        };
        let stats =
            explore_many(&cfg, 0..32).unwrap_or_else(|v| panic!("leaf_cap {leaf_cap}: {v}"));
        assert_eq!(stats.schedules, 32, "leaf_cap {leaf_cap}");
        // Same-seed determinism at every capacity: the block COW/split
        // paths must be pure functions of the schedule too.
        let first = explore_seed(&cfg, 11).unwrap_or_else(|v| panic!("{v}"));
        let second = explore_seed(&cfg, 11).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(first, second, "leaf_cap {leaf_cap}: replay diverged");
    }
    // Fat leaves + recycling pool + EBR: retired blocks carry multiple
    // entries through retire → grace period → recycle → realloc.
    let cfg = ExploreConfig {
        leaf_cap: 8,
        pool: true,
        reclaim: ReclaimKind::Ebr,
        ..Default::default()
    };
    let stats = explore_many(&cfg, 0..16).unwrap_or_else(|v| panic!("leaf_cap 8 + pool: {v}"));
    assert_eq!(stats.schedules, 16);
}

#[test]
fn pool_enabled_exploration_is_deterministic() {
    // The token-passing scheduler serializes every step, so epoch
    // advancement, deferral execution, and pool traffic are pure
    // functions of the seed — recycling must not break replayability.
    let cfg = ExploreConfig {
        pool: true,
        reclaim: ReclaimKind::Ebr,
        ..Default::default()
    };
    let first = explore_seed(&cfg, 7).unwrap_or_else(|v| panic!("{v}"));
    let second = explore_seed(&cfg, 7).unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(first, second, "same seed, same schedule, same report");
}

#[test]
fn fault_plan_stalls_a_delete_until_resumed() {
    // A delete stalled *between* its injection CAS and its cleanup is
    // the canonical helping scenario; StallCell lets a test hold an
    // operation there for as long as it wants, deterministically.
    // leaf_cap 1 so the remove runs the protocol (a multi-entry block
    // COWs past `Point::Tag` and the plan would never engage).
    let set: NmTreeSet<u64> = NmTreeSet::with_config(TreeConfig::default().with_leaf_cap(1));
    for k in [50, 25, 75] {
        set.insert(k);
    }
    let cell = StallCell::new();
    std::thread::scope(|s| {
        let stalled = s.spawn({
            let set = &set;
            let cell = cell.clone();
            move || {
                FaultPlan::new()
                    .stall_at(Point::Tag, cell)
                    .run(|| set.remove(&25))
            }
        });
        // The deleter is (or will be) parked after its flag CAS. Another
        // thread's delete must help it complete rather than wait.
        while set.contains(&25) {
            std::hint::spin_loop();
            if set.remove(&25) {
                break; // we raced ahead of the stalled thread's flag
            }
        }
        assert!(!set.contains(&25));
        cell.resume();
        stalled.join().unwrap();
    });
    for k in [50, 75] {
        assert!(set.contains(&k), "lost innocent key {k}");
    }
    let mut m = set;
    assert_eq!(m.check_invariants().unwrap().user_keys, 2);
}

#[test]
fn abandoned_insert_leaves_no_trace() {
    let set: NmTreeSet<u64> = NmTreeSet::new();
    set.insert(10);
    let published = FaultPlan::new()
        .abandon_at(Point::InsertPublish)
        .run(|| set.insert(20));
    assert!(!published, "abandoned before the publishing CAS");
    assert!(!set.contains(&20));
    // The abandoned op held nothing: a plain retry succeeds.
    assert!(set.insert(20));
    assert!(set.contains(&20));
    let mut m = set;
    assert_eq!(m.check_invariants().unwrap().user_keys, 2);
}

#[test]
fn abandoned_delete_before_injection_is_a_no_op() {
    let set: NmTreeSet<u64> = NmTreeSet::new();
    set.insert(5);
    let removed = FaultPlan::new()
        .abandon_at(Point::DeleteInject)
        .run(|| set.remove(&5));
    assert!(
        !removed,
        "abandoned before the injection CAS: nothing happened"
    );
    assert!(set.contains(&5));
    assert!(set.remove(&5));
}

#[test]
fn delete_abandoned_after_splice_skips_retire_but_stays_correct() {
    // Abandoning at Retire leaks the detached chain (by design) but the
    // tree itself must be fully consistent.
    let set: NmTreeSet<u64> = NmTreeSet::new();
    for k in [8, 4, 12, 2, 6] {
        set.insert(k);
    }
    let removed = FaultPlan::new()
        .abandon_at(Point::Retire)
        .run(|| set.remove(&4));
    assert!(removed, "splice happened; only the retire was skipped");
    assert!(!set.contains(&4));
    for k in [8, 2, 6, 12] {
        assert!(set.contains(&k), "lost innocent key {k}");
    }
    let mut m = set;
    assert_eq!(m.check_invariants().unwrap().user_keys, 4);
}

#[test]
fn flag_copy_on_splice_survives_without_bug_switch() {
    // Sanity for the acceptance test's premise, staged deterministically
    // on one thread: abandon a delete of 10 after its flag (the stalled
    // owner), then delete its tree sibling 20. The sibling's splice must
    // copy 10's flag onto the hoisted edge (Algorithm 4, lines 107–108);
    // if it did, the resumed owner still owns its victim: a rival
    // remove(10) helps the owner's delete and reports false.
    // leaf_cap = 1: the staged state needs singleton leaves so both
    // removes take the structural flag/tag/splice path.
    let set: NmTreeSet<u64> = NmTreeSet::with_config(TreeConfig::default().with_leaf_cap(1));
    for k in [10, 20] {
        set.insert(k);
    }
    let owner_flagged = FaultPlan::new()
        .abandon_at(Point::Tag)
        .run(|| set.remove(&10));
    assert!(owner_flagged, "owner's injection CAS must win");
    assert!(set.remove(&20), "sibling delete proceeds independently");
    assert!(set.contains(&10), "10 still visible until its cleanup runs");
    assert!(
        !set.remove(&10),
        "the hoisted edge kept the flag, so 10 still belongs to the owner"
    );
    assert!(!set.contains(&10));
    let mut m = set;
    assert_eq!(m.check_invariants().unwrap().user_keys, 0);
}

#[test]
fn bug_switch_drops_the_flag_copy() {
    // Mirror of the test above with the bug enabled on this thread: the
    // sibling's splice forgets the flag, so the rival remove(10) no
    // longer sees an owned edge — it deletes 10 as if it were free,
    // returning true. This inverted result is exactly the class of
    // misbehavior the explorer's checker flags on concurrent schedules.
    let set: NmTreeSet<u64> = NmTreeSet::with_config(TreeConfig::default().with_leaf_cap(1));
    for k in [10, 20] {
        set.insert(k);
    }
    let owner_flagged = FaultPlan::new()
        .abandon_at(Point::Tag)
        .run(|| set.remove(&10));
    assert!(owner_flagged);
    chaos::set_bug(chaos::Bug::DropFlagOnSplice, true);
    assert!(set.remove(&20));
    chaos::set_bug(chaos::Bug::DropFlagOnSplice, false);
    assert!(
        set.remove(&10),
        "with the flag copy dropped, the owner's claim on 10 was lost"
    );
}
