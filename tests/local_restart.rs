//! Deterministic coverage for the local-restart seek (`seek_from`):
//! chaos stalls construct the exact CAS-failure interleavings the
//! optimization targets, and the `instrument` counters prove which
//! descent path the retry actually took.
//!
//! Built as a root-workspace integration test so both the `chaos` and
//! `instrument` features of `nmbst` are enabled (see the workspace
//! `[dev-dependencies]`).

use nmbst::chaos::{FaultPlan, Point, StallCell};
use nmbst::{stats, Leaky, NmTreeSet, RestartPolicy, TreeConfig};

/// The staged interleavings below reason about the paper's 1-key-leaf
/// shape (an insert publishes a two-node subtree, a remove splices) —
/// `leaf_cap = 1` keeps those scripts exact. The free-running stress
/// test sweeps fat leaves too.
fn cap1() -> TreeConfig {
    TreeConfig::default().with_leaf_cap(1)
}

/// Stalls `insert(key)` on a fresh thread right before its publishing
/// CAS, runs `rival` on this thread while it is parked, resumes, and
/// returns the stalled thread's counter deltas (counters are
/// thread-local, so the delta covers exactly the stalled insert).
fn race_insert_against(
    set: &NmTreeSet<u64, Leaky>,
    key: u64,
    rival: impl FnOnce(),
) -> stats::OpStats {
    std::thread::scope(|s| {
        let cell = StallCell::new();
        let stalled = s.spawn({
            let cell = cell.clone();
            move || {
                let before = stats::snapshot();
                let inserted = FaultPlan::new()
                    .stall_at(Point::InsertPublish, cell)
                    .run(|| set.insert(key));
                assert!(inserted, "the stalled insert must retry and succeed");
                stats::snapshot().since(&before)
            }
        });
        cell.wait_arrival();
        rival();
        cell.resume();
        stalled.join().unwrap()
    })
}

#[test]
fn insert_conflict_restarts_from_local_anchor() {
    // Keys {10, 20}: the user area is one internal (routing key 20) over
    // the leaves 10 and 20. An insert of 15 seeks to leaf 10 and parks
    // before its publishing CAS; a rival insert of 12 then takes that
    // leaf. The rival's CAS rewrote only the *parent's* child edge — the
    // record's (ancestor → successor) edge is untouched — so the retry
    // must revalidate the anchor and descend from there, not the root.
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(cap1());
    for k in [10, 20] {
        assert!(set.insert(k));
    }
    let delta = race_insert_against(&set, 15, || {
        assert!(set.insert(12), "rival insert takes the leaf");
    });
    assert_eq!(delta.seeks, 1, "only the initial descent hits the root");
    assert_eq!(delta.local_restarts, 1, "the retry reused the anchor");
    for k in [10, 12, 15, 20] {
        assert!(set.contains(&k), "lost key {k}");
    }
    let mut set = set;
    assert_eq!(set.check_invariants().unwrap().user_keys, 4);
}

#[test]
fn invalidated_anchor_falls_back_to_root_seek() {
    // Same stall, different rival: a delete of 20 splices at the
    // record's ancestor, so the (ancestor → successor) edge no longer
    // leads to the successor. The retry must *reject* the stale anchor
    // and fall back to a full root seek — restarting from a detached
    // node would descend into a frozen region.
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(cap1());
    for k in [10, 20] {
        assert!(set.insert(k));
    }
    let delta = race_insert_against(&set, 15, || {
        assert!(set.remove(&20), "rival delete splices at the anchor");
    });
    assert_eq!(delta.seeks, 2, "the retry re-descended from the root");
    assert_eq!(delta.local_restarts, 0, "the stale anchor was rejected");
    assert_eq!(
        delta.cleanups, 1,
        "the insert helped (and lost) the delete's cleanup before retrying"
    );
    for k in [10, 15] {
        assert!(set.contains(&k), "lost key {k}");
    }
    assert!(!set.contains(&20));
    let mut set = set;
    assert_eq!(set.check_invariants().unwrap().user_keys, 2);
}

#[test]
fn root_policy_never_takes_the_local_path() {
    // The paper-faithful ablation: under `RestartPolicy::Root` the exact
    // interleaving of `insert_conflict_restarts_from_local_anchor` must
    // retry with a second full seek instead.
    let set: NmTreeSet<u64, Leaky> =
        NmTreeSet::with_config(cap1().with_restart(RestartPolicy::Root));
    for k in [10, 20] {
        assert!(set.insert(k));
    }
    let delta = race_insert_against(&set, 15, || {
        assert!(set.insert(12));
    });
    assert_eq!(delta.seeks, 2);
    assert_eq!(delta.local_restarts, 0);
    for k in [10, 12, 15, 20] {
        assert!(set.contains(&k), "lost key {k}");
    }
}

#[test]
fn local_restart_stress_matches_model() {
    // Free-running contention on a small key space under both policies:
    // the final contents must agree key-for-key with a per-key ownership
    // model. Exercises the local-restart path probabilistically on top
    // of the deterministic tests above.
    for (restart, leaf_cap) in [
        (RestartPolicy::Local, 1),
        (RestartPolicy::Root, 1),
        (RestartPolicy::Local, 8),
        (RestartPolicy::Root, 8),
    ] {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 512;
        let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(
            TreeConfig::default()
                .with_restart(restart)
                .with_leaf_cap(leaf_cap),
        );
        std::thread::scope(|s| {
            let set = &set;
            for t in 0..THREADS {
                s.spawn(move || {
                    // Disjoint key stripes interleaved in key order, so
                    // concurrent inserts keep landing on shared leaves
                    // (maximal publishing-CAS conflicts); then remove
                    // every other key of the stripe.
                    for i in 0..PER_THREAD {
                        assert!(set.insert(i * THREADS + t));
                    }
                    for i in (0..PER_THREAD).step_by(2) {
                        assert!(set.remove(&(i * THREADS + t)));
                    }
                });
            }
        });
        for i in 0..PER_THREAD {
            for t in 0..THREADS {
                let k = i * THREADS + t;
                assert_eq!(set.contains(&k), i % 2 == 1, "key {k} under {restart:?}");
            }
        }
        let mut set = set;
        let shape = set.check_invariants().unwrap();
        assert_eq!(shape.user_keys as u64, THREADS * PER_THREAD / 2);
    }
}
