//! Differential testing: all five implementations must agree with each
//! other (and with `BTreeSet`) on identical operation sequences, both
//! sequentially and at post-concurrency quiescence.

use nmbst::NmTreeSet;
use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree, locked::LockedBTreeSet};
use nmbst_harness::adapter::{ConcurrentSet, NmEbr, NmLeaky};
use nmbst_reclaim::Ebr;
use std::collections::BTreeSet;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Applies the same pseudo-random op tape to one implementation and the
/// model, asserting every return value matches.
fn drive<S: ConcurrentSet>(seed: u64, ops: usize, key_space: u64) {
    let set = S::make();
    let mut model = BTreeSet::new();
    let mut x = seed;
    for i in 0..ops {
        let r = xorshift(&mut x);
        let k = r % key_space + 1;
        match r % 3 {
            0 => assert_eq!(
                set.insert(k),
                model.insert(k),
                "{} diverged from model at op {i} (insert {k})",
                S::label()
            ),
            1 => assert_eq!(
                set.remove(k),
                model.remove(&k),
                "{} diverged from model at op {i} (remove {k})",
                S::label()
            ),
            _ => assert_eq!(
                set.contains(k),
                model.contains(&k),
                "{} diverged from model at op {i} (contains {k})",
                S::label()
            ),
        }
    }
}

#[test]
fn every_implementation_matches_the_model_sequentially() {
    for seed in [1u64, 0xBEEF, 0x12345678] {
        drive::<NmLeaky>(seed, 8_000, 96);
        drive::<NmEbr>(seed, 8_000, 96);
        drive::<EfrbTree>(seed, 8_000, 96);
        drive::<HjTree>(seed, 8_000, 96);
        drive::<BccoTree>(seed, 8_000, 96);
        drive::<LockedBTreeSet>(seed, 8_000, 96);
    }
}

/// Concurrent phase on disjoint key slices, then all implementations
/// must hold the identical key set.
#[test]
fn implementations_converge_to_identical_contents() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 1_500;
    const SPACE: u64 = 512;

    fn churn<S: ConcurrentSet>() -> Vec<u64> {
        let set = S::make();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let set = &set;
                s.spawn(move || {
                    // Deterministic per-thread tape: same for every
                    // implementation. Keys partitioned by thread so the
                    // final contents are deterministic despite races.
                    let mut x = 0xC0FFEE ^ (t << 40) | 1;
                    for _ in 0..PER_THREAD {
                        let r = xorshift(&mut x);
                        let k = (r % (SPACE / THREADS)) * THREADS + t + 1;
                        if r & (1 << 33) == 0 {
                            set.insert(k);
                        } else {
                            set.remove(k);
                        }
                    }
                });
            }
        });
        (1..=SPACE).filter(|&k| set.contains(k)).collect()
    }

    let reference = churn::<LockedBTreeSet>();
    assert_eq!(churn::<NmLeaky>(), reference, "NM-BST (leaky) diverged");
    assert_eq!(churn::<NmEbr>(), reference, "NM-BST (ebr) diverged");
    assert_eq!(churn::<EfrbTree>(), reference, "EFRB diverged");
    assert_eq!(churn::<HjTree>(), reference, "HJ diverged");
    assert_eq!(churn::<BccoTree>(), reference, "BCCO diverged");
    assert!(!reference.is_empty(), "degenerate test: nothing inserted");
}

#[test]
fn nm_structural_invariants_after_cross_thread_churn() {
    let mut set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let set = &set;
            s.spawn(move || {
                let mut x = t * 0x9E3779B9 + 1;
                for _ in 0..5_000 {
                    let r = xorshift(&mut x);
                    let k = r % 200;
                    if r & 4 == 0 {
                        set.insert(k);
                    } else {
                        set.remove(&k);
                    }
                }
            });
        }
    });
    let shape = set.check_invariants().expect("invariants violated");
    assert_eq!(shape.user_keys, set.len());
}
