//! Whitebox tests of the PR 4 node-recycling pool: retired nodes flow
//! retire → grace period → pool → fresh insert, and reuse is impossible
//! while any stalled operation could still observe the old node.
//!
//! The `chaos::Point::Recycle` injection point fires on the thread that
//! *runs* a recycle deferral, immediately before the block re-enters the
//! pool — these tests use it both as a counter (did recycling actually
//! happen, and when?) and as a valve (`Action::Abandon` forces the
//! fall-through-to-allocator path).

use nmbst::chaos::{self, Action, FaultPlan, Point, StallCell};
use nmbst::{Ebr, HazardEras, Leaky, NmTreeMap, PoolConfig, Reclaim, TreeConfig};
use std::cell::Cell;
use std::rc::Rc;

const KEYS: u64 = 32;
const ROUNDS: u64 = 50;

/// Arena allocations made by tree construction itself: two internal
/// sentinels plus three sentinel leaves. Since PR 7 the arena is the
/// node store, so these five count as pool misses before any user op.
const SENTINELS: u64 = 5;

/// Insert-then-remove churn: every round retires `2 * KEYS` nodes and
/// allocates `2 * KEYS` fresh ones — the workload recycling exists for.
fn churn<R: Reclaim>(map: &NmTreeMap<u64, u64, R>, rounds: u64) {
    for round in 0..rounds {
        for k in 0..KEYS {
            assert!(map.insert(k, round), "churn key {k} must be absent");
        }
        for k in 0..KEYS {
            assert!(map.remove(&k), "churn key {k} must be present");
        }
        map.flush();
    }
}

fn round_trip<R: Reclaim>() -> nmbst::PoolStats {
    let map: NmTreeMap<u64, u64, R> = NmTreeMap::new(); // pool on by default
    churn(&map, ROUNDS);
    // Correctness through heavy reuse: final contents and shape hold up.
    let mut map = map;
    for k in 0..KEYS {
        assert!(map.insert(k, 7));
    }
    let shape = map.check_invariants().expect("invariants after recycling");
    assert_eq!(shape.user_keys, KEYS as usize);
    map.metrics().pool
}

#[test]
fn retire_recycle_realloc_round_trip_under_ebr() {
    let stats = round_trip::<Ebr>();
    assert!(
        stats.recycled > 0,
        "EBR runs deferrals: retired nodes must reach the pool ({stats:?})"
    );
    assert!(
        stats.hits > 0,
        "recycled blocks must serve later inserts ({stats:?})"
    );
}

#[test]
fn retire_recycle_realloc_round_trip_under_hazard_eras() {
    let stats = round_trip::<HazardEras>();
    assert!(
        stats.recycled > 0,
        "HazardEras runs deferrals: retired nodes must reach the pool ({stats:?})"
    );
    assert!(
        stats.hits > 0,
        "recycled blocks must serve later inserts ({stats:?})"
    );
}

#[test]
fn leaky_never_recycles_retired_nodes() {
    let stats = round_trip::<Leaky>();
    // `Leaky` drops deferrals uncalled (RECLAIMS == false), and the tree
    // does not even build recycle deferrals for it. Fresh-key churn also
    // never discards insert scratch, so the pool stays untouched.
    assert_eq!(
        stats.recycled, 0,
        "Leaky must leak, not recycle ({stats:?})"
    );
    assert_eq!(stats.hits, 0, "nothing to reuse under Leaky ({stats:?})");
    assert!(
        stats.misses > 0,
        "all churn allocs are pool misses ({stats:?})"
    );
}

#[test]
fn pool_off_is_a_true_ablation() {
    let map: NmTreeMap<u64, u64, Ebr> =
        NmTreeMap::with_config(TreeConfig::default().with_pool(PoolConfig::disabled()));
    let rounds = 10;
    churn(&map, rounds);
    let stats = map.metrics().pool;
    // "Disabled" turns off the *free list*, not the arena: every
    // allocation still bump-allocates a slot (a miss), and every
    // recycle deferral finds a zero-capacity list and abandons its slot
    // in place (dropped). What must be dead is reuse.
    assert_eq!(stats.hits, 0, "no free list, no reuse ({stats:?})");
    assert_eq!(
        stats.recycled, 0,
        "nothing enters a capacity-0 list ({stats:?})"
    );
    assert_eq!(stats.len, 0, "{stats:?}");
    assert_eq!(stats.capacity, 0, "{stats:?}");
    // Every insert/remove pair costs exactly 2 slots at any leaf_cap
    // dividing KEYS: a block of B keys takes 2 + (B-1) insert-path
    // allocations (one classic two-node subtree, then COW merges) and
    // B-1 remove-path COW shrinks (the last entry splices, 0 allocs).
    assert_eq!(
        stats.misses,
        2 * KEYS * rounds + SENTINELS,
        "all allocations bump ({stats:?})"
    );
    assert_eq!(
        stats.dropped,
        2 * KEYS * rounds,
        "every retired slot abandoned in place ({stats:?})"
    );
}

/// The ABA-safety argument (DESIGN.md §11), demonstrated: while an
/// operation is parked mid-protocol — pinned, holding a seek record
/// pointing into the tree — **no** node anywhere in the tree can be
/// recycled, because the grace period that gates the recycle deferral is
/// exactly "no pinned thread can still hold a reference". Once the
/// straggler resumes and unpins, recycling proceeds.
#[test]
fn stalled_seeker_never_observes_a_recycled_node() {
    // leaf_cap 1: the parked remove must run the classic flag/tag/splice
    // protocol — a multi-entry block would COW its way past `Point::Tag`
    // and the stall would never engage.
    let map: NmTreeMap<u64, u64, Ebr> =
        NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(1));
    for k in 0..KEYS {
        map.insert(k, 0);
    }
    let parked = StallCell::new();
    std::thread::scope(|s| {
        let stalled = s.spawn({
            let map = &map;
            let cell = parked.clone();
            move || {
                // A remove stalled at its Tag step: it has sought, its
                // seek record references live nodes, its guard is pinned.
                FaultPlan::new()
                    .stall_at(Point::Tag, cell)
                    .run(|| map.remove(&0))
            }
        });
        parked.wait_arrival();

        // Churn hard on fresh keys while the seeker is provably parked.
        // Count recycle-deferral executions on this thread via the
        // injection point: there must be none — every retired node's
        // grace period is held open by the parked guard.
        let recycles = Rc::new(Cell::new(0u64));
        let seen = Rc::clone(&recycles);
        chaos::with_hook(
            move |p| {
                if p == Point::Recycle {
                    seen.set(seen.get() + 1);
                }
                Action::Continue
            },
            || {
                for round in 1..=20 {
                    for k in KEYS..KEYS * 2 {
                        assert!(map.insert(k, round));
                        assert!(map.remove(&k));
                    }
                    map.flush();
                }
            },
        );
        assert_eq!(
            recycles.get(),
            0,
            "a node was recycled while a stalled operation was pinned"
        );
        assert_eq!(
            map.metrics().pool.recycled,
            0,
            "pool must be empty while parked"
        );

        parked.resume();
        assert!(
            stalled.join().unwrap(),
            "the stalled remove owns its victim"
        );
    });

    // Straggler gone: the same churn now recycles freely.
    for k in 1..KEYS {
        assert!(map.remove(&k), "initial key {k} still present");
    }
    churn(&map, ROUNDS);
    let stats = map.metrics().pool;
    assert!(
        stats.recycled > 0 && stats.hits > 0,
        "recycling must resume once the straggler unpins ({stats:?})"
    );
}

#[test]
fn recycle_point_abandon_forces_allocator_fall_through() {
    let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
    let recycles = Rc::new(Cell::new(0u64));
    let seen = Rc::clone(&recycles);
    chaos::with_hook(
        move |p| {
            if p == Point::Recycle {
                seen.set(seen.get() + 1);
                Action::Abandon // decline the pool: free to the allocator
            } else {
                Action::Continue
            }
        },
        || churn(&map, ROUNDS),
    );
    assert!(
        recycles.get() > 0,
        "churn under EBR must execute recycle deferrals"
    );
    let stats = map.metrics().pool;
    assert_eq!(
        stats.recycled, 0,
        "every deferral was abandoned into the allocator ({stats:?})"
    );
    assert_eq!(stats.len, 0, "pool must have stayed empty ({stats:?})");
    assert_eq!(stats.hits, 0, "nothing pooled, nothing reused ({stats:?})");
    // The tree is indistinguishable from the pool-off configuration.
    let mut map = map;
    assert_eq!(map.check_invariants().expect("invariants").user_keys, 0);
}

#[test]
fn handle_churn_reuses_through_the_local_cache() {
    let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
    {
        let mut h = map.handle();
        for round in 0..ROUNDS {
            for k in 0..KEYS {
                assert!(h.insert(k, round));
            }
            for k in 0..KEYS {
                assert!(h.remove(&k));
            }
            map.flush();
        }
    } // handle drop flushes its batched pool accounting
    let stats = map.metrics().pool;
    assert!(
        stats.hits > 0,
        "handle inserts must be served from recycled blocks ({stats:?})"
    );
    // 2 slots per insert/remove pair (see `pool_off_is_a_true_ablation`
    // for the per-block arithmetic) plus the construction-time
    // sentinels: the arena sees every allocation as a hit or a miss.
    assert_eq!(
        stats.hits + stats.misses,
        2 * KEYS * ROUNDS + SENTINELS,
        "every node allocation is either a hit or a miss ({stats:?})"
    );
}
