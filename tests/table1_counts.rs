//! Exact reproduction of **Table 1**: operation cost counts in the
//! absence of contention, asserted as hard equalities where the paper
//! gives exact numbers.
//!
//! Paper's Table 1 (no contention, no memory reclamation):
//!
//! | Algorithm        | objects insert/delete | atomics insert/delete |
//! |------------------|-----------------------|-----------------------|
//! | Ellen et al.     | 4 / 1                 | 3 / 4                 |
//! | Howley & Jones   | 2 / 1                 | 3 / up to 9           |
//! | This work        | 2 / 0                 | 1 / 3                 |

use nmbst::stats;
use nmbst::{NmTreeSet, TagMode, TreeConfig};
use nmbst_harness::table1::{measure_efrb, measure_hj, measure_nm};
use nmbst_reclaim::Leaky;

#[test]
fn nm_row_matches_exactly() {
    let row = measure_nm(TagMode::FetchOr);
    assert_eq!(
        row.insert_allocs, 2.0,
        "NM insert must allocate exactly 2 objects"
    );
    assert_eq!(row.delete_allocs, 0.0, "NM delete must allocate nothing");
    assert_eq!(
        row.insert_atomics, 1.0,
        "NM insert must execute exactly 1 CAS"
    );
    assert_eq!(
        row.delete_atomics, 3.0,
        "NM delete must execute exactly 3 atomics"
    );
}

#[test]
fn efrb_row_matches_exactly() {
    let row = measure_efrb();
    assert_eq!(row.insert_allocs, 4.0);
    assert_eq!(row.delete_allocs, 1.0);
    assert_eq!(row.insert_atomics, 3.0);
    assert_eq!(row.delete_atomics, 4.0);
}

#[test]
fn hj_row_matches_paper_bounds() {
    let row = measure_hj();
    assert_eq!(row.insert_allocs, 2.0);
    assert_eq!(row.insert_atomics, 3.0);
    // Delete cost depends on how many victims had two children
    // (relocation); the paper reports 1 object and "up to 9" atomics.
    assert!(
        row.delete_allocs >= 1.0,
        "delete allocates at least the op record"
    );
    assert!(
        (4.0..=9.0).contains(&row.delete_atomics),
        "got {}",
        row.delete_atomics
    );
}

#[test]
fn nm_delete_breakdown_is_one_cas_one_bts_one_cas() {
    // Finer grain than the table: the three delete atomics are exactly
    // {injection CAS, sibling BTS, splice CAS}. Like `measure_nm`, this
    // pins `leaf_cap = 1` — the paper's costs are stated for one-key
    // leaves; a multi-entry block would COW (1 alloc, 1 CAS) instead.
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(TreeConfig::default().with_leaf_cap(1));
    for k in [10, 5, 15, 3, 7] {
        set.insert(k);
    }
    let (removed, d) = stats::delta(|| set.remove(&7));
    assert!(removed);
    assert_eq!(d.cas, 2, "injection + splice");
    assert_eq!(d.bts, 1, "sibling tag");
    assert_eq!(d.allocs, 0);
    assert_eq!(d.splices, 1);
    assert_eq!(d.unlinked, 2, "leaf and its parent leave together");
}

#[test]
fn nm_uncontended_search_executes_no_atomics() {
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    for k in 0..64 {
        set.insert(k);
    }
    let ((), d) = stats::delta(|| {
        for k in 0..128 {
            std::hint::black_box(set.contains(&k));
        }
    });
    assert_eq!(d.cas, 0, "search is read-only");
    assert_eq!(d.bts, 0);
    assert_eq!(d.allocs, 0);
}

#[test]
fn cas_only_variant_uncontended_costs_match_bts_variant() {
    // §6: the CAS-only modification. Without contention the tag CAS loop
    // takes one attempt, so total atomics stay at 3 per delete.
    let bts = measure_nm(TagMode::FetchOr);
    let cas = measure_nm(TagMode::CasLoop);
    assert_eq!(bts.delete_atomics, cas.delete_atomics);
    assert_eq!(bts.insert_atomics, cas.insert_atomics);
    assert_eq!(bts.delete_allocs, cas.delete_allocs);
}

#[test]
fn failed_modify_operations_allocate_nothing_extra() {
    // Duplicate inserts must not burn allocations beyond the reusable
    // scratch pair, and failed removes allocate nothing at all.
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    set.insert(1);
    let ((), d) = stats::delta(|| {
        for _ in 0..10 {
            assert!(!set.insert(1)); // duplicate: discovered during seek
            assert!(!set.remove(&2)); // absent
        }
    });
    assert_eq!(
        d.allocs, 0,
        "failed ops found out in the seek phase allocate nothing"
    );
    assert_eq!(d.cas, 0);
}
