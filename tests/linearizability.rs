//! Mechanical linearizability checking of every concurrent tree in the
//! workspace, using the `nmbst-lincheck` history checker.
//!
//! §3.3 argues linearizability by exhibiting linearization points; here
//! we *check* it: small key spaces, few threads, short op sequences —
//! maximal contention with exhaustively checkable histories — across
//! many trials.

use nmbst::NmTreeSet;
use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
use nmbst_lincheck::{check_linearizable, Event, Recorder, SetOp};
use nmbst_reclaim::{Ebr, Leaky};
use std::sync::Mutex;

const THREADS: u64 = 3;
const OPS_PER_THREAD: u64 = 7;
const KEY_SPACE: u64 = 4; // keys 1..=4: tiny space, constant conflicts
const TRIALS: u64 = 150;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Runs one contended trial against `ops` and returns the history.
fn run_trial(trial: u64, apply: impl Fn(&SetOp) -> bool + Sync) -> Vec<Event> {
    let rec = Recorder::new();
    let all: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let rec = &rec;
            let all = &all;
            let apply = &apply;
            s.spawn(move || {
                let mut rng = trial * 1_000_003 + t * 7919 + 1;
                let mut local = Vec::new();
                for _ in 0..OPS_PER_THREAD {
                    let r = xorshift(&mut rng);
                    let key = r % KEY_SPACE + 1;
                    let op = match r % 3 {
                        0 => SetOp::Insert(key),
                        1 => SetOp::Remove(key),
                        _ => SetOp::Contains(key),
                    };
                    local.push(rec.measure(op, || apply(&op)));
                }
                all.lock().unwrap().extend(local);
            });
        }
    });
    all.into_inner().unwrap()
}

fn check_many<F, S>(make: F, name: &str)
where
    F: Fn() -> S,
    S: Sync,
    for<'a> &'a S: ApplyOp,
{
    for trial in 0..TRIALS {
        let set = make();
        let history = run_trial(trial, |op| (&set).apply_op(op));
        assert!(
            check_linearizable(&history),
            "{name}: trial {trial} produced a non-linearizable history:\n{history:#?}"
        );
    }
}

/// Adapter so the same driver runs every implementation.
trait ApplyOp {
    fn apply_op(&self, op: &SetOp) -> bool;
}

macro_rules! impl_apply {
    ($ty:ty) => {
        impl ApplyOp for &$ty {
            fn apply_op(&self, op: &SetOp) -> bool {
                match *op {
                    SetOp::Insert(k) => self.insert(k),
                    SetOp::Remove(k) => self.remove(&k),
                    SetOp::Contains(k) => self.contains(&k),
                }
            }
        }
    };
}

impl_apply!(NmTreeSet<u64, Leaky>);
impl_apply!(NmTreeSet<u64, Ebr>);
impl_apply!(EfrbTree);
impl_apply!(HjTree);
impl_apply!(BccoTree);

#[test]
fn nm_bst_leaky_is_linearizable() {
    check_many(NmTreeSet::<u64, Leaky>::new, "NM-BST (leaky)");
}

#[test]
fn nm_bst_ebr_is_linearizable() {
    check_many(NmTreeSet::<u64, Ebr>::new, "NM-BST (ebr)");
}

#[test]
fn nm_bst_cas_only_is_linearizable() {
    check_many(
        || NmTreeSet::<u64, Ebr>::with_tag_mode(nmbst::TagMode::CasLoop),
        "NM-BST (cas-only)",
    );
}

#[test]
fn efrb_is_linearizable() {
    check_many(EfrbTree::new, "EFRB-BST");
}

#[test]
fn hj_is_linearizable() {
    check_many(HjTree::new, "HJ-BST");
}

#[test]
fn bcco_is_linearizable() {
    check_many(BccoTree::new, "BCCO-BST");
}

#[test]
fn checker_rejects_a_seeded_violation() {
    // Sanity check that this test setup has teeth: corrupt one result in
    // an otherwise legal sequential history and expect rejection.
    let rec = Recorder::new();
    let set = NmTreeSet::<u64, Ebr>::new();
    let mut history = vec![
        rec.measure(SetOp::Insert(1), || set.insert(1)),
        rec.measure(SetOp::Contains(1), || set.contains(&1)),
    ];
    // Flip the contains result.
    let last = history.last_mut().unwrap();
    last.result = !last.result;
    assert!(!check_linearizable(&history));
}
