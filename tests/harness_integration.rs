//! Workspace-level integration of the benchmark harness: the runner,
//! key distributions and latency measurement must drive every
//! implementation correctly (these are the components Figure 4's
//! numbers depend on, so they get correctness tests of their own).

use nmbst_harness::adapter::{ConcurrentSet, NmEbr, NmLeaky};
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::zipf::ZipfGenerator;
use nmbst_harness::{prepopulate, run_latency, run_throughput, BenchConfig, KeyDist, Workload};
use std::time::Duration;

fn cfg(threads: usize, dist: KeyDist) -> BenchConfig {
    BenchConfig {
        threads,
        key_range: 512,
        workload: Workload::MIXED,
        duration: Duration::from_millis(60),
        seed: 0xACE,
        dist,
    }
}

#[test]
fn throughput_runner_with_zipf_distribution() {
    let r = run_throughput::<NmEbr>(&cfg(2, KeyDist::Zipf(0.9)));
    assert!(r.total_ops > 0);
    assert_eq!(r.per_thread.len(), 2);
}

#[test]
fn latency_runner_produces_sane_percentiles() {
    let res = run_latency::<NmLeaky>(&cfg(2, KeyDist::Uniform), 5_000);
    let h = &res.hist;
    assert_eq!(h.len(), 10_000);
    assert!(h.percentile(50.0) <= h.percentile(99.0));
    assert!(h.percentile(99.0) <= h.max());
    assert!(h.mean() > 0.0);
    // On any machine, a tree op takes under a millisecond at p50.
    assert!(
        h.percentile(50.0) < 1_000_000,
        "p50 = {}ns",
        h.percentile(50.0)
    );
}

#[test]
fn zipf_skew_concentrates_load_but_preserves_correctness() {
    // Run a heavily skewed churn on a tree and verify per-key
    // conservation still holds: skew changes contention, never results.
    use std::sync::atomic::{AtomicI64, Ordering};
    const SPACE: u64 = 64;
    let set = NmEbr::make();
    let balance: Vec<AtomicI64> = (0..SPACE).map(|_| AtomicI64::new(0)).collect();
    let zipf = ZipfGenerator::new(SPACE, 0.99);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let set = &set;
            let balance = &balance;
            let zipf = &zipf;
            s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(0xF00D, t);
                for _ in 0..10_000 {
                    let k = 1 + zipf.next(&mut rng);
                    if rng.next_u64() & 1 == 0 {
                        if set.insert(k) {
                            balance[(k - 1) as usize].fetch_add(1, Ordering::Relaxed);
                        }
                    } else if set.remove(&k) {
                        balance[(k - 1) as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    for k in 1..=SPACE {
        let b = balance[(k - 1) as usize].load(Ordering::Relaxed);
        assert!(b == 0 || b == 1, "key {k} balance {b}");
        assert_eq!(set.contains(&k), b == 1, "membership of {k}");
    }
}

#[test]
fn prepopulation_is_identical_across_implementations() {
    use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
    fn contents<S: ConcurrentSet>() -> Vec<u64> {
        let s = S::make();
        prepopulate(&s, 256, 31);
        (1..=256).filter(|&k| s.contains(k)).collect()
    }
    let nm = contents::<NmLeaky>();
    assert_eq!(nm.len(), 128);
    assert_eq!(contents::<EfrbTree>(), nm);
    assert_eq!(contents::<HjTree>(), nm);
    assert_eq!(contents::<BccoTree>(), nm);
}

#[test]
fn workload_mix_reaches_the_tree() {
    // A write-dominated run on an initially half-full range must change
    // the tree's contents relative to pre-population.
    let set = NmEbr::make();
    let before = prepopulate(&set, 512, 0xACE);
    assert_eq!(before, 256);
    let mut rng = XorShift64Star::new(1);
    let mut changed = 0;
    for _ in 0..5_000 {
        let k = 1 + rng.next_bounded(512);
        let did = if rng.next_u64() & 1 == 0 {
            set.insert(k)
        } else {
            set.remove(&k)
        };
        changed += u64::from(did);
    }
    assert!(changed > 1_000, "only {changed} ops changed the set");
}
