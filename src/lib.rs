//! Umbrella crate for the NM-BST reproduction workspace.
//!
//! Re-exports the pieces a downstream user typically wants, and hosts
//! the workspace-level `examples/` and `tests/`. See the individual
//! crates for the real content:
//!
//! * [`nmbst`] — the paper's lock-free external BST (set + map).
//! * [`nmbst_reclaim`] — epoch-based reclamation, hazard pointers, leaky.
//! * [`nmbst_baselines`] — EFRB, HJ, BCCO comparators.
//! * [`nmbst_harness`] — workload generation and throughput running.
//! * [`nmbst_lincheck`] — linearizability checking.

pub use nmbst::{Key, NmTreeMap, NmTreeSet, TagMode, TreeShape};
pub use nmbst_reclaim::{Ebr, HazardDomain, Leaky, Reclaim, RetireGuard, TreiberStack};

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile_and_work() {
        let set: super::NmTreeSet<u64> = super::NmTreeSet::new();
        assert!(set.insert(1));
        assert!(!super::VERSION.is_empty());
    }
}
