//! Benchmark substrate for the NM-BST reproduction.
//!
//! Everything needed to regenerate the paper's evaluation (§4):
//!
//! * [`adapter`] — the [`adapter::ConcurrentSet`] trait
//!   and adapters for NM-BST (leaky / EBR / CAS-only), EFRB, HJ, BCCO
//!   and a coarse-locked reference.
//! * [`workload`] — the three §4 operation mixes and four key ranges.
//! * [`rng`] — deterministic allocation-free generators for the hot loop.
//! * [`runner`] — pre-population plus the timed multi-threaded
//!   throughput measurement of Figure 4.
//! * [`table1`] — uncontended per-operation cost measurement (Table 1).
//! * [`report`] — text/CSV table rendering.
//!
//! The actual regenerator binaries (`figure4`, `table1`) live in the
//! `nmbst-bench` crate; this crate is the library they (and the tests)
//! share.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adapter;
pub mod chart;
pub mod hist;
pub mod replay;
pub mod report;
pub mod rng;
pub mod runner;
pub mod table1;
pub mod workload;
pub mod zipf;

pub use adapter::ConcurrentSet;
pub use hist::Histogram;
pub use replay::{run_replay, ReplayConfig, ReplayReport, SessionOp, SessionTarget};
pub use runner::{
    mean_mops, prepopulate, run_batch_throughput, run_latency, run_throughput, BenchConfig,
    BenchResult, KeyDist, LatencyResult,
};
pub use workload::{OpKind, SortedBatchGen, Workload, FIGURE4_KEY_RANGES};
pub use zipf::ZipfGenerator;
