//! Workload definitions — §4's three operation mixes and four key-space
//! sizes.

use crate::rng::XorShift64Star;

/// One of the paper's benchmark operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Membership query.
    Search,
    /// Key addition.
    Insert,
    /// Key removal.
    Delete,
}

/// An operation mix (percentages summing to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Percentage of search operations.
    pub search_pct: u8,
    /// Percentage of insert operations.
    pub insert_pct: u8,
    /// Percentage of delete operations.
    pub delete_pct: u8,
    /// Report label.
    pub name: &'static str,
}

impl Workload {
    /// §4: "*write-dominated workload:* 0% search, 50% insert and 50%
    /// delete."
    pub const WRITE_DOMINATED: Workload = Workload {
        search_pct: 0,
        insert_pct: 50,
        delete_pct: 50,
        name: "write-dominated (0/50/50)",
    };

    /// §4: "*mixed workload:* 70% search, 20% insert and 10% delete."
    pub const MIXED: Workload = Workload {
        search_pct: 70,
        insert_pct: 20,
        delete_pct: 10,
        name: "mixed (70/20/10)",
    };

    /// §4: "*read-dominated workload:* 90% search, 9% insert and 1%
    /// delete."
    pub const READ_DOMINATED: Workload = Workload {
        search_pct: 90,
        insert_pct: 9,
        delete_pct: 1,
        name: "read-dominated (90/9/1)",
    };

    /// The paper's three columns of Figure 4, in order.
    pub const FIGURE4: [Workload; 3] = [
        Workload::WRITE_DOMINATED,
        Workload::MIXED,
        Workload::READ_DOMINATED,
    ];

    /// Creates a custom mix; panics unless the percentages sum to 100.
    pub fn custom(name: &'static str, search_pct: u8, insert_pct: u8, delete_pct: u8) -> Workload {
        assert_eq!(
            search_pct as u32 + insert_pct as u32 + delete_pct as u32,
            100,
            "workload percentages must sum to 100"
        );
        Workload {
            search_pct,
            insert_pct,
            delete_pct,
            name,
        }
    }

    /// Draws the next operation from the mix.
    #[inline]
    pub fn pick(&self, rng: &mut XorShift64Star) -> OpKind {
        let p = rng.next_percent();
        if p < self.search_pct {
            OpKind::Search
        } else if p < self.search_pct + self.insert_pct {
            OpKind::Insert
        } else {
            OpKind::Delete
        }
    }
}

/// The paper's four key-space sizes (Figure 4 rows): 1K, 10K, 100K, 1M.
pub const FIGURE4_KEY_RANGES: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_100() {
        for w in Workload::FIGURE4 {
            assert_eq!(
                w.search_pct as u32 + w.insert_pct as u32 + w.delete_pct as u32,
                100
            );
        }
    }

    #[test]
    fn pick_matches_mix_statistically() {
        let w = Workload::MIXED;
        let mut rng = XorShift64Star::new(2024);
        let (mut s, mut i, mut d) = (0u32, 0u32, 0u32);
        const N: u32 = 100_000;
        for _ in 0..N {
            match w.pick(&mut rng) {
                OpKind::Search => s += 1,
                OpKind::Insert => i += 1,
                OpKind::Delete => d += 1,
            }
        }
        let f = |x: u32| x as f64 / N as f64;
        assert!((f(s) - 0.70).abs() < 0.01, "searches {}", f(s));
        assert!((f(i) - 0.20).abs() < 0.01, "inserts {}", f(i));
        assert!((f(d) - 0.10).abs() < 0.01, "deletes {}", f(d));
    }

    #[test]
    fn write_dominated_never_searches() {
        let w = Workload::WRITE_DOMINATED;
        let mut rng = XorShift64Star::new(5);
        for _ in 0..10_000 {
            assert_ne!(w.pick(&mut rng), OpKind::Search);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn custom_validates_sum() {
        let _ = Workload::custom("bad", 50, 50, 50);
    }
}
