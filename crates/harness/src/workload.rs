//! Workload definitions — §4's three operation mixes and four key-space
//! sizes, plus the PR 5 `sorted-batch` key generator.

use crate::rng::XorShift64Star;
use crate::zipf::ZipfGenerator;

/// One of the paper's benchmark operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Membership query.
    Search,
    /// Key addition.
    Insert,
    /// Key removal.
    Delete,
}

/// An operation mix (percentages summing to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Percentage of search operations.
    pub search_pct: u8,
    /// Percentage of insert operations.
    pub insert_pct: u8,
    /// Percentage of delete operations.
    pub delete_pct: u8,
    /// Report label.
    pub name: &'static str,
}

impl Workload {
    /// §4: "*write-dominated workload:* 0% search, 50% insert and 50%
    /// delete."
    pub const WRITE_DOMINATED: Workload = Workload {
        search_pct: 0,
        insert_pct: 50,
        delete_pct: 50,
        name: "write-dominated (0/50/50)",
    };

    /// §4: "*mixed workload:* 70% search, 20% insert and 10% delete."
    pub const MIXED: Workload = Workload {
        search_pct: 70,
        insert_pct: 20,
        delete_pct: 10,
        name: "mixed (70/20/10)",
    };

    /// §4: "*read-dominated workload:* 90% search, 9% insert and 1%
    /// delete."
    pub const READ_DOMINATED: Workload = Workload {
        search_pct: 90,
        insert_pct: 9,
        delete_pct: 1,
        name: "read-dominated (90/9/1)",
    };

    /// The paper's three columns of Figure 4, in order.
    pub const FIGURE4: [Workload; 3] = [
        Workload::WRITE_DOMINATED,
        Workload::MIXED,
        Workload::READ_DOMINATED,
    ];

    /// Creates a custom mix; panics unless the percentages sum to 100.
    pub fn custom(name: &'static str, search_pct: u8, insert_pct: u8, delete_pct: u8) -> Workload {
        assert_eq!(
            search_pct as u32 + insert_pct as u32 + delete_pct as u32,
            100,
            "workload percentages must sum to 100"
        );
        Workload {
            search_pct,
            insert_pct,
            delete_pct,
            name,
        }
    }

    /// Draws the next operation from the mix.
    #[inline]
    pub fn pick(&self, rng: &mut XorShift64Star) -> OpKind {
        let p = rng.next_percent();
        if p < self.search_pct {
            OpKind::Search
        } else if p < self.search_pct + self.insert_pct {
            OpKind::Insert
        } else {
            OpKind::Delete
        }
    }
}

/// The paper's four key-space sizes (Figure 4 rows): 1K, 10K, 100K, 1M.
pub const FIGURE4_KEY_RANGES: [u64; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// The `sorted-batch` key generator (PR 5): each draw yields an
/// ascending, duplicate-free run of keys confined to one Zipf-popular
/// *cluster* of the key space.
///
/// This models bulk ingest shapes — log replay, sorted file merges,
/// time-ordered feeds — where consecutive operations land near each
/// other in key order. It is the best case for NM's finger-anchored
/// batch descents, and the same runs are replayable against any
/// [`crate::adapter::ConcurrentSet`] so baselines are measured on
/// identical cells.
///
/// Clusters are `cluster_width`-wide slices of `1..=key_range`; which
/// cluster a run lands in follows a Zipf draw (rank 0 hottest), and the
/// run itself walks upward with stride 1–2 from a random offset inside
/// the cluster.
#[derive(Debug, Clone)]
pub struct SortedBatchGen {
    key_range: u64,
    batch_len: usize,
    cluster_width: u64,
    zipf: ZipfGenerator,
}

impl SortedBatchGen {
    /// Builds a generator over `1..=key_range` producing runs of
    /// `batch_len` keys, with cluster popularity skew `theta` ∈ [0, 1).
    pub fn new(key_range: u64, batch_len: usize, theta: f64) -> Self {
        assert!(key_range > 0, "empty key space");
        assert!(batch_len > 0, "empty batches");
        // A cluster holds a few batches' worth of keys, so repeated
        // draws from a hot cluster overlap without being identical.
        let cluster_width = (batch_len as u64 * 4).max(16).min(key_range);
        let clusters = (key_range / cluster_width).max(1);
        SortedBatchGen {
            key_range,
            batch_len,
            cluster_width,
            zipf: ZipfGenerator::new(clusters, theta),
        }
    }

    /// The configured run length (output may be shorter after clamping
    /// at the top of the key space deduplicates the tail).
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// Fills `out` with the next ascending run. Keys are strictly
    /// increasing, duplicate-free, and within `1..=key_range`.
    pub fn fill(&self, rng: &mut XorShift64Star, out: &mut Vec<u64>) {
        out.clear();
        let base = self.zipf.next(rng) * self.cluster_width;
        let mut key = base + rng.next_bounded(self.cluster_width.div_ceil(2));
        for _ in 0..self.batch_len {
            key += 1 + rng.next_bounded(2);
            out.push(key.min(self.key_range));
        }
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sum_to_100() {
        for w in Workload::FIGURE4 {
            assert_eq!(
                w.search_pct as u32 + w.insert_pct as u32 + w.delete_pct as u32,
                100
            );
        }
    }

    #[test]
    fn pick_matches_mix_statistically() {
        let w = Workload::MIXED;
        let mut rng = XorShift64Star::new(2024);
        let (mut s, mut i, mut d) = (0u32, 0u32, 0u32);
        const N: u32 = 100_000;
        for _ in 0..N {
            match w.pick(&mut rng) {
                OpKind::Search => s += 1,
                OpKind::Insert => i += 1,
                OpKind::Delete => d += 1,
            }
        }
        let f = |x: u32| x as f64 / N as f64;
        assert!((f(s) - 0.70).abs() < 0.01, "searches {}", f(s));
        assert!((f(i) - 0.20).abs() < 0.01, "inserts {}", f(i));
        assert!((f(d) - 0.10).abs() < 0.01, "deletes {}", f(d));
    }

    #[test]
    fn write_dominated_never_searches() {
        let w = Workload::WRITE_DOMINATED;
        let mut rng = XorShift64Star::new(5);
        for _ in 0..10_000 {
            assert_ne!(w.pick(&mut rng), OpKind::Search);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn custom_validates_sum() {
        let _ = Workload::custom("bad", 50, 50, 50);
    }

    #[test]
    fn sorted_batch_runs_are_ascending_and_in_range() {
        let gen = SortedBatchGen::new(10_000, 32, 0.8);
        let mut rng = XorShift64Star::new(11);
        let mut buf = Vec::new();
        for _ in 0..1_000 {
            gen.fill(&mut rng, &mut buf);
            assert!(!buf.is_empty() && buf.len() <= 32);
            assert!(buf.windows(2).all(|w| w[0] < w[1]), "run not ascending");
            assert!(*buf.first().unwrap() >= 1);
            assert!(*buf.last().unwrap() <= 10_000);
        }
    }

    #[test]
    fn sorted_batch_is_deterministic_per_seed() {
        let gen = SortedBatchGen::new(4_096, 16, 0.6);
        let (mut ra, mut rb) = (XorShift64Star::new(3), XorShift64Star::new(3));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            gen.fill(&mut ra, &mut a);
            gen.fill(&mut rb, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sorted_batch_clusters_are_skewed() {
        // With heavy skew, most runs should start in the hottest slice
        // of the key space.
        let gen = SortedBatchGen::new(100_000, 32, 0.99);
        let mut rng = XorShift64Star::new(7);
        let mut buf = Vec::new();
        let mut in_head = 0;
        const DRAWS: usize = 2_000;
        for _ in 0..DRAWS {
            gen.fill(&mut rng, &mut buf);
            if buf[0] <= 10_000 {
                in_head += 1;
            }
        }
        assert!(
            in_head as f64 > 0.35 * DRAWS as f64,
            "only {in_head}/{DRAWS} runs in the hot 10%"
        );
    }

    #[test]
    fn sorted_batch_tiny_key_space_stays_valid() {
        let gen = SortedBatchGen::new(8, 32, 0.5);
        let mut rng = XorShift64Star::new(1);
        let mut buf = Vec::new();
        for _ in 0..100 {
            gen.fill(&mut rng, &mut buf);
            assert!(buf.windows(2).all(|w| w[0] < w[1]));
            assert!(buf.iter().all(|&k| (1..=8).contains(&k)));
        }
    }
}
