//! Open-loop traffic replay — the serving tier's workload generator.
//!
//! The throughput runner ([`crate::runner`]) is *closed-loop*: each
//! thread issues its next op the instant the previous one returns, so
//! measured latency can never exceed service time and queueing is
//! invisible. Real front-end traffic is *open-loop*: sessions arrive on
//! a schedule that does not care whether the server is keeping up, and
//! tail latency is dominated by the queueing the schedule induces. This
//! module replays exactly that: a deterministic global arrival schedule
//! of simulated sessions (a few ops each, Zipf-skewed hot keys), fanned
//! out over a fixed fleet of client connections, with per-session
//! latency measured from *scheduled arrival* to completion — the
//! "coordinated omission"-free definition, so a stalled server charges
//! every queued session for the stall.
//!
//! Sessions that are already due when a client comes up for air are
//! *coalesced* into one [`SessionTarget::run`] call (one BATCH frame on
//! the wire), which is how a blocking per-connection client sustains
//! millions of scheduled sessions over loopback without a reactor.
//!
//! Two fleet shapes: [`run_replay`] drives a *pinned* fleet (each
//! client keeps one pre-opened connection for the whole run), while
//! [`run_replay_churn`] adds *connection churn* — each client redials
//! through a [`TargetFactory`] every
//! [`ReplayConfig::sessions_per_conn`] sessions, closing the old
//! connection first, so the server continuously sees arrivals and
//! departures (the shape a blocking one-connection-per-worker server
//! provably cannot absorb once connections outnumber workers).
//!
//! Everything is seeded: session `s` always issues the same ops drawn
//! from `XorShift64Star::from_stream(seed, s)`, independent of which
//! client executes it or when.

use crate::hist::Histogram;
use crate::rng::XorShift64Star;
use crate::workload::{OpKind, Workload};
use crate::zipf::ZipfGenerator;
use std::io;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One operation inside a simulated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOp {
    /// Point lookup.
    Get(u64),
    /// Insert key → value.
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
}

/// Where replayed sessions execute: one target per client thread. The
/// replay engine never sees the transport — a target may be a TCP
/// client bundling the ops into a BATCH frame, or an in-process handle
/// (how the engine itself is tested).
pub trait SessionTarget {
    /// Executes one bundle of session ops (possibly several coalesced
    /// sessions' worth, in session order). An `Err` aborts the replay.
    fn run(&mut self, ops: &[SessionOp]) -> io::Result<()>;
}

impl<F: FnMut(&[SessionOp]) -> io::Result<()>> SessionTarget for F {
    fn run(&mut self, ops: &[SessionOp]) -> io::Result<()> {
        self(ops)
    }
}

/// Opens connections for the churn replay mode ([`run_replay_churn`]):
/// each client thread holds one factory and calls [`connect`] whenever
/// it needs a fresh connection — at startup, and again every
/// [`ReplayConfig::sessions_per_conn`] sessions after dropping the old
/// one. Against a TCP server this is real connection churn: the old
/// socket closes, the new one lands on a (round-robin) possibly
/// different worker.
///
/// [`connect`]: TargetFactory::connect
pub trait TargetFactory {
    /// The connection type this factory opens.
    type Target: SessionTarget;
    /// Opens a fresh connection. An `Err` aborts the replay.
    fn connect(&mut self) -> io::Result<Self::Target>;
}

impl<T: SessionTarget, F: FnMut() -> io::Result<T>> TargetFactory for F {
    type Target = T;
    fn connect(&mut self) -> io::Result<T> {
        self()
    }
}

/// Adapts a pre-opened target into a [`TargetFactory`] that yields it
/// exactly once — how [`run_replay`] reuses the churn engine for the
/// classic pinned-fleet mode.
struct Pinned<T>(Option<T>);

impl<T: SessionTarget> TargetFactory for Pinned<T> {
    type Target = T;
    fn connect(&mut self) -> io::Result<T> {
        self.0
            .take()
            .ok_or_else(|| io::Error::other("pinned target cannot reconnect"))
    }
}

/// The replay schedule and workload shape.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Total simulated sessions across all clients.
    pub sessions: u64,
    /// Ops per session (drawn from `workload` with `zipf_theta` keys).
    pub ops_per_session: u32,
    /// Client threads; session `s` is owned by client `s % clients`.
    pub clients: usize,
    /// Key space `0..key_range` (Zipf ranks are scattered over it so
    /// hot keys spread across shards).
    pub key_range: u64,
    /// Zipf skew θ ∈ [0, 1); 0 = uniform.
    pub zipf_theta: f64,
    /// Global arrival rate in sessions/second. `f64::INFINITY` makes
    /// every session due at t=0 (maximum pressure; latency then measures
    /// time-to-drain, not queueing under a sustainable load).
    pub arrival_rate: f64,
    /// Max sessions coalesced into one [`SessionTarget::run`] call.
    pub coalesce: usize,
    /// Max *ops* coalesced into one [`SessionTarget::run`] call; `0`
    /// leaves the session cap alone. The first due session always
    /// ships (a bundle is never empty), so the effective cap is
    /// `max(coalesce_ops, ops_per_session)`. Against a wire target
    /// this bounds the BATCH frame size — the knob the batch-fusion
    /// perf cell sweeps to control how much per-frame sort/partition
    /// work the server's fused execution gets to amortize.
    pub coalesce_ops: usize,
    /// Connection churn ([`run_replay_churn`] only): after this many
    /// sessions a client drops its connection and opens a fresh one
    /// from its [`TargetFactory`]. Churn happens at bundle boundaries —
    /// a coalesced bundle never splits across connections — so the
    /// effective count can overshoot by up to `coalesce - 1`. `0`
    /// pins one connection per client for the whole run (and is forced
    /// by [`run_replay`], whose targets cannot reconnect).
    pub sessions_per_conn: u64,
    /// Operation mix.
    pub workload: Workload,
    /// Master seed; session op streams derive from it.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            sessions: 100_000,
            ops_per_session: 3,
            clients: 2,
            key_range: 1 << 20,
            zipf_theta: 0.9,
            arrival_rate: f64::INFINITY,
            coalesce: 64,
            coalesce_ops: 0,
            sessions_per_conn: 0,
            workload: Workload::MIXED,
            seed: 42,
        }
    }
}

/// What one replay run measured.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Sessions completed (always `config.sessions` unless a target
    /// errored).
    pub sessions: u64,
    /// Tree operations issued.
    pub ops: u64,
    /// Wall-clock from the schedule's t=0 to the last completion.
    pub elapsed: Duration,
    /// Per-session latency in nanoseconds, measured from *scheduled
    /// arrival* (not send time) to completion.
    pub latency: Histogram,
    /// Per-bundle round-trip time in nanoseconds, measured from just
    /// before [`SessionTarget::run`] to its return — send to receive,
    /// excluding schedule-induced queueing. Against a wire target this
    /// is exactly one frame's client-observed service time, the
    /// population the server's own per-frame wire histogram times from
    /// the other end (the replay bench cross-checks the two).
    pub rtt: Histogram,
    /// Ops issued by each client thread.
    pub per_client_ops: Vec<u64>,
    /// Connections opened across all clients: `clients` in the pinned
    /// mode, more under churn ([`ReplayConfig::sessions_per_conn`]).
    pub conns: u64,
}

impl ReplayReport {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Million tree ops per wall-clock second.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9) / 1e6
    }

    /// Latency percentile in nanoseconds (p ∈ [0, 100]).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.latency.percentile(p)
    }
}

/// Scatters a Zipf rank over the key space so the hottest ranks don't
/// cluster in one tree region (or one shard). SplitMix64 mix then a
/// range reduction; deterministic, rank-stable.
#[inline]
fn rank_to_key(rank: u64, key_range: u64) -> u64 {
    let mut z = rank.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((u128::from(z) * u128::from(key_range)) >> 64) as u64
}

/// Generates session `sid`'s ops — deterministic in `(config.seed,
/// sid)`, so a replay is reproducible across client fleets and runs.
pub fn session_ops(cfg: &ReplayConfig, zipf: &ZipfGenerator, sid: u64, out: &mut Vec<SessionOp>) {
    let mut rng = XorShift64Star::from_stream(cfg.seed, sid);
    for _ in 0..cfg.ops_per_session {
        let key = rank_to_key(zipf.next(&mut rng), cfg.key_range);
        out.push(match cfg.workload.pick(&mut rng) {
            OpKind::Search => SessionOp::Get(key),
            OpKind::Insert => SessionOp::Insert(key, sid),
            OpKind::Delete => SessionOp::Remove(key),
        });
    }
}

/// Runs the replay over a fixed fleet: one thread per pre-opened
/// target, open-loop arrivals, due sessions coalesced up to
/// `config.coalesce` per bundle.
///
/// `targets.len()` must equal `config.clients`. Panics if a target
/// errors — a replay with missing sessions would report a lie.
/// `config.sessions_per_conn` is ignored (pre-opened targets cannot
/// reconnect); use [`run_replay_churn`] for churn.
pub fn run_replay<T: SessionTarget + Send>(cfg: &ReplayConfig, targets: Vec<T>) -> ReplayReport {
    assert_eq!(targets.len(), cfg.clients, "one target per client");
    let cfg = ReplayConfig {
        sessions_per_conn: 0,
        ..cfg.clone()
    };
    run_replay_churn(&cfg, targets.into_iter().map(|t| Pinned(Some(t))).collect())
}

/// Runs the replay with connection churn: one thread per factory, each
/// opening its first connection at t=0 and a fresh one every
/// [`ReplayConfig::sessions_per_conn`] sessions (the old connection is
/// dropped — closed — first, so the server sees genuine connection
/// arrival/departure under load, not a fixed fleet).
///
/// `factories.len()` must equal `config.clients`. Panics if a connect
/// or a target errors — a replay with missing sessions would report a
/// lie.
pub fn run_replay_churn<F>(cfg: &ReplayConfig, factories: Vec<F>) -> ReplayReport
where
    F: TargetFactory + Send,
{
    assert_eq!(factories.len(), cfg.clients, "one target per client");
    assert!(cfg.clients > 0 && cfg.sessions > 0 && cfg.ops_per_session > 0);
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");

    // O(key_range) zeta setup paid once, cloned per thread.
    let zipf = ZipfGenerator::new(cfg.key_range.max(1), cfg.zipf_theta);
    let start_gate = Barrier::new(cfg.clients);
    let coalesce = cfg.coalesce.max(1);

    // Session s is scheduled at s / rate seconds after t=0. (Evenly
    // spaced deterministic arrivals: the queueing behavior of interest
    // comes from service-time variance and deliberate overload, and a
    // fixed schedule keeps runs comparable.)
    let arrival_ns = |s: u64| -> u64 {
        if cfg.arrival_rate.is_finite() {
            (s as f64 / cfg.arrival_rate * 1e9) as u64
        } else {
            0
        }
    };

    let churn = cfg.sessions_per_conn;
    let mut per_client: Vec<(u64, Histogram, Histogram, Duration, u64)> =
        Vec::with_capacity(cfg.clients);
    std::thread::scope(|s| {
        let handles: Vec<_> = factories
            .into_iter()
            .enumerate()
            .map(|(c, mut factory)| {
                let zipf = zipf.clone();
                let start_gate = &start_gate;
                let arrival_ns = &arrival_ns;
                s.spawn(move || {
                    let mut hist = Histogram::new();
                    let mut rtt = Histogram::new();
                    let mut ops_issued = 0u64;
                    let mut conns = 0u64;
                    let mut on_conn = 0u64;
                    let mut target: Option<F::Target> = None;
                    let mut bundle_ops: Vec<SessionOp> = Vec::new();
                    let mut bundle_arrivals: Vec<u64> = Vec::new();
                    let mut owned = (c as u64..cfg.sessions).step_by(cfg.clients).peekable();
                    start_gate.wait();
                    let t0 = Instant::now();
                    while let Some(sid) = owned.next() {
                        let due = arrival_ns(sid);
                        let now = t0.elapsed().as_nanos() as u64;
                        if now < due {
                            std::thread::sleep(Duration::from_nanos(due - now));
                        }
                        bundle_ops.clear();
                        bundle_arrivals.clear();
                        session_ops(cfg, &zipf, sid, &mut bundle_ops);
                        bundle_arrivals.push(due);
                        // Coalesce every already-due session into this
                        // wire round trip, bounded by both the session
                        // cap and (when set) the op cap.
                        let now = t0.elapsed().as_nanos() as u64;
                        while bundle_arrivals.len() < coalesce
                            && (cfg.coalesce_ops == 0
                                || bundle_ops.len() + cfg.ops_per_session as usize
                                    <= cfg.coalesce_ops)
                        {
                            match owned.peek() {
                                Some(&next) if arrival_ns(next) <= now => {
                                    session_ops(cfg, &zipf, next, &mut bundle_ops);
                                    bundle_arrivals.push(arrival_ns(next));
                                    owned.next();
                                }
                                _ => break,
                            }
                        }
                        // Churn at bundle boundaries: close (drop) the
                        // old connection before dialing, so the server
                        // sees departures, not just arrivals. The dial
                        // itself is on the clock — connection setup is
                        // part of what churn mode exists to measure.
                        if target.is_none() || (churn > 0 && on_conn >= churn) {
                            drop(target.take());
                            target = Some(
                                factory
                                    .connect()
                                    .unwrap_or_else(|e| panic!("client {c}: connect failed: {e}")),
                            );
                            conns += 1;
                            on_conn = 0;
                        }
                        let sent = t0.elapsed().as_nanos() as u64;
                        target
                            .as_mut()
                            .expect("connection just established")
                            .run(&bundle_ops)
                            .unwrap_or_else(|e| panic!("client {c}: target failed: {e}"));
                        ops_issued += bundle_ops.len() as u64;
                        on_conn += bundle_arrivals.len() as u64;
                        let done = t0.elapsed().as_nanos() as u64;
                        rtt.record(done.saturating_sub(sent));
                        for &arr in &bundle_arrivals {
                            hist.record(done.saturating_sub(arr));
                        }
                    }
                    (ops_issued, hist, rtt, t0.elapsed(), conns)
                })
            })
            .collect();
        for h in handles {
            per_client.push(h.join().expect("client thread panicked"));
        }
    });

    let mut latency = Histogram::new();
    let mut rtt = Histogram::new();
    let mut ops = 0;
    let mut elapsed = Duration::ZERO;
    let mut conns = 0;
    let mut per_client_ops = Vec::with_capacity(cfg.clients);
    for (client_ops, hist, client_rtt, client_elapsed, client_conns) in per_client {
        latency.merge(&hist);
        rtt.merge(&client_rtt);
        ops += client_ops;
        elapsed = elapsed.max(client_elapsed);
        conns += client_conns;
        per_client_ops.push(client_ops);
    }
    ReplayReport {
        sessions: latency.len(),
        ops,
        elapsed,
        latency,
        rtt,
        per_client_ops,
        conns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    fn cfg(sessions: u64, clients: usize) -> ReplayConfig {
        ReplayConfig {
            sessions,
            clients,
            key_range: 1024,
            ..ReplayConfig::default()
        }
    }

    #[test]
    fn session_streams_are_deterministic() {
        let c = cfg(10, 1);
        let zipf = ZipfGenerator::new(c.key_range, c.zipf_theta);
        let mut a = Vec::new();
        let mut b = Vec::new();
        session_ops(&c, &zipf, 7, &mut a);
        session_ops(&c, &zipf, 7, &mut b);
        assert_eq!(a, b);
        let mut other = Vec::new();
        session_ops(&c, &zipf, 8, &mut other);
        assert_ne!(a, other, "distinct sessions draw distinct streams");
        assert_eq!(a.len(), c.ops_per_session as usize);
    }

    #[test]
    fn all_sessions_complete_and_count() {
        const SESSIONS: u64 = 10_000;
        let c = cfg(SESSIONS, 3);
        let executed = AtomicU64::new(0);
        let targets: Vec<_> = (0..3)
            .map(|_| {
                let executed = &executed;
                move |ops: &[SessionOp]| {
                    executed.fetch_add(ops.len() as u64, Ordering::Relaxed);
                    Ok(())
                }
            })
            .collect();
        let report = run_replay(&c, targets);
        assert_eq!(report.sessions, SESSIONS);
        assert_eq!(report.ops, SESSIONS * c.ops_per_session as u64);
        assert_eq!(report.ops, executed.load(Ordering::Relaxed));
        assert_eq!(report.latency.len(), SESSIONS);
        assert_eq!(report.per_client_ops.len(), 3);
        assert!(report.per_client_ops.iter().all(|&n| n > 0));
        assert!(report.percentile_ns(99.9) >= report.percentile_ns(50.0));
        assert_eq!(report.conns, 3, "pinned mode opens one conn per client");
    }

    #[test]
    fn churn_redials_at_bundle_boundaries() {
        let mut c = cfg(1_000, 2);
        c.coalesce = 4;
        c.sessions_per_conn = 8;
        let connects = AtomicU64::new(0);
        let executed = AtomicU64::new(0);
        let factories: Vec<_> = (0..2)
            .map(|_| {
                let connects = &connects;
                let executed = &executed;
                move || {
                    connects.fetch_add(1, Ordering::Relaxed);
                    Ok(move |ops: &[SessionOp]| {
                        executed.fetch_add(ops.len() as u64, Ordering::Relaxed);
                        Ok(())
                    })
                }
            })
            .collect();
        let report = run_replay_churn(&c, factories);
        assert_eq!(report.sessions, 1_000);
        assert_eq!(report.ops, executed.load(Ordering::Relaxed));
        assert_eq!(report.conns, connects.load(Ordering::Relaxed));
        // 500 sessions per client, redial every 8 (= 2 bundles of 4):
        // far more connections than clients, but never more than one
        // per bundle.
        assert!(report.conns > 2, "churn never redialed: {}", report.conns);
        assert!(report.conns <= 2 * 500u64.div_ceil(8));
    }

    #[test]
    fn churn_zero_pins_connections() {
        let mut c = cfg(200, 2);
        c.sessions_per_conn = 0;
        let connects = AtomicU64::new(0);
        let factories: Vec<_> = (0..2)
            .map(|_| {
                let connects = &connects;
                move || {
                    connects.fetch_add(1, Ordering::Relaxed);
                    Ok(|_: &[SessionOp]| Ok(()))
                }
            })
            .collect();
        let report = run_replay_churn(&c, factories);
        assert_eq!(report.sessions, 200);
        assert_eq!(report.conns, 2);
        assert_eq!(connects.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn coalescing_respects_cap_and_order() {
        let mut c = cfg(1_000, 1);
        c.coalesce = 8;
        c.ops_per_session = 2;
        let bundles: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let keys_seen: Mutex<Vec<SessionOp>> = Mutex::new(Vec::new());
        let report = run_replay(
            &c,
            vec![|ops: &[SessionOp]| {
                bundles.lock().unwrap().push(ops.len());
                keys_seen.lock().unwrap().extend_from_slice(ops);
                Ok(())
            }],
        );
        let bundles = bundles.into_inner().unwrap();
        assert!(bundles.iter().all(|&n| n <= 8 * 2), "coalesce cap held");
        assert_eq!(bundles.iter().sum::<usize>() as u64, report.ops);
        // The concatenated stream equals the sessions generated in order.
        let zipf = ZipfGenerator::new(c.key_range, c.zipf_theta);
        let mut expect = Vec::new();
        for sid in 0..1_000 {
            session_ops(&c, &zipf, sid, &mut expect);
        }
        assert_eq!(*keys_seen.lock().unwrap(), expect);
    }

    #[test]
    fn coalesce_ops_caps_bundle_size() {
        let mut c = cfg(1_000, 1);
        c.coalesce = 64; // session cap alone would allow 192-op bundles
        c.ops_per_session = 3;
        c.coalesce_ops = 10; // ⇒ at most 3 sessions (9 ops) per bundle
        let bundles: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let report = run_replay(
            &c,
            vec![|ops: &[SessionOp]| {
                bundles.lock().unwrap().push(ops.len());
                Ok(())
            }],
        );
        assert_eq!(report.sessions, 1_000);
        let bundles = bundles.into_inner().unwrap();
        assert!(bundles.iter().all(|&n| n <= 9), "op cap held: {bundles:?}");
        assert_eq!(bundles.iter().sum::<usize>() as u64, report.ops);
        // The cap shrinks bundles but must not drop sessions.
        assert_eq!(report.ops, 3_000);
    }

    #[test]
    fn finite_rate_paces_arrivals() {
        // 2000 sessions at 20k/s ⇒ the schedule alone takes ≥ 100 ms.
        let mut c = cfg(2_000, 2);
        c.arrival_rate = 20_000.0;
        let report = run_replay(
            &c,
            (0..2).map(|_| |_: &[SessionOp]| Ok(())).collect::<Vec<_>>(),
        );
        assert!(
            report.elapsed >= Duration::from_millis(95),
            "open-loop pacing ignored the schedule: {:?}",
            report.elapsed
        );
        // A fast target under a sustainable rate keeps latency far below
        // the run length (queueing never builds).
        assert!(report.percentile_ns(50.0) < 50_000_000);
    }

    #[test]
    #[should_panic(expected = "one target per client")]
    fn target_count_must_match() {
        let c = cfg(10, 2);
        let _ = run_replay(&c, vec![|_: &[SessionOp]| Ok(())]);
    }
}
