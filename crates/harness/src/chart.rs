//! Terminal line charts for benchmark panels.
//!
//! Figure 4 is a grid of throughput-vs-threads line plots; this renders
//! a faithful ASCII version of one panel so the regenerator's output is
//! readable without leaving the terminal.

/// One line series: a label and its y-values (one per x position).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Y-values, aligned with the x labels passed to [`render_chart`].
    pub values: Vec<f64>,
}

/// Renders a panel: one character column per x position (plus padding),
/// `height` text rows, distinct glyph per series, y-axis in the value
/// unit, legend below.
pub fn render_chart(title: &str, x_labels: &[String], series: &[Series], height: usize) -> String {
    assert!(height >= 2, "chart needs at least two rows");
    for s in series {
        assert_eq!(
            s.values.len(),
            x_labels.len(),
            "series '{}' arity mismatch",
            s.label
        );
    }
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .fold(f64::EPSILON, f64::max);

    // Layout: y-axis gutter of 9 chars, then `step` columns per x point.
    let step = 6usize;
    let width = x_labels.len() * step;
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (xi, &v) in s.values.iter().enumerate() {
            let row_f = (v / max) * (height - 1) as f64;
            let row = height - 1 - row_f.round() as usize;
            let col = xi * step + step / 2;
            // Overlapping points: later series wins the cell; the legend
            // plus the table output disambiguate.
            grid[row][col] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (ri, row) in grid.iter().enumerate() {
        let y_val = max * (height - 1 - ri) as f64 / (height - 1) as f64;
        let y_label = if ri == 0 || ri == height - 1 || ri == height / 2 {
            format!("{y_val:7.2} |")
        } else {
            format!("{:7} |", "")
        };
        out.push_str(&y_label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:7} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!("{:8}", ""));
    for l in x_labels {
        out.push_str(&format!("{l:^step$}"));
    }
    out.push('\n');
    out.push_str("legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={} ", glyphs[si % glyphs.len()], s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs(n: usize) -> Vec<String> {
        (0..n).map(|i| (1 << i).to_string()).collect()
    }

    #[test]
    fn renders_expected_shape() {
        let s = vec![
            Series {
                label: "A".into(),
                values: vec![1.0, 2.0, 4.0],
            },
            Series {
                label: "B".into(),
                values: vec![4.0, 2.0, 1.0],
            },
        ];
        let out = render_chart("panel", &xs(3), &s, 8);
        assert!(out.starts_with("panel\n"));
        assert!(out.contains("legend: *=A o=B"));
        // Highest value of A (4.0) sits on the top row; B's 4.0 also.
        let top_row = out.lines().nth(1).unwrap();
        assert!(top_row.contains('o'), "B starts at max: {top_row}");
        assert_eq!(out.lines().count(), 8 + 4);
    }

    #[test]
    fn single_point_series() {
        let s = vec![Series {
            label: "only".into(),
            values: vec![3.3],
        }];
        let out = render_chart("t", &xs(1), &s, 4);
        assert!(out.contains('*'));
    }

    #[test]
    fn zero_values_do_not_divide_by_zero() {
        let s = vec![Series {
            label: "flat".into(),
            values: vec![0.0, 0.0],
        }];
        let out = render_chart("t", &xs(2), &s, 4);
        // All points on the bottom row.
        let bottom = out.lines().nth(4).unwrap();
        assert_eq!(bottom.matches('*').count(), 2, "{out}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let s = vec![Series {
            label: "bad".into(),
            values: vec![1.0],
        }];
        let _ = render_chart("t", &xs(2), &s, 4);
    }

    #[test]
    fn many_series_cycle_glyphs() {
        let series: Vec<Series> = (0..10)
            .map(|i| Series {
                label: format!("s{i}"),
                values: vec![i as f64 + 1.0],
            })
            .collect();
        let out = render_chart("t", &xs(1), &series, 12);
        assert!(out.contains("%=s6"));
        assert!(out.contains("*=s8"), "glyphs wrap around");
    }
}
