//! The timed throughput runner behind Figure 4.
//!
//! Mirrors the paper's §4 methodology: the tree is pre-populated to half
//! the key range, then `threads` workers issue operations drawn from the
//! workload mix on uniformly random keys for a fixed wall-clock
//! duration; the metric is completed operations per second.

use crate::adapter::ConcurrentSet;
use crate::hist::Histogram;
use crate::rng::XorShift64Star;
use crate::workload::{OpKind, SortedBatchGen, Workload};
use crate::zipf::ZipfGenerator;
use nmbst::obs::MetricsSnapshot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// How often the runner samples [`ConcurrentSet::metrics`] during a
/// timed run. Coarse on purpose: sampling sums the counter shards, and
/// we don't want the driver thread perturbing the measurement.
const SAMPLE_INTERVAL: Duration = Duration::from_millis(200);

/// How benchmark keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeyDist {
    /// Uniform over the range — the paper's §4 setting.
    #[default]
    Uniform,
    /// Zipf-skewed with the given theta (e.g. `0.99` = YCSB-hot).
    Zipf(f64),
}

/// One cell of the Figure 4 grid.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Number of worker threads (the paper sweeps 1–256).
    pub threads: usize,
    /// Size of the key space; keys are drawn from `1..=key_range`.
    pub key_range: u64,
    /// Operation mix.
    pub workload: Workload,
    /// Measured wall-clock duration (the paper used 30 s per run).
    pub duration: Duration,
    /// Seed for deterministic workload streams.
    pub seed: u64,
    /// Key distribution (the paper uses uniform).
    pub dist: KeyDist,
}

impl BenchConfig {
    /// A small default suitable for quick runs.
    pub fn quick(threads: usize, key_range: u64, workload: Workload) -> Self {
        BenchConfig {
            threads,
            key_range,
            workload,
            duration: Duration::from_millis(500),
            seed: 0x5EED,
            dist: KeyDist::Uniform,
        }
    }
}

/// A per-thread key source implementing [`KeyDist`].
enum KeySource<'a> {
    Uniform(u64),
    Zipf(&'a ZipfGenerator),
}

impl KeySource<'_> {
    #[inline]
    fn next(&self, rng: &mut XorShift64Star) -> u64 {
        match self {
            KeySource::Uniform(range) => 1 + rng.next_bounded(*range),
            KeySource::Zipf(z) => 1 + z.next(rng),
        }
    }
}

/// Result of one measured run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Implementation label.
    pub algorithm: &'static str,
    /// Completed operations across all threads.
    pub total_ops: u64,
    /// Measured wall-clock time.
    pub elapsed: Duration,
    /// Per-thread completed operations (load-balance diagnostics).
    pub per_thread: Vec<u64>,
    /// Periodic metrics samples `(elapsed, snapshot)` taken by the
    /// driver thread during the run, plus one final sample after the
    /// workers join. Empty for implementations without metrics.
    pub samples: Vec<(Duration, MetricsSnapshot)>,
}

impl BenchResult {
    /// The final metrics snapshot (taken after all workers joined, so
    /// every handle has flushed), if the implementation exposes one.
    pub fn final_metrics(&self) -> Option<&MetricsSnapshot> {
        self.samples.last().map(|(_, m)| m)
    }
}

impl BenchResult {
    /// Throughput in million operations per second.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Inserts random keys until the set holds `key_range / 2` of them
/// (§4: "we *pre-populated* the tree prior to starting the simulation
/// run"). Returns the number inserted.
pub fn prepopulate<S: ConcurrentSet>(set: &S, key_range: u64, seed: u64) -> u64 {
    let target = key_range / 2;
    let mut rng = XorShift64Star::from_stream(seed, u64::MAX);
    let mut inserted = 0;
    while inserted < target {
        if set.insert(1 + rng.next_bounded(key_range)) {
            inserted += 1;
        }
    }
    inserted
}

/// Runs one cell: build, pre-populate, run the op mix for the configured
/// duration, return the counts.
pub fn run_throughput<S: ConcurrentSet>(cfg: &BenchConfig) -> BenchResult {
    let set = S::make();
    prepopulate(&set, cfg.key_range, cfg.seed);

    let zipf = match cfg.dist {
        KeyDist::Uniform => None,
        KeyDist::Zipf(theta) => Some(ZipfGenerator::new(cfg.key_range, theta)),
    };
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(cfg.threads + 1);
    let mut per_thread = vec![0u64; cfg.threads];
    let mut elapsed = Duration::ZERO;
    let mut samples: Vec<(Duration, MetricsSnapshot)> = Vec::new();

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let set = &set;
            let stop = &stop;
            let start_barrier = &start_barrier;
            let workload = cfg.workload;
            let key_range = cfg.key_range;
            let seed = cfg.seed;
            let zipf = zipf.as_ref();
            handles.push(s.spawn(move || {
                let source = match zipf {
                    Some(z) => KeySource::Zipf(z),
                    None => KeySource::Uniform(key_range),
                };
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                let mut ops = 0u64;
                start_barrier.wait();
                // Check the stop flag only every few ops so the flag
                // itself stays out of the measured footprint.
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..32 {
                        let key = source.next(&mut rng);
                        match workload.pick(&mut rng) {
                            OpKind::Search => {
                                std::hint::black_box(set.contains(key));
                            }
                            OpKind::Insert => {
                                std::hint::black_box(set.insert(key));
                            }
                            OpKind::Delete => {
                                std::hint::black_box(set.remove(key));
                            }
                        }
                        ops += 1;
                    }
                }
                ops
            }));
        }
        start_barrier.wait();
        let t0 = Instant::now();
        // The driver doubles as a low-rate metrics sampler while the
        // workers run; for implementations without metrics this is the
        // same sleep loop with extra wakeups.
        loop {
            let remaining = cfg.duration.saturating_sub(t0.elapsed());
            if remaining.is_zero() {
                break;
            }
            std::thread::sleep(remaining.min(SAMPLE_INTERVAL));
            if let Some(m) = set.metrics() {
                samples.push((t0.elapsed(), m));
            }
        }
        stop.store(true, Ordering::Relaxed);
        elapsed = t0.elapsed();
        for (t, h) in handles.into_iter().enumerate() {
            per_thread[t] = h.join().expect("bench worker panicked");
        }
    });

    // Final sample after the join: every worker has finished, so batched
    // handle counters (if any) are flushed and the totals are exact.
    if let Some(m) = set.metrics() {
        samples.push((elapsed, m));
    }

    BenchResult {
        algorithm: S::label(),
        total_ops: per_thread.iter().sum(),
        elapsed,
        per_thread,
        samples,
    }
}

/// Runs the PR 5 `sorted-batch` cell: like [`run_throughput`], but each
/// worker draws ascending Zipf-clustered key runs from
/// [`SortedBatchGen`] and applies whole runs through the adapter's
/// batch entry points ([`ConcurrentSet::insert_batch`] and friends).
///
/// Implementations without a native batch path fall back to the
/// default loop-of-singles, so NM's finger-anchored batches and every
/// baseline are measured on identical cells. `total_ops` counts
/// individual keys, not batches, keeping Mops comparable with
/// [`run_throughput`]. Cluster skew follows `cfg.dist` when it is
/// [`KeyDist::Zipf`], else a moderate default of 0.8.
pub fn run_batch_throughput<S: ConcurrentSet>(cfg: &BenchConfig, batch_len: usize) -> BenchResult {
    let set = S::make();
    prepopulate(&set, cfg.key_range, cfg.seed);

    let theta = match cfg.dist {
        KeyDist::Zipf(t) => t,
        KeyDist::Uniform => 0.8,
    };
    let gen = SortedBatchGen::new(cfg.key_range, batch_len, theta);
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(cfg.threads + 1);
    let mut per_thread = vec![0u64; cfg.threads];
    let mut elapsed = Duration::ZERO;
    let mut samples: Vec<(Duration, MetricsSnapshot)> = Vec::new();

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let set = &set;
            let stop = &stop;
            let start_barrier = &start_barrier;
            let gen = &gen;
            let workload = cfg.workload;
            let seed = cfg.seed;
            handles.push(s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                let mut buf = Vec::with_capacity(batch_len);
                let mut ops = 0u64;
                start_barrier.wait();
                while !stop.load(Ordering::Relaxed) {
                    // One stop-flag check per few batches; each batch is
                    // already tens of ops deep.
                    for _ in 0..4 {
                        gen.fill(&mut rng, &mut buf);
                        match workload.pick(&mut rng) {
                            OpKind::Search => {
                                std::hint::black_box(set.contains_batch(&buf));
                            }
                            OpKind::Insert => {
                                std::hint::black_box(set.insert_batch(&buf));
                            }
                            OpKind::Delete => {
                                std::hint::black_box(set.remove_batch(&buf));
                            }
                        }
                        ops += buf.len() as u64;
                    }
                }
                ops
            }));
        }
        start_barrier.wait();
        let t0 = Instant::now();
        loop {
            let remaining = cfg.duration.saturating_sub(t0.elapsed());
            if remaining.is_zero() {
                break;
            }
            std::thread::sleep(remaining.min(SAMPLE_INTERVAL));
            if let Some(m) = set.metrics() {
                samples.push((t0.elapsed(), m));
            }
        }
        stop.store(true, Ordering::Relaxed);
        elapsed = t0.elapsed();
        for (t, h) in handles.into_iter().enumerate() {
            per_thread[t] = h.join().expect("batch bench worker panicked");
        }
    });

    if let Some(m) = set.metrics() {
        samples.push((elapsed, m));
    }

    BenchResult {
        algorithm: S::label(),
        total_ops: per_thread.iter().sum(),
        elapsed,
        per_thread,
        samples,
    }
}

/// Runs a cell `runs` times and returns the mean throughput in Mops/s
/// (the paper averages over multiple runs).
pub fn mean_mops<S: ConcurrentSet>(cfg: &BenchConfig, runs: usize) -> f64 {
    let total: f64 = (0..runs).map(|_| run_throughput::<S>(cfg).mops()).sum();
    total / runs as f64
}

/// Per-operation latency distribution from one run.
#[derive(Debug)]
pub struct LatencyResult {
    /// Implementation label.
    pub algorithm: &'static str,
    /// Merged latency histogram across threads (nanoseconds).
    pub hist: Histogram,
}

/// Measures per-operation latency: each thread runs `ops_per_thread`
/// operations of the configured mix and times every one. The duration
/// field of `cfg` is ignored (the run is op-count bounded, so the
/// histograms are deterministic in size).
pub fn run_latency<S: ConcurrentSet>(cfg: &BenchConfig, ops_per_thread: u64) -> LatencyResult {
    let set = S::make();
    prepopulate(&set, cfg.key_range, cfg.seed);
    let zipf = match cfg.dist {
        KeyDist::Uniform => None,
        KeyDist::Zipf(theta) => Some(ZipfGenerator::new(cfg.key_range, theta)),
    };
    let start_barrier = Barrier::new(cfg.threads);
    let merged = Mutex::new(Histogram::new());

    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let set = &set;
            let start_barrier = &start_barrier;
            let merged = &merged;
            let workload = cfg.workload;
            let key_range = cfg.key_range;
            let seed = cfg.seed;
            let zipf = zipf.as_ref();
            s.spawn(move || {
                let source = match zipf {
                    Some(z) => KeySource::Zipf(z),
                    None => KeySource::Uniform(key_range),
                };
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                let mut hist = Histogram::new();
                start_barrier.wait();
                for _ in 0..ops_per_thread {
                    let key = source.next(&mut rng);
                    let op = workload.pick(&mut rng);
                    let t0 = Instant::now();
                    match op {
                        OpKind::Search => {
                            std::hint::black_box(set.contains(key));
                        }
                        OpKind::Insert => {
                            std::hint::black_box(set.insert(key));
                        }
                        OpKind::Delete => {
                            std::hint::black_box(set.remove(key));
                        }
                    }
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
                merged.lock().unwrap().merge(&hist);
            });
        }
    });

    LatencyResult {
        algorithm: S::label(),
        hist: merged.into_inner().unwrap(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::{NmEbr, NmLeaky};

    #[test]
    fn prepopulate_reaches_half_range() {
        let set = NmLeaky::make();
        let n = prepopulate(&set, 1000, 42);
        assert_eq!(n, 500);
        assert_eq!(set.count(), 500);
    }

    #[test]
    fn prepopulate_is_deterministic() {
        let a = NmLeaky::make();
        let b = NmLeaky::make();
        prepopulate(&a, 256, 7);
        prepopulate(&b, 256, 7);
        for k in 1..=256 {
            assert_eq!(
                ConcurrentSet::contains(&a, k),
                ConcurrentSet::contains(&b, k)
            );
        }
    }

    #[test]
    fn short_run_produces_throughput() {
        let cfg = BenchConfig {
            threads: 2,
            key_range: 128,
            workload: Workload::MIXED,
            duration: Duration::from_millis(50),
            seed: 1,
            dist: crate::runner::KeyDist::Uniform,
        };
        let res = run_throughput::<NmEbr>(&cfg);
        assert!(res.total_ops > 0);
        assert_eq!(res.per_thread.len(), 2);
        assert!(res.per_thread.iter().all(|&c| c > 0));
        assert!(res.mops() > 0.0);
        assert!(res.elapsed >= Duration::from_millis(50));
        // NM exposes metrics, so the run carries at least the final
        // post-join sample, and it accounts for every measured op (plus
        // pre-population inserts).
        let m = res.final_metrics().expect("NmEbr has metrics");
        assert!(m.searches + m.inserts + m.removes >= res.total_ops);
    }

    #[test]
    fn metrics_sampling_skips_implementations_without_metrics() {
        use nmbst_baselines::locked::LockedBTreeSet;
        let cfg = BenchConfig {
            threads: 1,
            key_range: 64,
            workload: Workload::MIXED,
            duration: Duration::from_millis(10),
            seed: 2,
            dist: crate::runner::KeyDist::Uniform,
        };
        let res = run_throughput::<LockedBTreeSet>(&cfg);
        assert!(res.total_ops > 0);
        assert!(res.samples.is_empty(), "baselines sample nothing");
        assert!(res.final_metrics().is_none());
    }

    #[test]
    fn batch_run_produces_throughput_and_finger_hits() {
        let cfg = BenchConfig {
            threads: 2,
            key_range: 4_096,
            workload: Workload::MIXED,
            duration: Duration::from_millis(50),
            seed: 9,
            dist: KeyDist::Uniform,
        };
        let res = run_batch_throughput::<NmEbr>(&cfg, 32);
        assert!(res.total_ops > 0);
        assert!(res.per_thread.iter().all(|&c| c > 0));
        let m = res.final_metrics().expect("NmEbr has metrics");
        assert!(
            m.finger_hits > 0,
            "sorted-batch run recorded zero finger hits"
        );
    }

    #[test]
    fn batch_run_works_on_baselines_via_default_loop() {
        use nmbst_baselines::locked::LockedBTreeSet;
        let cfg = BenchConfig {
            threads: 2,
            key_range: 1_024,
            workload: Workload::MIXED,
            duration: Duration::from_millis(20),
            seed: 4,
            dist: KeyDist::Zipf(0.9),
        };
        let res = run_batch_throughput::<LockedBTreeSet>(&cfg, 16);
        assert!(res.total_ops > 0);
        assert!(res.final_metrics().is_none(), "baselines have no metrics");
    }

    #[test]
    fn all_workloads_run_on_all_algorithms() {
        use crate::adapter::*;
        use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree, locked::LockedBTreeSet};
        fn one<S: ConcurrentSet>() {
            for w in Workload::FIGURE4 {
                let cfg = BenchConfig {
                    threads: 2,
                    key_range: 64,
                    workload: w,
                    duration: Duration::from_millis(10),
                    seed: 3,
                    dist: crate::runner::KeyDist::Uniform,
                };
                let r = run_throughput::<S>(&cfg);
                assert!(r.total_ops > 0, "{} idle under {}", S::label(), w.name);
            }
        }
        one::<NmLeaky>();
        one::<NmEbr>();
        one::<NmCasOnly>();
        one::<EfrbTree>();
        one::<HjTree>();
        one::<BccoTree>();
        one::<LockedBTreeSet>();
    }
}
