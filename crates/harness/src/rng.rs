//! Deterministic, allocation-free PRNGs for workload generation.
//!
//! The benchmark loop must not allocate or take locks, or the harness
//! would distort exactly the effects Figure 4 measures. SplitMix64 is
//! used for seeding and stream splitting; xorshift* for the per-thread
//! op stream.

/// SplitMix64: fast, full-period 2⁶⁴ generator; the standard seeder.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xorshift64*: 3 shifts + 1 multiply per number; what the benchmark
/// threads run in their hot loop.
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator; a zero seed is remapped (xorshift's only
    /// fixed point is 0).
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Derives the `stream`-th independent generator from `seed`.
    pub fn from_stream(seed: u64, stream: u64) -> Self {
        let mut seeder = SplitMix64::new(seed ^ stream.wrapping_mul(0xA24BAED4963EE407));
        // Burn a few outputs so nearby streams decorrelate.
        let a = seeder.next_u64();
        let b = seeder.next_u64();
        Self::new(a ^ b.rotate_left(17))
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)` (Lemire's multiply-shift; bound > 0).
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[0, 100)`; the workload-mix die.
    #[inline]
    pub fn next_percent(&mut self) -> u8 {
        self.next_bounded(100) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = XorShift64Star::from_stream(7, 0);
        let mut b = XorShift64Star::from_stream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn bounded_respects_bound_and_covers_range() {
        let mut r = XorShift64Star::new(123);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_bounded(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn percent_distribution_roughly_uniform() {
        let mut r = XorShift64Star::new(99);
        let mut below_half = 0;
        const N: usize = 100_000;
        for _ in 0..N {
            if r.next_percent() < 50 {
                below_half += 1;
            }
        }
        let frac = below_half as f64 / N as f64;
        assert!((0.48..0.52).contains(&frac), "p(<50) = {frac}");
    }

    #[test]
    fn splitmix_known_sequence_sanity() {
        let mut s = SplitMix64::new(0);
        let first = s.next_u64();
        // Reference value for SplitMix64(0) from the original paper's code.
        assert_eq!(first, 0xE220A8397B1DCDAF);
    }
}
