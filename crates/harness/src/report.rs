//! Plain-text and CSV table formatting for benchmark reports.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a throughput value for reports.
pub fn fmt_mops(mops: f64) -> String {
    format!("{mops:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["algo", "mops"]);
        t.push_row(vec!["NM-BST", "1.234"]);
        t.push_row(vec!["EFRB-BST", "0.9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[2].trim_start().starts_with("NM-BST"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["name", "v"]);
        t.push_row(vec!["mixed (70,20,10)", "1"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"mixed (70,20,10)\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
