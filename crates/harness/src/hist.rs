//! A log-bucketed latency histogram (HDR-style, fixed memory).
//!
//! Buckets are powers of two of nanoseconds, each split into 16 linear
//! sub-buckets, giving ≤ 6.7% relative error per recorded value — ample
//! for the percentile reporting benchmarks need, with zero allocation
//! per record.

/// Sub-buckets per power-of-two bucket.
const SUBS: usize = 16;
/// Covers 1 ns .. ~64 s.
const BUCKETS: usize = 36;

/// A fixed-size latency histogram in nanoseconds.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS * SUBS]>,
    total: u64,
    max: u64,
    sum: u128,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS * SUBS]),
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    fn index(ns: u64) -> usize {
        // Clamp into the representable range so the sub-bucket arithmetic
        // below cannot overflow for absurd inputs.
        let ns = ns.clamp(1, (1u64 << BUCKETS) - 1);
        let bucket = (63 - ns.leading_zeros()) as usize;
        // Position within the bucket, scaled to SUBS slots.
        let base = 1u64 << bucket;
        let sub = if bucket == 0 {
            0
        } else {
            (((ns - base) * SUBS as u64) >> bucket) as usize
        };
        bucket * SUBS + sub.min(SUBS - 1)
    }

    /// Lower edge (ns) of the slot with the given flat index.
    fn slot_value(idx: usize) -> u64 {
        let bucket = idx / SUBS;
        let sub = (idx % SUBS) as u64;
        let base = 1u64 << bucket;
        base + ((sub << bucket) / SUBS as u64)
    }

    /// Records one latency (nanoseconds).
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
        self.max = self.max.max(ns);
        self.sum += ns as u128;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate `p`-th percentile (`0.0 ..= 100.0`), within one
    /// sub-bucket of the true value.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::slot_value(idx).min(self.max);
            }
        }
        self.max
    }

    /// One-line summary: `n, mean, p50, p99, p99.9, max` in µs.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.2}us p50={:.2}us p99={:.2}us p99.9={:.2}us max={:.2}us",
            self.total,
            self.mean() / 1e3,
            self.percentile(50.0) as f64 / 1e3,
            self.percentile(99.0) as f64 / 1e3,
            self.percentile(99.9) as f64 / 1e3,
            self.max as f64 / 1e3,
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram({})", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.len(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 1000.0);
        let p50 = h.percentile(50.0);
        assert!((937..=1000).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
        // Within bucket resolution of the true values.
        assert!((4500..=5100).contains(&p50), "p50 = {p50}");
        assert!((8400..=9100).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn relative_error_within_bucket_resolution() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 129, 1023, 65_537, 1_000_000] {
            h.record(v);
        }
        // Each recorded value's slot lower-edge is within 1/16 of it.
        for v in [3u64, 17, 129, 1023, 65_537, 1_000_000] {
            let idx = Histogram::index(v);
            let edge = Histogram::slot_value(idx);
            assert!(edge <= v, "edge {edge} above value {v}");
            assert!(
                (v - edge) as f64 <= v as f64 / 8.0,
                "edge {edge} too far below {v}"
            );
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(10 + i);
            b.record(100_000 + i);
        }
        a.merge(&b);
        assert_eq!(a.len(), 200);
        assert_eq!(a.max(), 100_099);
        assert!(a.percentile(25.0) < 1_000);
        assert!(a.percentile(75.0) > 50_000);
    }

    #[test]
    fn zero_and_huge_values_clamp() {
        let mut h = Histogram::new();
        h.record(0); // clamped to 1 ns
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(h.len(), 2);
        assert_eq!(h.max(), u64::MAX);
        let _ = h.summary();
    }
}
