//! The harness's latency histogram — now a re-export of the core
//! implementation.
//!
//! This module originated the log-bucketed design (powers of two of
//! nanoseconds, 16 linear sub-buckets each, ≤ 6.7% relative error,
//! fixed memory); the core crate promoted it to `nmbst::obs::hist` so
//! the tree, the server, and the harness all bucket identically — a
//! server-reported percentile and a client-observed one land in the
//! same slot for the same duration, which is what lets the replay
//! bench cross-check them. The single-threaded `Histogram` lives there
//! now; the harness keeps this alias so bench code keeps reading as
//! before (the concurrent variant is `nmbst::obs::hist::ConcurrentHistogram`).

pub use nmbst::obs::hist::Histogram;

#[cfg(test)]
mod tests {
    use super::Histogram;

    // The harness's original behavioral contract, kept here so a core
    // refactor that breaks bench expectations fails in this crate too.
    #[test]
    fn harness_contract_percentiles_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..100 {
            a.record(10 + i);
            b.record(100_000 + i);
        }
        a.merge(&b);
        assert_eq!(a.len(), 200);
        assert_eq!(a.max(), 100_099);
        assert!(a.percentile(25.0) < 1_000);
        assert!(a.percentile(75.0) > 50_000);
        let p50 = a.percentile(50.0);
        let p99 = a.percentile(99.0);
        assert!(p50 <= p99 && p99 <= a.max());
        assert!(!a.summary().is_empty());
    }

    #[test]
    fn harness_contract_extremes_clamp() {
        let mut h = Histogram::new();
        h.record(0); // clamped to 1 ns
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(h.len(), 2);
        assert_eq!(h.max(), u64::MAX);
        let _ = h.summary();
    }
}
