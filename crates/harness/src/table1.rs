//! Regenerating Table 1: per-operation objects allocated and atomic
//! instructions executed, in the absence of contention.
//!
//! Methodology: a single thread builds a tree of odd keys, then performs
//! a batch of inserts of fresh (even) keys and a batch of deletes of
//! those keys, reading the instrumentation counters around each batch.
//! No other thread runs, so every operation succeeds on its first
//! attempt — the paper's "absence of contention" column.
//!
//! Requires `feature = "instrument"` on `nmbst` and `nmbst-baselines`
//! (forwarded by this crate's `instrument` feature); without it all
//! counts read zero.

use nmbst::{NmTreeSet, PoolConfig, TagMode, TreeConfig};
use nmbst_baselines::{efrb::EfrbTree, hj::HjTree};
use nmbst_reclaim::Leaky;

/// Per-operation averages for one algorithm (one row of Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Algorithm label (paper row name).
    pub algorithm: &'static str,
    /// Objects allocated per insert.
    pub insert_allocs: f64,
    /// Objects allocated per delete.
    pub delete_allocs: f64,
    /// Atomic RMW instructions per insert.
    pub insert_atomics: f64,
    /// Atomic RMW instructions per delete.
    pub delete_atomics: f64,
}

const BASE: u64 = 1_000;
const OPS: u64 = 500;

fn even_keys() -> impl Iterator<Item = u64> {
    (1..BASE).map(|i| i * 2)
}

fn odd_keys() -> impl Iterator<Item = u64> {
    (0..BASE).map(|i| i * 2 + 1)
}

/// Measures NM-BST (this paper). Expected: insert 2 allocs / 1 CAS,
/// delete 0 allocs / 3 atomics (1 flag CAS + 1 BTS + 1 splice CAS).
///
/// The node pool is disabled: Table 1 counts the *algorithm's* allocator
/// traffic, and pool-served nodes would show up as `pool_hits` instead
/// of `allocs`, measuring the recycling layer rather than the paper.
/// Likewise `leaf_cap = 1`: the paper's costs are stated for 1-key
/// leaves, where every insert is the classic two-node subtree and every
/// delete is a structural flag/tag/splice (fat leaves replace most of
/// those with cheaper copy-on-write block publishes, which is the PR 7
/// optimisation, not the paper's row).
pub fn measure_nm(tag_mode: TagMode) -> CostRow {
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(
        TreeConfig::default()
            .with_tag_mode(tag_mode)
            .with_pool(PoolConfig::disabled())
            .with_leaf_cap(1),
    );
    for k in odd_keys() {
        set.insert(k);
    }
    let before = nmbst::stats::snapshot();
    for k in even_keys().take(OPS as usize) {
        assert!(set.insert(k));
    }
    let mid = nmbst::stats::snapshot();
    for k in even_keys().take(OPS as usize) {
        assert!(set.remove(&k));
    }
    let after = nmbst::stats::snapshot();
    let ins = mid.since(&before);
    let del = after.since(&mid);
    CostRow {
        algorithm: "This work (NM)",
        insert_allocs: ins.allocs as f64 / OPS as f64,
        delete_allocs: del.allocs as f64 / OPS as f64,
        insert_atomics: ins.atomics() as f64 / OPS as f64,
        delete_atomics: del.atomics() as f64 / OPS as f64,
    }
}

/// Measures EFRB. Expected: insert 4 allocs / 3 CAS, delete 1 alloc /
/// 4 CAS.
pub fn measure_efrb() -> CostRow {
    let set = EfrbTree::new();
    for k in odd_keys() {
        set.insert(k);
    }
    nmbst_baselines::stats::reset();
    let before = nmbst_baselines::stats::snapshot();
    for k in even_keys().take(OPS as usize) {
        assert!(set.insert(k));
    }
    let mid = nmbst_baselines::stats::snapshot();
    for k in even_keys().take(OPS as usize) {
        assert!(set.remove(&k));
    }
    let after = nmbst_baselines::stats::snapshot();
    let ins = mid.since(&before);
    let del = after.since(&mid);
    CostRow {
        algorithm: "Ellen et al. (EFRB)",
        insert_allocs: ins.allocs as f64 / OPS as f64,
        delete_allocs: del.allocs as f64 / OPS as f64,
        insert_atomics: ins.cas as f64 / OPS as f64,
        delete_atomics: del.cas as f64 / OPS as f64,
    }
}

/// Measures HJ. Expected: insert 2 allocs / 3 CAS; delete averages
/// between the ≤1-child case (1 alloc / 4 CAS) and the relocation case
/// ("up to 9" atomics).
pub fn measure_hj() -> CostRow {
    let set = HjTree::new();
    for k in odd_keys() {
        set.insert(k);
    }
    nmbst_baselines::stats::reset();
    let before = nmbst_baselines::stats::snapshot();
    for k in even_keys().take(OPS as usize) {
        assert!(set.insert(k));
    }
    let mid = nmbst_baselines::stats::snapshot();
    for k in even_keys().take(OPS as usize) {
        assert!(set.remove(&k));
    }
    let after = nmbst_baselines::stats::snapshot();
    let ins = mid.since(&before);
    let del = after.since(&mid);
    CostRow {
        algorithm: "Howley & Jones (HJ)",
        insert_allocs: ins.allocs as f64 / OPS as f64,
        delete_allocs: del.allocs as f64 / OPS as f64,
        insert_atomics: ins.cas as f64 / OPS as f64,
        delete_atomics: del.cas as f64 / OPS as f64,
    }
}

/// All three rows of Table 1, in the paper's order.
pub fn table1_rows() -> Vec<CostRow> {
    vec![measure_efrb(), measure_hj(), measure_nm(TagMode::FetchOr)]
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(rows: &[CostRow]) -> String {
    let mut t = crate::report::Table::new(vec![
        "Algorithm",
        "allocs/insert",
        "allocs/delete",
        "atomics/insert",
        "atomics/delete",
    ]);
    for r in rows {
        t.push_row(vec![
            r.algorithm.to_string(),
            format!("{:.2}", r.insert_allocs),
            format!("{:.2}", r.delete_allocs),
            format!("{:.2}", r.insert_atomics),
            format!("{:.2}", r.delete_atomics),
        ]);
    }
    t.render()
}

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::*;

    #[test]
    fn nm_matches_paper_exactly() {
        let row = measure_nm(TagMode::FetchOr);
        // Table 1, "This work": 2 / 0 objects, 1 / 3 atomics.
        assert_eq!(row.insert_allocs, 2.0);
        assert_eq!(row.delete_allocs, 0.0);
        assert_eq!(row.insert_atomics, 1.0);
        assert_eq!(row.delete_atomics, 3.0);
    }

    #[test]
    fn efrb_matches_paper_exactly() {
        let row = measure_efrb();
        // Table 1, "Ellen et al.": 4 / 1 objects, 3 / 4 atomics.
        assert_eq!(row.insert_allocs, 4.0);
        assert_eq!(row.delete_allocs, 1.0);
        assert_eq!(row.insert_atomics, 3.0);
        assert_eq!(row.delete_atomics, 4.0);
    }

    #[test]
    fn hj_matches_paper() {
        let row = measure_hj();
        // Table 1, "Howley & Jones": 2 objects / 3 atomics per insert;
        // deletes: ≥1 object, between 4 and 9 atomics depending on how
        // many victims had two children.
        assert_eq!(row.insert_allocs, 2.0);
        assert_eq!(row.insert_atomics, 3.0);
        assert!(row.delete_allocs >= 1.0 && row.delete_allocs <= 2.0);
        assert!(
            row.delete_atomics >= 4.0 && row.delete_atomics <= 9.0,
            "delete atomics {}",
            row.delete_atomics
        );
    }

    #[test]
    fn cas_only_variant_costs_one_extra_nothing_on_insert() {
        let bts = measure_nm(TagMode::FetchOr);
        let cas = measure_nm(TagMode::CasLoop);
        assert_eq!(cas.insert_atomics, bts.insert_atomics);
        // Uncontended, the CAS loop also takes exactly one attempt.
        assert_eq!(cas.delete_atomics, bts.delete_atomics);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = table1_rows();
        let s = render_table1(&rows);
        assert!(s.contains("This work"));
        assert!(s.contains("Ellen"));
        assert!(s.contains("Howley"));
    }
}
