//! Zipfian key generation (skewed access), for workloads beyond the
//! paper's uniform draws.
//!
//! The paper samples keys uniformly; real caches and indexes see skew.
//! This is the standard Gray et al. incremental-zeta generator (the one
//! YCSB uses): item ranks follow `P(rank = k) ∝ 1 / k^θ`.

use crate::rng::XorShift64Star;

/// A Zipf-distributed generator over `0..n`.
///
/// `theta` ∈ \[0, 1): 0 = uniform, 0.99 = heavily skewed (YCSB default).
///
/// # Examples
///
/// ```
/// use nmbst_harness::rng::XorShift64Star;
/// use nmbst_harness::zipf::ZipfGenerator;
///
/// let mut rng = XorShift64Star::new(7);
/// let zipf = ZipfGenerator::new(1000, 0.99);
/// let k = zipf.next(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    zeta_2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl ZipfGenerator {
    /// Builds a generator over `0..n` with skew `theta`. `O(n)` setup
    /// (computes the harmonic normalizer).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zeta_n = zeta(n, theta);
        let zeta_2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        ZipfGenerator {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            zeta_2,
        }
    }

    /// Draws the next rank in `0..n` (rank 0 is the hottest).
    pub fn next(&self, rng: &mut XorShift64Star) -> u64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The size of the key space.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Exposes the second-order normalizer (diagnostics/tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_in_range() {
        let z = ZipfGenerator::new(100, 0.9);
        let mut rng = XorShift64Star::new(1);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest_under_skew() {
        let z = ZipfGenerator::new(1000, 0.99);
        let mut rng = XorShift64Star::new(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..200_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
        // Hot head: top-10 ranks should dominate a heavy-tailed draw.
        let head: u32 = counts[..10].iter().sum();
        assert!(head as f64 > 0.35 * 200_000.0, "head too cold: {head}");
    }

    #[test]
    fn low_theta_approaches_uniform() {
        let z = ZipfGenerator::new(64, 0.01);
        let mut rng = XorShift64Star::new(3);
        let mut counts = vec![0u32; 64];
        const N: u32 = 256_000;
        for _ in 0..N {
            counts[z.next(&mut rng) as usize] += 1;
        }
        let expected = N / 64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected as f64 * 0.5 && (c as f64) < expected as f64 * 2.0,
                "bucket {i} has {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_theta_one() {
        let _ = ZipfGenerator::new(10, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_space() {
        let _ = ZipfGenerator::new(0, 0.5);
    }
}
