//! The common interface the benchmark runner drives, and adapters for
//! every implementation under comparison.

use nmbst::obs::MetricsSnapshot;
use nmbst::{NmTreeSet, TagMode};
use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree, locked::LockedBTreeSet};
use nmbst_reclaim::{Ebr, Leaky};

/// The dictionary ADT of §2, as seen by the benchmark harness.
///
/// Keys are `u64` in `1..=key_range` (1-based so the HJ baseline's zero
/// sentinel is never used as a user key).
pub trait ConcurrentSet: Send + Sync + 'static {
    /// Construct an empty instance.
    fn make() -> Self
    where
        Self: Sized;

    /// Display name used in reports (matches the paper's labels).
    fn label() -> &'static str
    where
        Self: Sized;

    /// The paper's *insert*.
    fn insert(&self, key: u64) -> bool;
    /// The paper's *delete*.
    fn remove(&self, key: u64) -> bool;
    /// The paper's *search*.
    fn contains(&self, key: u64) -> bool;

    /// A point-in-time metrics snapshot, for implementations that expose
    /// one (the NM variants). Baselines return `None` and the runner
    /// skips sampling for them.
    fn metrics(&self) -> Option<MetricsSnapshot> {
        None
    }

    /// Applies an ascending run of inserts; returns how many were new.
    ///
    /// The default loops over [`ConcurrentSet::insert`], so every
    /// baseline gets measured on the same sorted-batch cells as NM. The
    /// NM adapters override this to route through the finger-anchored
    /// handle batch path.
    fn insert_batch(&self, keys: &[u64]) -> usize {
        keys.iter().filter(|&&k| self.insert(k)).count()
    }

    /// Applies an ascending run of deletes; returns how many were
    /// present. Default loops [`ConcurrentSet::remove`].
    fn remove_batch(&self, keys: &[u64]) -> usize {
        keys.iter().filter(|&&k| self.remove(k)).count()
    }

    /// Applies an ascending run of searches; returns how many were
    /// present. Default loops [`ConcurrentSet::contains`].
    fn contains_batch(&self, keys: &[u64]) -> usize {
        keys.iter().filter(|&&k| self.contains(k)).count()
    }
}

/// NM-BST in the paper's evaluation regime: no memory reclamation.
pub type NmLeaky = NmTreeSet<u64, Leaky>;
/// NM-BST in production regime: epoch-based reclamation.
pub type NmEbr = NmTreeSet<u64, Ebr>;

impl ConcurrentSet for NmLeaky {
    fn make() -> Self {
        NmTreeSet::new()
    }
    fn label() -> &'static str {
        "NM-BST"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        NmTreeSet::insert(self, key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        NmTreeSet::remove(self, &key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        NmTreeSet::contains(self, &key)
    }
    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(NmTreeSet::metrics(self))
    }
    fn insert_batch(&self, keys: &[u64]) -> usize {
        self.handle().insert_batch(keys.iter().copied())
    }
    fn remove_batch(&self, keys: &[u64]) -> usize {
        self.handle().remove_batch(keys.iter().copied())
    }
    fn contains_batch(&self, keys: &[u64]) -> usize {
        self.handle()
            .contains_batch(keys.iter().copied())
            .into_iter()
            .filter(|&hit| hit)
            .count()
    }
}

impl ConcurrentSet for NmEbr {
    fn make() -> Self {
        NmTreeSet::new()
    }
    fn label() -> &'static str {
        "NM-BST(ebr)"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        NmTreeSet::insert(self, key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        NmTreeSet::remove(self, &key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        NmTreeSet::contains(self, &key)
    }
    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(NmTreeSet::metrics(self))
    }
    fn insert_batch(&self, keys: &[u64]) -> usize {
        self.handle().insert_batch(keys.iter().copied())
    }
    fn remove_batch(&self, keys: &[u64]) -> usize {
        self.handle().remove_batch(keys.iter().copied())
    }
    fn contains_batch(&self, keys: &[u64]) -> usize {
        self.handle()
            .contains_batch(keys.iter().copied())
            .into_iter()
            .filter(|&hit| hit)
            .count()
    }
}

/// NM-BST with the CAS-only tag variant (§6), for the BTS ablation.
pub struct NmCasOnly(NmTreeSet<u64, Leaky>);

impl ConcurrentSet for NmCasOnly {
    fn make() -> Self {
        NmCasOnly(NmTreeSet::with_tag_mode(TagMode::CasLoop))
    }
    fn label() -> &'static str {
        "NM-BST(cas-only)"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        self.0.insert(key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        self.0.remove(&key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        self.0.contains(&key)
    }
    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.0.metrics())
    }
}

impl ConcurrentSet for EfrbTree {
    fn make() -> Self {
        EfrbTree::new()
    }
    fn label() -> &'static str {
        "EFRB-BST"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        EfrbTree::insert(self, key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        EfrbTree::remove(self, &key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        EfrbTree::contains(self, &key)
    }
}

impl ConcurrentSet for HjTree {
    fn make() -> Self {
        HjTree::new()
    }
    fn label() -> &'static str {
        "HJ-BST"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        HjTree::insert(self, key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        HjTree::remove(self, &key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        HjTree::contains(self, &key)
    }
}

impl ConcurrentSet for BccoTree {
    fn make() -> Self {
        BccoTree::new()
    }
    fn label() -> &'static str {
        "BCCO-BST"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        BccoTree::insert(self, key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        BccoTree::remove(self, &key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        BccoTree::contains(self, &key)
    }
}

impl ConcurrentSet for LockedBTreeSet {
    fn make() -> Self {
        LockedBTreeSet::new()
    }
    fn label() -> &'static str {
        "LOCKED-BTREE"
    }
    #[inline]
    fn insert(&self, key: u64) -> bool {
        LockedBTreeSet::insert(self, key)
    }
    #[inline]
    fn remove(&self, key: u64) -> bool {
        LockedBTreeSet::remove(self, &key)
    }
    #[inline]
    fn contains(&self, key: u64) -> bool {
        LockedBTreeSet::contains(self, &key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: ConcurrentSet>() {
        let s = S::make();
        assert!(!s.contains(7));
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(!s.contains(7));
        assert!(!S::label().is_empty());
    }

    #[test]
    fn all_adapters_satisfy_set_semantics() {
        exercise::<NmLeaky>();
        exercise::<NmEbr>();
        exercise::<NmCasOnly>();
        exercise::<EfrbTree>();
        exercise::<HjTree>();
        exercise::<BccoTree>();
        exercise::<LockedBTreeSet>();
    }

    fn exercise_batch<S: ConcurrentSet>() {
        let s = S::make();
        let run: Vec<u64> = (10..20).collect();
        assert_eq!(s.insert_batch(&run), 10, "{}", S::label());
        assert_eq!(s.insert_batch(&run), 0, "{}: re-insert", S::label());
        assert_eq!(s.contains_batch(&run), 10, "{}", S::label());
        assert_eq!(s.contains_batch(&[1, 15, 99]), 1, "{}", S::label());
        assert_eq!(s.remove_batch(&[10, 11, 99]), 2, "{}", S::label());
        assert_eq!(s.contains_batch(&run), 8, "{}", S::label());
    }

    /// Batch entry points agree with the single-op ones on every
    /// adapter — the native NM overrides and the default loops alike.
    #[test]
    fn batch_entry_points_match_single_op_semantics() {
        exercise_batch::<NmLeaky>();
        exercise_batch::<NmEbr>();
        exercise_batch::<NmCasOnly>();
        exercise_batch::<EfrbTree>();
        exercise_batch::<HjTree>();
        exercise_batch::<BccoTree>();
        exercise_batch::<LockedBTreeSet>();
    }

    /// The NM override actually exercises the finger path: a sorted
    /// sweep through a persistent key run must record finger hits.
    #[test]
    fn nm_batch_override_reports_finger_hits() {
        let s = NmEbr::make();
        let run: Vec<u64> = (1..=256).collect();
        assert_eq!(s.insert_batch(&run), 256);
        assert_eq!(s.contains_batch(&run), 256);
        let m = ConcurrentSet::metrics(&s).expect("NM exposes metrics");
        assert!(
            m.finger_hits > 0,
            "sorted batches took zero finger-anchored descents"
        );
    }
}
