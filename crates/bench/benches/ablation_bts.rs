//! Ablation: BTS (`fetch_or`) vs CAS-only tagging.
//!
//! §6: "our algorithm can be easily modified to use only compare-and-swap
//! instructions." This bench quantifies what the BTS buys: the cleanup
//! routine's tag step is the only difference between the two variants,
//! exercised hardest by a write-dominated workload on a tiny key space
//! (maximal delete/helping traffic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmbst_harness::adapter::{ConcurrentSet, NmCasOnly, NmLeaky};
use nmbst_harness::prepopulate;
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::workload::{OpKind, Workload};
use std::time::Duration;

const OPS_PER_ITER: u64 = 4_000;

fn run_batch<S: ConcurrentSet>(set: &S, threads: usize, key_range: u64, seed: u64) {
    let w = Workload::WRITE_DOMINATED;
    std::thread::scope(|s| {
        for t in 0..threads {
            let set = &set;
            s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                for _ in 0..OPS_PER_ITER / threads as u64 {
                    let key = 1 + rng.next_bounded(key_range);
                    match w.pick(&mut rng) {
                        OpKind::Insert => {
                            std::hint::black_box(set.insert(key));
                        }
                        _ => {
                            std::hint::black_box(set.remove(key));
                        }
                    }
                }
            });
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bts_vs_cas");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_ITER));
    for key_range in [128u64, 1024] {
        for threads in [1usize, 4] {
            let nm = NmLeaky::make();
            prepopulate(&nm, key_range, 7);
            group.bench_with_input(
                BenchmarkId::new("fetch_or", format!("{key_range}keys/{threads}t")),
                &(),
                |b, _| {
                    let mut round = 0;
                    b.iter(|| {
                        round += 1;
                        run_batch(&nm, threads, key_range, round);
                    });
                },
            );
            let cas = NmCasOnly::make();
            prepopulate(&cas, key_range, 7);
            group.bench_with_input(
                BenchmarkId::new("cas_loop", format!("{key_range}keys/{threads}t")),
                &(),
                |b, _| {
                    let mut round = 0;
                    b.iter(|| {
                        round += 1;
                        run_batch(&cas, threads, key_range, round);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(ablation_bts, bench);
criterion_main!(ablation_bts);
