//! Criterion companion to **Table 1**: uncontended single-op latency of
//! insert and delete for each lock-free algorithm, plus (printed once)
//! the measured allocation/atomic counts the table reports.
//!
//! The counts are the real Table 1 content (regenerated exactly by the
//! `table1` binary and asserted in `tests/table1_counts.rs`); the
//! latency numbers here show the counts' downstream effect.

use criterion::{criterion_group, criterion_main, Criterion};
use nmbst::NmTreeSet;
use nmbst_baselines::{efrb::EfrbTree, hj::HjTree};
use nmbst_harness::table1::{render_table1, table1_rows};
use nmbst_reclaim::Leaky;
use std::time::Duration;

/// Odd keys 1..2000 in a shuffled (but deterministic) order, so the
/// pre-populated trees are random-shaped rather than degenerate spines —
/// otherwise the latency comparison measures path length, not the
/// per-operation costs this bench is about.
fn shuffled_odd_keys() -> Vec<u64> {
    let mut keys: Vec<u64> = (1..2000u64).step_by(2).collect();
    let mut x = 0x9E3779B97F4A7C15u64;
    for i in (1..keys.len()).rev() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        keys.swap(i, (x % (i as u64 + 1)) as usize);
    }
    keys
}

fn bench_uncontended(c: &mut Criterion) {
    // Print the measured Table 1 once, so `cargo bench` output contains
    // the actual reproduction artifact.
    println!("\n{}", render_table1(&table1_rows()));

    let mut group = c.benchmark_group("table1/uncontended_modify_pair");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("NM-BST", |b| {
        let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
        for k in shuffled_odd_keys() {
            set.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 2) % 2000;
            std::hint::black_box(set.insert(k + 2));
            std::hint::black_box(set.remove(&(k + 2)));
        });
    });

    group.bench_function("EFRB-BST", |b| {
        let set = EfrbTree::new();
        for k in shuffled_odd_keys() {
            set.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 2) % 2000;
            std::hint::black_box(set.insert(k + 2));
            std::hint::black_box(set.remove(&(k + 2)));
        });
    });

    group.bench_function("HJ-BST", |b| {
        let set = HjTree::new();
        for k in shuffled_odd_keys() {
            set.insert(k);
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 2) % 2000;
            std::hint::black_box(set.insert(k + 2));
            std::hint::black_box(set.remove(&(k + 2)));
        });
    });

    group.finish();
}

criterion_group!(table1, bench_uncontended);
criterion_main!(table1);
