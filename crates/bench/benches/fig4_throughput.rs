//! Criterion version of **Figure 4** (scaled down so `cargo bench`
//! completes quickly; the full-fidelity sweep is the `figure4` binary).
//!
//! Measures the time for a fixed batch of mixed operations on a
//! pre-populated tree, for every algorithm × workload at a mid-size key
//! range, at 1 and 2 threads. Criterion reports throughput in
//! elements/second, directly comparable across algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree, locked::LockedBTreeSet};
use nmbst_harness::adapter::{ConcurrentSet, NmLeaky};
use nmbst_harness::prepopulate;
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::workload::{OpKind, Workload};
use std::time::Duration;

const KEY_RANGE: u64 = 10_000;
const OPS_PER_ITER: u64 = 4_000;

/// Runs `OPS_PER_ITER` operations split across `threads` workers.
fn run_batch<S: ConcurrentSet>(set: &S, threads: usize, workload: Workload, seed: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let set = &set;
            s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                for _ in 0..OPS_PER_ITER / threads as u64 {
                    let key = 1 + rng.next_bounded(KEY_RANGE);
                    match workload.pick(&mut rng) {
                        OpKind::Search => {
                            std::hint::black_box(set.contains(key));
                        }
                        OpKind::Insert => {
                            std::hint::black_box(set.insert(key));
                        }
                        OpKind::Delete => {
                            std::hint::black_box(set.remove(key));
                        }
                    }
                }
            });
        }
    });
}

fn bench_algo<S: ConcurrentSet>(c: &mut Criterion, threads: usize) {
    let mut group = c.benchmark_group(format!("fig4/{}threads", threads));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_ITER));
    for workload in Workload::FIGURE4 {
        let set = S::make();
        prepopulate(&set, KEY_RANGE, 0x5EED);
        group.bench_with_input(
            BenchmarkId::new(S::label(), workload.name),
            &workload,
            |b, &w| {
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    run_batch(&set, threads, w, round);
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    for threads in [1usize, 2] {
        bench_algo::<NmLeaky>(c, threads);
        bench_algo::<BccoTree>(c, threads);
        bench_algo::<EfrbTree>(c, threads);
        bench_algo::<HjTree>(c, threads);
        bench_algo::<LockedBTreeSet>(c, threads);
    }
}

criterion_group!(fig4, benches);
criterion_main!(fig4);
