//! Ablation: chain removal — "multiple leaf nodes may be removed from
//! the tree in a single step" (§5, fifth point; Figure 2).
//!
//! An adversarial delete-heavy workload on a tiny key space makes
//! overlapping deletes common, so splices regularly excise whole chains.
//! With `instrument` counters (enabled for this crate) we report, per
//! thread configuration, how many nodes each successful splice unlinked
//! on average — the direct evidence of the mechanism — alongside the
//! usual throughput measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmbst::stats;
use nmbst_harness::adapter::{ConcurrentSet, NmLeaky};
use nmbst_harness::prepopulate;
use nmbst_harness::rng::XorShift64Star;
use std::sync::Mutex;
use std::time::Duration;

const OPS_PER_ITER: u64 = 4_000;
const KEY_RANGE: u64 = 64;

/// Delete-then-reinsert churn; returns (splices, unlinked, cleanups).
fn churn(set: &NmLeaky, threads: usize, seed: u64, totals: &Mutex<(u64, u64, u64)>) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let set = &set;
            s.spawn(move || {
                let before = stats::snapshot();
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                for _ in 0..OPS_PER_ITER / threads as u64 {
                    let key = 1 + rng.next_bounded(KEY_RANGE);
                    if rng.next_u64() & 1 == 0 {
                        std::hint::black_box(set.remove(&key));
                    } else {
                        std::hint::black_box(set.insert(key));
                    }
                }
                let d = stats::snapshot().since(&before);
                let mut g = totals.lock().unwrap();
                g.0 += d.splices;
                g.1 += d.unlinked;
                g.2 += d.cleanups;
            });
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/chain_removal");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_ITER));

    for threads in [1usize, 2, 4, 8] {
        let set = NmLeaky::make();
        prepopulate(&set, KEY_RANGE, 11);
        let totals = Mutex::new((0u64, 0u64, 0u64));
        group.bench_with_input(
            BenchmarkId::new("churn", format!("{threads}t")),
            &(),
            |b, _| {
                let mut round = 0;
                b.iter(|| {
                    round += 1;
                    churn(&set, threads, round, &totals);
                });
            },
        );
        let (splices, unlinked, cleanups) = *totals.lock().unwrap();
        if splices > 0 {
            println!(
                "chain_removal/{threads}t: {:.3} nodes unlinked per splice \
                 ({splices} splices, {cleanups} cleanup calls)",
                unlinked as f64 / splices as f64
            );
        }
    }
    group.finish();
}

criterion_group!(ablation_chains, bench);
criterion_main!(ablation_chains);
