//! Ablation: what does *real* memory reclamation cost?
//!
//! The paper's evaluation leaks everything ("no memory reclamation is
//! performed in any of the implementations"). A shipping library
//! cannot, so this bench measures NM-BST under the paper's `Leaky`
//! regime against the same tree running our from-scratch epoch-based
//! reclaimer — the pin/unpin per operation plus deferred-free batches
//! on the delete path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmbst_harness::adapter::{ConcurrentSet, NmEbr, NmLeaky};
use nmbst_harness::prepopulate;
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::workload::{OpKind, Workload};
use std::time::Duration;

const OPS_PER_ITER: u64 = 4_000;
const KEY_RANGE: u64 = 10_000;

fn run_batch<S: ConcurrentSet>(set: &S, threads: usize, workload: Workload, seed: u64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let set = &set;
            s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                for _ in 0..OPS_PER_ITER / threads as u64 {
                    let key = 1 + rng.next_bounded(KEY_RANGE);
                    match workload.pick(&mut rng) {
                        OpKind::Search => {
                            std::hint::black_box(set.contains(key));
                        }
                        OpKind::Insert => {
                            std::hint::black_box(set.insert(key));
                        }
                        OpKind::Delete => {
                            std::hint::black_box(set.remove(key));
                        }
                    }
                }
            });
        }
    });
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reclamation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_ITER));
    for workload in [Workload::WRITE_DOMINATED, Workload::READ_DOMINATED] {
        for threads in [1usize, 4] {
            let leaky = NmLeaky::make();
            prepopulate(&leaky, KEY_RANGE, 9);
            group.bench_with_input(
                BenchmarkId::new("leaky", format!("{}/{}t", workload.name, threads)),
                &(),
                |b, _| {
                    let mut round = 0;
                    b.iter(|| {
                        round += 1;
                        run_batch(&leaky, threads, workload, round);
                    });
                },
            );
            let ebr = NmEbr::make();
            prepopulate(&ebr, KEY_RANGE, 9);
            group.bench_with_input(
                BenchmarkId::new("ebr", format!("{}/{}t", workload.name, threads)),
                &(),
                |b, _| {
                    let mut round = 0;
                    b.iter(|| {
                        round += 1;
                        run_batch(&ebr, threads, workload, round);
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(ablation_reclaim, bench);
criterion_main!(ablation_reclaim);
