//! The hot-path perf harness: machine-readable before/after cells for
//! the PR 2 optimizations, the PR 4 node-recycling pool, the PR 5
//! locality work (bulk-load + finger-anchored batches), the PR 6
//! sharded serving tier, the PR 7 fat-leaf blocks, the PR 8
//! latency-observability layer, the PR 9 reactor serving model, and
//! the PR 10 shard-fused batch execution, written as
//! `BENCH_PR10.json` (override the path with `NMBST_BENCH_JSON`).
//!
//! Thirteen benches, each emitting `{bench, config, metrics}` cells in
//! the `nmbst-bench-v1` schema shared with criterion-lite:
//!
//! * `single_thread_throughput` — one thread, read-heavy / mixed /
//!   write-heavy mixes, plain per-op-pin API vs a pin-amortizing
//!   handle.
//! * `contended_throughput` — several threads hammering a small key
//!   range (write-heavy), root-restart vs local-restart retry policy,
//!   with the seek/local-restart counters captured per cell.
//! * `latency` — single-thread mixed-workload per-op latency
//!   percentiles, per-op-pin vs handle.
//! * `table1_exact` — the paper's Table-1 exact counts (insert: 2
//!   allocs / 1 CAS; delete: 0 allocs / 3 atomics), measured through
//!   both the plain API and a handle. **The process exits non-zero if
//!   any exact count regresses**, which is the CI perf-smoke gate.
//! * `pool_ablation` — the PR 4 one-flag A/B: the insert-heavy
//!   (write-dominated) handle cell with the node pool on vs off, plus
//!   mixed-workload cells, each embedding its obs snapshot so
//!   `pool_hits` / `pool_recycled` are committed next to the
//!   throughput they bought. **The process exits non-zero if pool-on
//!   trails pool-off by more than `NMBST_POOL_TOLERANCE`** (default
//!   0.10; CI uses a looser bound for jittery shared runners), or if
//!   the mixed pool-on cell somehow recorded zero pool hits.
//! * `leaf_ablation` — the PR 7 one-flag A/B: read-dominated and mixed
//!   handle cells at `leaf_cap = 1` (every leaf a single key — the
//!   PR 6 shape, on the new arena) vs the default fat-leaf capacity.
//!   Each cell embeds its obs snapshot, so the committed file carries
//!   the attribution: the thin tree's `max_depth`/`depth_hist` must
//!   reproduce the old deep shape while the fat tree's is measurably
//!   flatter. **The process exits non-zero if the fat read-dominated
//!   cell trails the thin one by more than `NMBST_LEAF_TOLERANCE`**
//!   (relative, default 0.05 — the fat leaves exist to *win* this
//!   cell), **or if the thin tree's max depth is not strictly deeper**
//!   (the ablation stopped reproducing the pre-PR 7 shape, so the cell
//!   no longer attributes the win to leaf compaction).
//! * `bulk_load` — the PR 5 O(n) balanced build:
//!   `NmTreeSet::from_sorted_iter` over `NMBST_BULK_KEYS` keys (default
//!   100 000) vs handle loop-inserting the same keys in *shuffled*
//!   order (the honest baseline — sorted loop-insert degenerates to an
//!   O(n²) spine and would flatter the bulk path). **The process exits
//!   non-zero if the bulk build is not at least
//!   `NMBST_BULK_MIN_SPEEDUP`× faster** (default 2.0).
//! * `sorted_batch` — the PR 5 finger-anchored batch descent: identical
//!   Zipf-clustered ascending key runs (length `NMBST_BATCH_LEN`,
//!   default 32) driven through the handle batch entry points vs the
//!   same handle one key at a time. **The process exits non-zero if
//!   the batched cell trails singles by more than
//!   `NMBST_BATCH_TOLERANCE`** (relative, default 0.05), **or if it
//!   recorded zero `finger_hits`** — a dead finger means the anchor
//!   gate is rejecting everything and the batch API has silently
//!   degraded to root descents.
//! * `serving_replay` — the PR 6 serving tier end to end: an
//!   `nmbst-server` over a sharded store on loopback, driven by the
//!   open-loop session replay in `nmbst-harness` (Zipf hot keys,
//!   `NMBST_SESSIONS` simulated sessions, default 1 000 000). A
//!   calibration pass at infinite arrival rate measures peak capacity,
//!   then the measured runs replay at `NMBST_SERVE_UTIL` (default 0.7)
//!   of that rate so p50/p99/p999 session latency reflects queueing
//!   under a sustainable load, not time-to-drain. Median of three by
//!   p999. **The process exits non-zero if any worker recorded zero
//!   ops through its pinned handles** (worker/shard pinning broken),
//!   **or if peak capacity trails the committed baseline cell by more
//!   than `NMBST_SERVE_TOLERANCE`** (default 0.25 — loopback serving
//!   on shared runners jitters far more than in-process cells).
//!   The PR 8 agreement gate rides on the paced median run: the
//!   client-observed per-bundle round-trip histogram and the server's
//!   per-frame BATCH wire histogram time the *same frame population
//!   with the same bucketing*, so their counts must match exactly and
//!   the server-reported p99 must sit inside the client-observed p99
//!   plus two-sided bucket error (`NMBST_AGREE_TOLERANCE`, default
//!   0.15 ≈ 2 × 6.7%); the client p99 in turn must not exceed the
//!   server p99 by more than `NMBST_AGREE_FACTOR` (default 100 — a
//!   unit-mismatch tripwire, since loopback syscall overhead
//!   legitimately dominates sub-10µs frames).
//! * `obs_overhead` — the PR 8 one-flag A/B: the mixed and
//!   read-dominated handle cells with latency recording at its default
//!   sampling (`sample_shift = 6`, 1-in-64 point ops) vs
//!   `LatencyConfig::disabled()`, run as 5 adjacent off/on pairs and
//!   gated on the **median of the per-pair on/off ratios**. Adjacent
//!   runs share machine state, so each pair's ratio cancels slow
//!   drift, and the median rejects the occasional pair hit by a
//!   one-sided interference spike (observed spikes of 7–20% dwarf the
//!   ~0–1% true cost). **The process exits non-zero if the median
//!   ratio trails 1.0 by more than `NMBST_OBS_TOLERANCE`**
//!   (relative, default 0.03 — the issue's ≤3% observability budget,
//!   now enforced rather than asserted).
//! * `serving_churn` — the PR 9 connection-churn cell: the same
//!   open-loop replay, but every client redials a fresh connection
//!   every `sessions_per_conn` sessions through the pipelined client,
//!   with concurrent connections ≥ 8× the worker count (16 conns / 2
//!   workers) — the shape the pre-reactor one-connection-per-worker
//!   server provably could not serve without backlog collapse.
//!   Calibrated then paced at `NMBST_SERVE_UTIL`, median of three by
//!   p999. **The process exits non-zero if any worker routed zero
//!   ops**, **if the run did not actually churn** (connections opened
//!   must exceed the concurrent fleet), **if any connection is stuck
//!   open after the replay drains**, or **if the paced run overran its
//!   own schedule by more than `NMBST_CHURN_SLACK`** (relative,
//!   default 1.0 — a collapsed server drains at capacity, not at the
//!   offered rate, and blows straight through the slack).
//! * `pipelining` — the PR 9 client A/B: one client, the same seeded
//!   uniform GET stream, blocking one-at-a-time vs pipelined with a
//!   bounded in-flight window, run as interleaved pairs and compared
//!   on median Mops/s. **The process exits non-zero if the pipelined
//!   arm is not at least `NMBST_PIPELINE_MIN_SPEEDUP`× the blocking
//!   arm** (default 2.0 — the win is one RTT per window instead of
//!   one per request; if it can't clear 2× over loopback the window
//!   is not actually in flight).
//! * `serving_batch_fusion` — the PR 10 one-flag A/B: identical
//!   drain-rate replays against servers with `fuse_batches` on (BATCH
//!   frames partitioned by shard, sorted, and executed through
//!   `execute_batch`, so wire batches inherit the finger-anchored
//!   descent) vs off (the same ops unrolled one at a time through the
//!   per-shard handles), run as interleaved pairs and compared on
//!   median Mops/s. The cell serves the BATCH shape fusion targets:
//!   high-occupancy frames (the replay's `coalesce`/`coalesce_ops`
//!   knobs fill and cap them at `NMBST_FUSION_OPS`, default 768
//!   ops/frame) over a dense 2^14 key range, where sorted per-shard
//!   runs actually land on adjacent leaves. **The process exits non-zero
//!   if the fused arm trails the unrolled arm by more than
//!   `NMBST_FUSION_TOLERANCE`** (relative, default 0.05), **or if the
//!   fused servers recorded zero `finger_hits`** — the end-to-end
//!   proof that sorted per-shard runs arriving over TCP actually
//!   anchor on the finger, not just in-process batches.
//!
//! On any gate failure the harness writes the slow-op records captured
//! during the serving replay (server slow-frame ring + tree rings,
//! slowest first, with flight-recorder event names where present) to
//! `NMBST_SLOWLOG_PATH` (default `SLOWLOG_DUMP.txt`) so CI can upload
//! the postmortem as an artifact.
//!
//! Knobs: `NMBST_SECS` (measured seconds per throughput cell, default
//! 1.0; CI uses 0.2), `NMBST_KEYS` (first entry = single-thread key
//! range), `NMBST_SEED`.
//!
//! Regression gate: when `NMBST_BASELINE_JSON` names a committed bench
//! file, the mixed-workload single-thread cells are compared against it
//! and the process exits non-zero if throughput dropped more than
//! `NMBST_PERF_TOLERANCE` (default 0.03) — the observability layer's
//! "no default-build slowdown" budget, enforced.

use criterion::json::{self, Json};
use nmbst::obs::{MetricsSnapshot, SlowOp};
use nmbst::{LatencyConfig, NmTreeSet, PoolConfig, RestartPolicy, SetHandle, TagMode, TreeConfig};
use nmbst_bench::SweepConfig;
use nmbst_harness::replay::{
    run_replay, run_replay_churn, ReplayConfig, ReplayReport, SessionOp, SessionTarget,
};
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::workload::OpKind;
use nmbst_harness::{Histogram, SortedBatchGen, Workload};
use nmbst_reclaim::{Ebr, Leaky, Reclaim};
use nmbst_server::wire::{BatchOp, Request, Response};
use nmbst_server::{Client, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Which front end drives the operations.
#[derive(Clone, Copy, PartialEq)]
enum Api {
    /// The plain API: every call pins and unpins the reclaimer.
    PerOpPin,
    /// A [`SetHandle`] holding its guard across operations.
    Handle,
}

impl Api {
    fn label(self) -> &'static str {
        match self {
            Api::PerOpPin => "per_op_pin",
            Api::Handle => "handle",
        }
    }
}

fn prepopulate<R: Reclaim>(set: &NmTreeSet<u64, R>, key_range: u64, seed: u64) {
    let target = key_range / 2;
    let mut rng = XorShift64Star::from_stream(seed, u64::MAX);
    let mut inserted = 0;
    while inserted < target {
        if set.insert(1 + rng.next_bounded(key_range)) {
            inserted += 1;
        }
    }
}

#[inline]
fn plain_op<R: Reclaim>(set: &NmTreeSet<u64, R>, op: OpKind, key: u64) -> bool {
    match op {
        OpKind::Search => set.contains(&key),
        OpKind::Insert => set.insert(key),
        OpKind::Delete => set.remove(&key),
    }
}

#[inline]
fn handle_op<R: Reclaim>(h: &mut SetHandle<'_, u64, R>, op: OpKind, key: u64) -> bool {
    match op {
        OpKind::Search => h.contains(&key),
        OpKind::Insert => h.insert(key),
        OpKind::Delete => h.remove(&key),
    }
}

/// One single-thread throughput measurement; returns (Mops/s, ops,
/// final metrics snapshot).
fn single_thread_mops(
    api: Api,
    config: TreeConfig,
    workload: Workload,
    key_range: u64,
    secs: f64,
    seed: u64,
) -> (f64, u64, MetricsSnapshot) {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::with_config(config);
    prepopulate(&set, key_range, seed);
    let warmup = Duration::from_secs_f64((secs * 0.2).min(0.2));
    let duration = Duration::from_secs_f64(secs);
    let mut rng = XorShift64Star::from_stream(seed, 1);
    let mut ops = 0u64;
    let mut elapsed = Duration::ZERO;

    let mut phase = |budget: Duration, measured: bool, rng: &mut XorShift64Star| {
        let t0 = Instant::now();
        match api {
            Api::PerOpPin => {
                while t0.elapsed() < budget {
                    for _ in 0..64 {
                        let key = 1 + rng.next_bounded(key_range);
                        std::hint::black_box(plain_op(&set, workload.pick(rng), key));
                        if measured {
                            ops += 1;
                        }
                    }
                }
            }
            Api::Handle => {
                let mut h = set.handle();
                while t0.elapsed() < budget {
                    for _ in 0..64 {
                        let key = 1 + rng.next_bounded(key_range);
                        std::hint::black_box(handle_op(&mut h, workload.pick(rng), key));
                        if measured {
                            ops += 1;
                        }
                    }
                }
            }
        }
        t0.elapsed()
    };
    phase(warmup, false, &mut rng);
    elapsed += phase(duration, true, &mut rng);
    (ops as f64 / elapsed.as_secs_f64() / 1e6, ops, set.metrics())
}

/// A [`MetricsSnapshot`] as a JSON object, via its canonical `to_json`
/// rendering so the bench file and a live scrape always agree on keys.
fn snapshot_json(m: &MetricsSnapshot) -> Json {
    Json::parse(&m.to_json()).expect("MetricsSnapshot::to_json emits valid JSON")
}

/// Multi-thread contended throughput under a restart policy; returns
/// (Mops/s, ops, full seeks, local restarts) summed over threads.
fn contended_mops(
    restart: RestartPolicy,
    threads: usize,
    key_range: u64,
    secs: f64,
    seed: u64,
) -> (f64, u64, u64, u64) {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::with_restart_policy(restart);
    prepopulate(&set, key_range, seed);
    let workload = Workload::WRITE_DOMINATED;
    let stop = AtomicBool::new(false);
    let start = Barrier::new(threads + 1);
    let totals = Mutex::new((0u64, 0u64, 0u64)); // ops, seeks, local restarts
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        for t in 0..threads {
            let (set, stop, start, totals) = (&set, &stop, &start, &totals);
            s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                start.wait();
                let (ops, delta) = nmbst::stats::delta(|| {
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..32 {
                            let key = 1 + rng.next_bounded(key_range);
                            std::hint::black_box(plain_op(set, workload.pick(&mut rng), key));
                            ops += 1;
                        }
                    }
                    ops
                });
                let mut acc = totals.lock().unwrap();
                acc.0 += ops;
                acc.1 += delta.seeks;
                acc.2 += delta.local_restarts;
            });
        }
        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        elapsed = t0.elapsed();
    });

    let (ops, seeks, restarts) = *totals.lock().unwrap();
    (
        ops as f64 / elapsed.as_secs_f64() / 1e6,
        ops,
        seeks,
        restarts,
    )
}

/// Single-thread per-op latency histogram over `ops` mixed operations.
fn latency_hist(api: Api, key_range: u64, ops: u64, seed: u64) -> Histogram {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    prepopulate(&set, key_range, seed);
    let workload = Workload::MIXED;
    let mut rng = XorShift64Star::from_stream(seed, 2);
    let mut hist = Histogram::new();
    match api {
        Api::PerOpPin => {
            for _ in 0..ops {
                let key = 1 + rng.next_bounded(key_range);
                let op = workload.pick(&mut rng);
                let t0 = Instant::now();
                std::hint::black_box(plain_op(&set, op, key));
                hist.record(t0.elapsed().as_nanos() as u64);
            }
        }
        Api::Handle => {
            let mut h = set.handle();
            for _ in 0..ops {
                let key = 1 + rng.next_bounded(key_range);
                let op = workload.pick(&mut rng);
                let t0 = Instant::now();
                std::hint::black_box(handle_op(&mut h, op, key));
                hist.record(t0.elapsed().as_nanos() as u64);
            }
        }
    }
    hist
}

/// Table-1 exact counts measured through the chosen front end; returns
/// (insert allocs, delete allocs, insert atomics, delete atomics) per op.
fn table1_counts(api: Api) -> (f64, f64, f64, f64) {
    const BASE: u64 = 1_000;
    const OPS: u64 = 500;
    // leaf_cap = 1: the paper's Table-1 costs are stated for one-key
    // leaves; a fat block COWs (1 alloc, 1 CAS) instead of running the
    // classic 2-alloc insert / flag-tag-splice delete being counted.
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::with_config(TreeConfig::default().with_leaf_cap(1));
    let mut h = set.handle();
    let set = &set;
    let mut run = |key: u64, op: OpKind| match api {
        Api::PerOpPin => plain_op(set, op, key),
        Api::Handle => handle_op(&mut h, op, key),
    };
    for k in (0..BASE).map(|i| i * 2 + 1) {
        run(k, OpKind::Insert);
    }
    let ((), ins) = nmbst::stats::delta(|| {
        for k in (1..=OPS).map(|i| i * 2) {
            assert!(run(k, OpKind::Insert), "uncontended insert failed");
        }
    });
    let ((), del) = nmbst::stats::delta(|| {
        for k in (1..=OPS).map(|i| i * 2) {
            assert!(run(k, OpKind::Delete), "uncontended delete failed");
        }
    });
    (
        ins.allocs as f64 / OPS as f64,
        del.allocs as f64 / OPS as f64,
        ins.atomics() as f64 / OPS as f64,
        del.atomics() as f64 / OPS as f64,
    )
}

/// Times one balanced bulk build of `1..=n` against handle
/// loop-inserting the same keys in shuffled order; returns
/// `(bulk_secs, loop_secs)`.
///
/// Shuffled, not sorted, for the loop baseline: sorted loop-insert
/// builds a right spine and degenerates to O(n²), which would make the
/// bulk path look better than it is. Shuffled insert builds a random
/// (expected O(log n) depth) tree — the strongest incremental build
/// the existing API offers.
fn bulk_load_pair(n: u64, seed: u64) -> (f64, f64) {
    let t0 = Instant::now();
    let bulk: NmTreeSet<u64, Ebr> = NmTreeSet::from_sorted_iter(1..=n);
    let bulk_secs = t0.elapsed().as_secs_f64();
    assert_eq!(bulk.count(), n as usize, "bulk build lost keys");
    drop(bulk);

    let mut keys: Vec<u64> = (1..=n).collect();
    let mut rng = XorShift64Star::from_stream(seed, 4);
    for i in (1..keys.len()).rev() {
        let j = rng.next_bounded((i + 1) as u64) as usize;
        keys.swap(i, j);
    }
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    let t1 = Instant::now();
    let mut h = set.handle();
    for &k in &keys {
        std::hint::black_box(h.insert(k));
    }
    drop(h);
    let loop_secs = t1.elapsed().as_secs_f64();
    assert_eq!(set.count(), n as usize, "loop build lost keys");
    (bulk_secs, loop_secs)
}

/// One single-thread sorted-batch throughput measurement: identical
/// Zipf-clustered ascending runs driven through the handle batch entry
/// points (`batched = true`) or the same handle one key at a time.
/// Both sides amortize pinning through the handle, so the delta
/// isolates the finger anchor (plus per-batch dispatch overhead).
/// Returns (Mops/s, ops, final metrics snapshot).
fn sorted_batch_mops(
    batched: bool,
    key_range: u64,
    batch_len: usize,
    secs: f64,
    seed: u64,
) -> (f64, u64, MetricsSnapshot) {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    prepopulate(&set, key_range, seed);
    let gen = SortedBatchGen::new(key_range, batch_len, 0.8);
    let workload = Workload::MIXED;
    let warmup = Duration::from_secs_f64((secs * 0.2).min(0.2));
    let duration = Duration::from_secs_f64(secs);
    let mut rng = XorShift64Star::from_stream(seed, 5);
    let mut buf = Vec::with_capacity(batch_len);
    let mut h = set.handle();
    let mut ops = 0u64;
    let mut elapsed = Duration::ZERO;

    let mut phase = |budget: Duration, measured: bool, rng: &mut XorShift64Star| {
        let t0 = Instant::now();
        while t0.elapsed() < budget {
            for _ in 0..4 {
                gen.fill(rng, &mut buf);
                let op = workload.pick(rng);
                if batched {
                    match op {
                        OpKind::Search => {
                            std::hint::black_box(h.contains_batch(buf.iter().copied()));
                        }
                        OpKind::Insert => {
                            std::hint::black_box(h.insert_batch(buf.iter().copied()));
                        }
                        OpKind::Delete => {
                            std::hint::black_box(h.remove_batch(buf.iter().copied()));
                        }
                    }
                } else {
                    for &key in &buf {
                        std::hint::black_box(handle_op(&mut h, op, key));
                    }
                }
                if measured {
                    ops += buf.len() as u64;
                }
            }
        }
        t0.elapsed()
    };
    phase(warmup, false, &mut rng);
    elapsed += phase(duration, true, &mut rng);
    drop(h);
    (ops as f64 / elapsed.as_secs_f64() / 1e6, ops, set.metrics())
}

fn main() {
    let cfg = SweepConfig::from_env();
    let secs = cfg.duration.as_secs_f64();
    let seed = cfg.seed;
    let key_range = cfg.key_ranges.first().copied().unwrap_or(1_000).max(64);
    let latency_ops = ((secs * 200_000.0) as u64).clamp(10_000, 2_000_000);
    // Conflict-dense on purpose: local restarts only pay off when CAS
    // failures actually happen, so this cell packs many writers into a
    // small key range.
    let contended_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let contended_range = 128;
    let out_path = std::env::var(criterion::BENCH_JSON_ENV)
        .ok()
        .filter(|p| !p.is_empty())
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    let mut cells: Vec<Json> = Vec::new();

    // Single-core containers schedule-jitter individual runs by 10%+;
    // the median of three repeats per cell is stable enough to commit.
    const REPEATS: usize = 3;
    println!(
        "== single-thread throughput (key range {key_range}, {secs:.2}s/cell, median of {REPEATS}) =="
    );
    let mut gate_mops: Vec<(&'static str, &'static str, f64)> = Vec::new();
    for workload in Workload::FIGURE4 {
        for api in [Api::PerOpPin, Api::Handle] {
            let mut runs: Vec<(f64, u64, MetricsSnapshot)> = (0..REPEATS)
                .map(|_| {
                    single_thread_mops(api, TreeConfig::default(), workload, key_range, secs, seed)
                })
                .collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mops, ops, snap) = runs.swap_remove(REPEATS / 2);
            println!(
                "  {:<24} {:<10} {mops:.3} Mops/s",
                workload.name,
                api.label()
            );
            if workload.name == Workload::MIXED.name
                || workload.name == Workload::READ_DOMINATED.name
            {
                gate_mops.push((workload.name, api.label(), mops));
            }
            cells.push(json::cell(
                "single_thread_throughput",
                Json::obj([
                    ("workload", Json::from(workload.name)),
                    ("api", Json::from(api.label())),
                    ("threads", Json::Int(1)),
                    ("key_range", Json::from(key_range)),
                    ("secs", Json::Num(secs)),
                    ("seed", Json::from(seed)),
                    ("repeats", Json::from(REPEATS)),
                ]),
                Json::obj([
                    ("mops", Json::Num(mops)),
                    ("ops", Json::from(ops)),
                    ("obs", snapshot_json(&snap)),
                ]),
            ));
        }
    }

    println!(
        "== contended throughput ({contended_threads} threads, key range {contended_range}, write-heavy) =="
    );
    for restart in [RestartPolicy::Root, RestartPolicy::Local] {
        let label = match restart {
            RestartPolicy::Root => "root",
            RestartPolicy::Local => "local",
        };
        let (mops, ops, seeks, restarts) =
            contended_mops(restart, contended_threads, contended_range, secs, seed);
        println!(
            "  restart={label:<6} {mops:.3} Mops/s  (seeks {seeks}, local restarts {restarts})"
        );
        cells.push(json::cell(
            "contended_throughput",
            Json::obj([
                ("workload", Json::from(Workload::WRITE_DOMINATED.name)),
                ("restart", Json::from(label)),
                ("threads", Json::from(contended_threads)),
                ("key_range", Json::from(contended_range)),
                ("secs", Json::Num(secs)),
                ("seed", Json::from(seed)),
            ]),
            Json::obj([
                ("mops", Json::Num(mops)),
                ("ops", Json::from(ops)),
                ("seeks", Json::from(seeks)),
                ("local_restarts", Json::from(restarts)),
            ]),
        ));
    }

    println!("== latency percentiles (1 thread, mixed, {latency_ops} ops) ==");
    for api in [Api::PerOpPin, Api::Handle] {
        let hist = latency_hist(api, key_range, latency_ops, seed);
        let (p50, p99, p999) = (
            hist.percentile(50.0),
            hist.percentile(99.0),
            hist.percentile(99.9),
        );
        println!(
            "  {:<10} p50 {p50} ns, p99 {p99} ns, p99.9 {p999} ns",
            api.label()
        );
        cells.push(json::cell(
            "latency",
            Json::obj([
                ("workload", Json::from(Workload::MIXED.name)),
                ("api", Json::from(api.label())),
                ("threads", Json::Int(1)),
                ("key_range", Json::from(key_range)),
                ("ops", Json::from(latency_ops)),
                ("seed", Json::from(seed)),
            ]),
            Json::obj([
                ("p50_ns", Json::from(p50)),
                ("p99_ns", Json::from(p99)),
                ("p999_ns", Json::from(p999)),
                ("mean_ns", Json::Num(hist.mean())),
                ("max_ns", Json::from(hist.max())),
            ]),
        ));
    }

    println!("== Table-1 exact counts ==");
    let mut table1_ok = true;
    for api in [Api::PerOpPin, Api::Handle] {
        let (ia, da, iat, dat) = table1_counts(api);
        let ok = ia == 2.0 && da == 0.0 && iat == 1.0 && dat == 3.0;
        table1_ok &= ok;
        println!(
            "  {:<10} insert {ia:.2} allocs / {iat:.2} atomics, delete {da:.2} allocs / {dat:.2} atomics  [{}]",
            api.label(),
            if ok { "ok" } else { "REGRESSED" },
        );
        cells.push(json::cell(
            "table1_exact",
            Json::obj([
                ("api", Json::from(api.label())),
                ("tag_mode", Json::from(format!("{:?}", TagMode::FetchOr))),
            ]),
            Json::obj([
                ("insert_allocs", Json::Num(ia)),
                ("delete_allocs", Json::Num(da)),
                ("insert_atomics", Json::Num(iat)),
                ("delete_atomics", Json::Num(dat)),
                ("ok", Json::Bool(ok)),
            ]),
        ));
    }

    // The PR 4 ablation: identical insert-heavy handle cells, the only
    // difference being `TreeConfig::pool`. Pool-on reuses grace-period-
    // expired nodes instead of round-tripping the global allocator, so
    // it must at least hold the line; the mixed cells record the steady
    // hit rate a balanced workload sustains.
    println!("== pool ablation (1 thread, handle, key range {key_range}, median of {REPEATS}) ==");
    let mut pool_gate_ok = true;
    let mut insert_heavy = [0.0f64; 2]; // [pool-off, pool-on] Mops/s
    for workload in [Workload::WRITE_DOMINATED, Workload::MIXED] {
        for pool_on in [false, true] {
            let pool = if pool_on {
                PoolConfig::default()
            } else {
                PoolConfig::disabled()
            };
            let config = TreeConfig::default().with_pool(pool);
            let mut runs: Vec<(f64, u64, MetricsSnapshot)> = (0..REPEATS)
                .map(|_| single_thread_mops(Api::Handle, config, workload, key_range, secs, seed))
                .collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mops, ops, snap) = runs.swap_remove(REPEATS / 2);
            println!(
                "  {:<24} pool={:<4} {mops:.3} Mops/s  (pool_hits {}, recycled {})",
                workload.name,
                if pool_on { "on" } else { "off" },
                snap.pool.hits,
                snap.pool.recycled,
            );
            if workload.name == Workload::WRITE_DOMINATED.name {
                insert_heavy[pool_on as usize] = mops;
            }
            if pool_on && workload.name == Workload::MIXED.name && snap.pool.hits == 0 {
                eprintln!("error: mixed pool-on cell recorded zero pool hits — recycling is dead");
                pool_gate_ok = false;
            }
            cells.push(json::cell(
                "pool_ablation",
                Json::obj([
                    ("workload", Json::from(workload.name)),
                    ("api", Json::from(Api::Handle.label())),
                    ("pool", Json::from(if pool_on { "on" } else { "off" })),
                    ("pool_capacity", Json::from(pool.capacity)),
                    ("threads", Json::Int(1)),
                    ("key_range", Json::from(key_range)),
                    ("secs", Json::Num(secs)),
                    ("seed", Json::from(seed)),
                    ("repeats", Json::from(REPEATS)),
                ]),
                Json::obj([
                    ("mops", Json::Num(mops)),
                    ("ops", Json::from(ops)),
                    ("obs", snapshot_json(&snap)),
                ]),
            ));
        }
    }
    pool_gate_ok &= check_pool_gate(insert_heavy[0], insert_heavy[1]);

    // The PR 7 ablation: identical handle cells, the only difference
    // being `TreeConfig::leaf_cap`. Capacity 1 reproduces the pre-PR 7
    // one-key-per-leaf shape on the same arena, so the delta isolates
    // the fat-leaf blocks (shorter descents, one cache line per final
    // hop) from everything else this PR changed.
    println!("== leaf ablation (1 thread, handle, key range {key_range}, median of {REPEATS}) ==");
    let mut leaf_read_dom = [0.0f64; 2]; // [cap 1, cap 8] Mops/s
    let mut leaf_depths = [0u64; 2]; // [cap 1, cap 8] max observed depth
    for workload in [Workload::READ_DOMINATED, Workload::MIXED] {
        for fat in [false, true] {
            let leaf_cap = if fat { nmbst::LEAF_CAP } else { 1 };
            let config = TreeConfig::default().with_leaf_cap(leaf_cap);
            let mut runs: Vec<(f64, u64, MetricsSnapshot)> = (0..REPEATS)
                .map(|_| single_thread_mops(Api::Handle, config, workload, key_range, secs, seed))
                .collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mops, ops, snap) = runs.swap_remove(REPEATS / 2);
            println!(
                "  {:<24} leaf_cap={leaf_cap} {mops:.3} Mops/s  (max_depth {})",
                workload.name, snap.max_depth,
            );
            if workload.name == Workload::READ_DOMINATED.name {
                leaf_read_dom[fat as usize] = mops;
                leaf_depths[fat as usize] = snap.max_depth;
            }
            cells.push(json::cell(
                "leaf_ablation",
                Json::obj([
                    ("workload", Json::from(workload.name)),
                    ("api", Json::from(Api::Handle.label())),
                    ("leaf_cap", Json::from(leaf_cap as u64)),
                    ("threads", Json::Int(1)),
                    ("key_range", Json::from(key_range)),
                    ("secs", Json::Num(secs)),
                    ("seed", Json::from(seed)),
                    ("repeats", Json::from(REPEATS)),
                ]),
                Json::obj([
                    ("mops", Json::Num(mops)),
                    ("ops", Json::from(ops)),
                    ("obs", snapshot_json(&snap)),
                ]),
            ));
        }
    }
    let leaf_gate_ok = check_leaf_gate(leaf_read_dom, leaf_depths);

    // The PR 5 bulk-load cell. Fixed key count (not time-budgeted):
    // build cost is what's being measured, and a fixed n keeps the cell
    // comparable across runs regardless of NMBST_SECS.
    let bulk_keys = std::env::var("NMBST_BULK_KEYS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100_000)
        // Below ~10k keys the fixed per-tree costs (pool setup, first
        // allocations) drown the asymptotic difference and the 2× gate
        // stops measuring anything; clamp overrides to a meaningful n.
        .max(10_000);
    println!(
        "== bulk load ({bulk_keys} keys, bulk vs shuffled handle loop, median of {REPEATS}) =="
    );
    let mut pairs: Vec<(f64, f64)> = (0..REPEATS)
        .map(|_| bulk_load_pair(bulk_keys, seed))
        .collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let bulk_secs = pairs[REPEATS / 2].0;
    pairs.sort_by(|a, b| a.1.total_cmp(&b.1));
    let loop_secs = pairs[REPEATS / 2].1;
    let speedup = loop_secs / bulk_secs;
    let bulk_gate_ok = check_bulk_gate(bulk_secs, loop_secs, bulk_keys);
    cells.push(json::cell(
        "bulk_load",
        Json::obj([
            ("keys", Json::from(bulk_keys)),
            ("loop_order", Json::from("shuffled")),
            ("loop_api", Json::from(Api::Handle.label())),
            ("seed", Json::from(seed)),
            ("repeats", Json::from(REPEATS)),
        ]),
        Json::obj([
            ("bulk_secs", Json::Num(bulk_secs)),
            ("loop_secs", Json::Num(loop_secs)),
            ("speedup", Json::Num(speedup)),
            (
                "bulk_mkeys_per_sec",
                Json::Num(bulk_keys as f64 / bulk_secs / 1e6),
            ),
        ]),
    ));

    // The PR 5 sorted-batch cell: same clustered ascending runs, batch
    // entry points vs one-at-a-time on the same handle.
    let batch_len = std::env::var("NMBST_BATCH_LEN")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .max(2);
    println!(
        "== sorted batch (key range {key_range}, runs of {batch_len}, {secs:.2}s/cell, median of {REPEATS}) =="
    );
    let mut batch_mops = [0.0f64; 2]; // [singles, batched]
    let mut batch_snap: Option<MetricsSnapshot> = None;
    for batched in [false, true] {
        let mut runs: Vec<(f64, u64, MetricsSnapshot)> = (0..REPEATS)
            .map(|_| sorted_batch_mops(batched, key_range, batch_len, secs, seed))
            .collect();
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (mops, ops, snap) = runs.swap_remove(REPEATS / 2);
        let label = if batched { "batched" } else { "singles" };
        println!(
            "  {label:<10} {mops:.3} Mops/s  (finger hits {}, misses {})",
            snap.finger_hits, snap.finger_misses
        );
        batch_mops[batched as usize] = mops;
        cells.push(json::cell(
            "sorted_batch",
            Json::obj([
                ("workload", Json::from(Workload::MIXED.name)),
                ("api", Json::from(label)),
                ("batch_len", Json::from(batch_len)),
                ("threads", Json::Int(1)),
                ("key_range", Json::from(key_range)),
                ("secs", Json::Num(secs)),
                ("seed", Json::from(seed)),
                ("repeats", Json::from(REPEATS)),
            ]),
            Json::obj([
                ("mops", Json::Num(mops)),
                ("ops", Json::from(ops)),
                ("obs", snapshot_json(&snap)),
            ]),
        ));
        if batched {
            batch_snap = Some(snap);
        }
    }
    let batch_gate_ok = check_batch_gate(
        batch_mops[0],
        batch_mops[1],
        batch_snap.as_ref().map_or(0, |s| s.finger_hits),
    );

    // The PR 8 ablation: identical handle cells, the only difference
    // being `TreeConfig::lat` (default sampled recording vs disabled).
    // Runs are interleaved off/on per repeat, and the gate compares
    // the MEDIAN of the per-pair on/off ratios, not medians of arms:
    // interference on this box slows single runs by up to ~20% while
    // the true recording cost at 1-in-64 sampling is ~1%, so any
    // estimator that pairs an afflicted run from one arm against a
    // clean run from the other manufactures a phantom cost (or a
    // phantom win). Adjacent runs share the machine's state, so each
    // pair's ratio isolates the one-flag delta, and the median
    // rejects the pairs where a spike landed inside one half.
    const OBS_REPEATS: usize = 5;
    let period = 1u64 << LatencyConfig::default().sample_shift;
    println!(
        "== obs overhead (1 thread, handle, key range {key_range}, sampled 1-in-{period}, median on/off ratio of {OBS_REPEATS} interleaved pairs) =="
    );
    let mut obs_ratio = f64::NAN; // mixed-cell median pairwise on/off ratio
    for workload in [Workload::MIXED, Workload::READ_DOMINATED] {
        let mut runs: [Vec<(f64, u64, MetricsSnapshot)>; 2] = [Vec::new(), Vec::new()];
        let mut ratios = Vec::with_capacity(OBS_REPEATS);
        for _ in 0..OBS_REPEATS {
            for (on, arm) in runs.iter_mut().enumerate() {
                let lat = if on == 1 {
                    LatencyConfig::default()
                } else {
                    LatencyConfig::disabled()
                };
                let config = TreeConfig::default().with_latency(lat);
                arm.push(single_thread_mops(
                    Api::Handle,
                    config,
                    workload,
                    key_range,
                    secs,
                    seed,
                ));
            }
            ratios.push(runs[1].last().unwrap().0 / runs[0].last().unwrap().0);
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median_ratio = ratios[OBS_REPEATS / 2];
        println!(
            "  {:<24} pair ratios {:?}  median {median_ratio:.4}",
            workload.name,
            ratios
                .iter()
                .map(|r| (r * 1e4).round() / 1e4)
                .collect::<Vec<_>>(),
        );
        if workload.name == Workload::MIXED.name {
            obs_ratio = median_ratio;
        }
        for (on, arm) in runs.iter_mut().enumerate() {
            arm.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mops, ops, snap) = arm.swap_remove(OBS_REPEATS / 2);
            let label = if on == 1 { "on" } else { "off" };
            println!(
                "  {:<24} recording={label:<4} {mops:.3} Mops/s  (lat samples {}, slow ops {})",
                workload.name,
                snap.latency.len(),
                snap.slow_ops.len(),
            );
            if on == 1 && snap.latency.is_empty() {
                // Sampled recording over seconds of ops cannot miss
                // unless recording is broken outright.
                eprintln!("error: recording-on cell captured zero latency samples");
                obs_ratio = 0.0;
            }
            cells.push(json::cell(
                "obs_overhead",
                Json::obj([
                    ("workload", Json::from(workload.name)),
                    ("api", Json::from(Api::Handle.label())),
                    ("recording", Json::from(label)),
                    (
                        "sample_shift",
                        Json::from(u64::from(LatencyConfig::default().sample_shift)),
                    ),
                    ("threads", Json::Int(1)),
                    ("key_range", Json::from(key_range)),
                    ("secs", Json::Num(secs)),
                    ("seed", Json::from(seed)),
                    ("repeats", Json::from(OBS_REPEATS)),
                ]),
                Json::obj([
                    ("mops", Json::Num(mops)),
                    ("ops", Json::from(ops)),
                    ("lat_samples", Json::from(snap.latency.len())),
                    ("pair_ratio_median", Json::Num(median_ratio)),
                    ("obs", snapshot_json(&snap)),
                ]),
            ));
        }
    }
    let obs_gate_ok = check_obs_gate(obs_ratio);

    // The PR 6 serving cell: open-loop session replay against the TCP
    // server over loopback. Calibrate peak capacity first (every
    // session due at t=0), then measure tail latency at a sustainable
    // fraction of it so p999 means queueing, not time-to-drain.
    let sessions = std::env::var("NMBST_SESSIONS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1_000_000)
        .max(1_000);
    let util = std::env::var("NMBST_SERVE_UTIL")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.7)
        .clamp(0.05, 1.0);
    let serve_workers = 2;
    let replay_cfg = ReplayConfig {
        sessions,
        clients: serve_workers,
        seed,
        ..ReplayConfig::default()
    };
    println!(
        "== serving replay ({sessions} sessions, {serve_workers} workers/clients, Zipf θ={}, util {util:.2}, median of {REPEATS}) ==",
        replay_cfg.zipf_theta
    );
    // Calibrate over the *full* session count: the store grows over the
    // run (mixed mix nets ~+10% keys), so a short calibration measures
    // a small, fast tree and overestimates the sustainable rate — the
    // paced runs would then queue without bound and report drain time,
    // not latency.
    let calib_cfg = ReplayConfig {
        arrival_rate: f64::INFINITY,
        ..replay_cfg.clone()
    };
    let calib = serving_replay_run(&calib_cfg, serve_workers, true).report;
    let max_rate = calib.sessions_per_sec();
    let max_mops = calib.mops();
    println!("  peak capacity      {max_rate:.0} sessions/s  ({max_mops:.3} Mops/s)");
    let paced_cfg = ReplayConfig {
        arrival_rate: max_rate * util,
        ..replay_cfg.clone()
    };
    let mut serve_runs: Vec<ServeRun> = (0..REPEATS)
        .map(|_| serving_replay_run(&paced_cfg, serve_workers, true))
        .collect();
    serve_runs.sort_by_key(|r| r.report.percentile_ns(99.9));
    let run = &serve_runs[REPEATS / 2];
    let (report, serve_snap, worker_ops) = (&run.report, &run.snap, &run.worker_ops);
    println!(
        "  paced @ {:.0}/s      {:.3} Mops/s  p50 {}µs  p99 {}µs  p999 {}µs",
        paced_cfg.arrival_rate,
        report.mops(),
        report.percentile_ns(50.0) / 1_000,
        report.percentile_ns(99.0) / 1_000,
        report.percentile_ns(99.9) / 1_000,
    );
    println!(
        "  server-side        BATCH wire p50 {}µs  p99 {}µs  ({} frames, {} slow records)",
        run.batch_wire.percentile(50.0) / 1_000,
        run.batch_wire.percentile(99.0) / 1_000,
        run.batch_wire.len(),
        run.slow.len(),
    );
    cells.push(json::cell(
        "serving_replay",
        Json::obj([
            ("workload", Json::from(paced_cfg.workload.name)),
            ("sessions", Json::from(sessions)),
            (
                "ops_per_session",
                Json::from(u64::from(paced_cfg.ops_per_session)),
            ),
            ("workers", Json::from(serve_workers)),
            ("clients", Json::from(paced_cfg.clients)),
            ("key_range", Json::from(paced_cfg.key_range)),
            ("zipf_theta", Json::Num(paced_cfg.zipf_theta)),
            ("util", Json::Num(util)),
            ("arrival_rate", Json::Num(paced_cfg.arrival_rate)),
            ("seed", Json::from(seed)),
            ("repeats", Json::from(REPEATS)),
        ]),
        Json::obj([
            ("max_mops", Json::Num(max_mops)),
            ("max_sessions_per_sec", Json::Num(max_rate)),
            ("mops", Json::Num(report.mops())),
            ("sessions_per_sec", Json::Num(report.sessions_per_sec())),
            ("ops", Json::from(report.ops)),
            ("p50_ns", Json::from(report.percentile_ns(50.0))),
            ("p99_ns", Json::from(report.percentile_ns(99.0))),
            ("p999_ns", Json::from(report.percentile_ns(99.9))),
            ("client_rtt_p50_ns", Json::from(report.rtt.percentile(50.0))),
            ("client_rtt_p99_ns", Json::from(report.rtt.percentile(99.0))),
            (
                "server_wire_p50_ns",
                Json::from(run.batch_wire.percentile(50.0)),
            ),
            (
                "server_wire_p99_ns",
                Json::from(run.batch_wire.percentile(99.0)),
            ),
            ("frames", Json::from(run.batch_wire.len())),
            ("slow_records", Json::from(run.slow.len())),
            ("batch_fused_ops", Json::from(run.batch_fused_ops)),
            (
                "worker_ops",
                Json::Arr(worker_ops.iter().map(|&o| Json::from(o)).collect()),
            ),
            ("obs", snapshot_json(serve_snap)),
        ]),
    ));
    let serving_gate_ok = check_serving_gate(max_mops, worker_ops);
    let agreement_ok = check_latency_agreement(&report.rtt, &run.batch_wire);

    // The PR 9 churn cell: same replay engine, but every client redials
    // a fresh connection every `sessions_per_conn` sessions and ships
    // its bundles as pipelined per-session BATCH frames. 16 concurrent
    // connections against 2 workers: the pre-reactor server (one
    // connection served to completion per worker) could not serve this
    // shape at all.
    let churn_workers = 2;
    let churn_clients = churn_workers * 8;
    let churn_sessions = (sessions / 4).max(1_000);
    let churn_cfg = ReplayConfig {
        sessions: churn_sessions,
        clients: churn_clients,
        sessions_per_conn: 32,
        seed,
        ..ReplayConfig::default()
    };
    println!(
        "== serving churn ({churn_sessions} sessions, {churn_workers} workers, {churn_clients} conns redialing every {} sessions, util {util:.2}, median of {REPEATS}) ==",
        churn_cfg.sessions_per_conn
    );
    let churn_calib_cfg = ReplayConfig {
        arrival_rate: f64::INFINITY,
        ..churn_cfg.clone()
    };
    let churn_calib = serving_churn_run(&churn_calib_cfg, churn_workers);
    let churn_peak = churn_calib.report.sessions_per_sec();
    println!(
        "  peak capacity      {churn_peak:.0} sessions/s  ({:.3} Mops/s, {} conns opened)",
        churn_calib.report.mops(),
        churn_calib.report.conns
    );
    let churn_paced_cfg = ReplayConfig {
        arrival_rate: churn_peak * util,
        ..churn_cfg.clone()
    };
    let churn_sched_secs = churn_sessions as f64 / churn_paced_cfg.arrival_rate;
    let mut churn_runs: Vec<ChurnRun> = (0..REPEATS)
        .map(|_| serving_churn_run(&churn_paced_cfg, churn_workers))
        .collect();
    churn_runs.sort_by_key(|r| r.report.percentile_ns(99.9));
    let churn_run = &churn_runs[REPEATS / 2];
    println!(
        "  paced @ {:.0}/s      {:.3} Mops/s  p50 {}µs  p99 {}µs  p999 {}µs  ({} conns, backpressure events {})",
        churn_paced_cfg.arrival_rate,
        churn_run.report.mops(),
        churn_run.report.percentile_ns(50.0) / 1_000,
        churn_run.report.percentile_ns(99.0) / 1_000,
        churn_run.report.percentile_ns(99.9) / 1_000,
        churn_run.report.conns,
        churn_run.backpressure_events,
    );
    cells.push(json::cell(
        "serving_churn",
        Json::obj([
            ("workload", Json::from(churn_paced_cfg.workload.name)),
            ("sessions", Json::from(churn_sessions)),
            (
                "ops_per_session",
                Json::from(u64::from(churn_paced_cfg.ops_per_session)),
            ),
            ("workers", Json::from(churn_workers)),
            ("clients", Json::from(churn_paced_cfg.clients)),
            (
                "sessions_per_conn",
                Json::from(churn_paced_cfg.sessions_per_conn),
            ),
            ("key_range", Json::from(churn_paced_cfg.key_range)),
            ("zipf_theta", Json::Num(churn_paced_cfg.zipf_theta)),
            ("util", Json::Num(util)),
            ("arrival_rate", Json::Num(churn_paced_cfg.arrival_rate)),
            ("seed", Json::from(seed)),
            ("repeats", Json::from(REPEATS)),
        ]),
        Json::obj([
            ("max_sessions_per_sec", Json::Num(churn_peak)),
            ("max_mops", Json::Num(churn_calib.report.mops())),
            ("mops", Json::Num(churn_run.report.mops())),
            (
                "sessions_per_sec",
                Json::Num(churn_run.report.sessions_per_sec()),
            ),
            ("ops", Json::from(churn_run.report.ops)),
            ("conns", Json::from(churn_run.report.conns)),
            ("p50_ns", Json::from(churn_run.report.percentile_ns(50.0))),
            ("p99_ns", Json::from(churn_run.report.percentile_ns(99.0))),
            ("p999_ns", Json::from(churn_run.report.percentile_ns(99.9))),
            (
                "backpressure_events",
                Json::from(churn_run.backpressure_events),
            ),
            ("drained", Json::from(u64::from(churn_run.drained))),
            (
                "worker_ops",
                Json::Arr(
                    churn_run
                        .worker_ops
                        .iter()
                        .map(|&o| Json::from(o))
                        .collect(),
                ),
            ),
            ("obs", snapshot_json(&churn_run.snap)),
        ]),
    ));
    let churn_gate_ok = check_churn_gate(churn_run, churn_clients, churn_workers, churn_sched_secs);

    // The PR 9 pipelining A/B: identical seeded uniform GET streams on
    // one client, blocking one-at-a-time vs pipelined, as interleaved
    // pairs against one long-lived server so machine drift cancels.
    let pipe_range = key_range.min(1 << 18);
    println!(
        "== pipelining (1 client GETs over {pipe_range} keys, window {}, {secs:.2}s/arm, median of {REPEATS} interleaved pairs) ==",
        Client::PIPELINE_WINDOW
    );
    let pipe_server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    {
        // Preload every other key so GETs split hit/miss.
        let mut c = Client::connect(pipe_server.addr()).expect("connect to server");
        let mut ops = Vec::with_capacity(1024);
        for chunk_start in (0..pipe_range).step_by(2 * 1024) {
            ops.clear();
            ops.extend(
                (chunk_start..)
                    .step_by(2)
                    .take(1024)
                    .take_while(|&k| k < pipe_range)
                    .map(|k| BatchOp::Insert(k, k)),
            );
            c.batch(&ops).expect("preload batch");
        }
    }
    let mut arm_mops: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for rep in 0..REPEATS {
        for pipelined in [false, true] {
            let mops = pipeline_arm_mops(
                pipe_server.addr(),
                pipelined,
                pipe_range,
                secs,
                seed ^ rep as u64,
            );
            arm_mops[pipelined as usize].push(mops);
        }
    }
    pipe_server.shutdown();
    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let serial_mops = median(&mut arm_mops[0]);
    let pipelined_mops = median(&mut arm_mops[1]);
    println!(
        "  blocking  {serial_mops:.3} Mops/s\n  pipelined {pipelined_mops:.3} Mops/s  ({:.1}x)",
        pipelined_mops / serial_mops
    );
    cells.push(json::cell(
        "pipelining",
        Json::obj([
            ("workload", Json::from("uniform_get")),
            ("window", Json::from(Client::PIPELINE_WINDOW)),
            ("threads", Json::Int(1)),
            ("workers", Json::Int(2)),
            ("key_range", Json::from(pipe_range)),
            ("secs", Json::Num(secs)),
            ("seed", Json::from(seed)),
            ("repeats", Json::from(REPEATS)),
        ]),
        Json::obj([
            ("serial_mops", Json::Num(serial_mops)),
            ("pipelined_mops", Json::Num(pipelined_mops)),
            ("speedup", Json::Num(pipelined_mops / serial_mops)),
        ]),
    ));
    let pipeline_gate_ok = check_pipeline_gate(serial_mops, pipelined_mops);

    // The PR 10 batch-fusion A/B: identical replay workloads at drain
    // rate against fresh servers that differ in one flag —
    // `fuse_batches` on (BATCH frames partitioned by shard, sorted,
    // and run through `execute_batch`, inheriting the finger-anchored
    // descent) vs off (the same ops unrolled one at a time through the
    // per-shard handles). Interleaved pairs so machine drift cancels.
    // The frame shape is the one fusion targets — high-occupancy BATCH
    // frames (the `coalesce` / new `coalesce_ops` replay knobs fill
    // and cap them) over a serving-resident key range dense enough
    // that sorted per-shard runs land on adjacent leaves; the default
    // replay shape (96–192-op frames over 2^20 keys) leaves the tree
    // such a small slice of loopback wall time that the A/B measures
    // syscall jitter, not execution strategy.
    let fusion_workers = 2;
    let fusion_sessions = (sessions / 4).max(1_000);
    let fusion_ops_cap = std::env::var("NMBST_FUSION_OPS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(768);
    let fusion_cfg = ReplayConfig {
        sessions: fusion_sessions,
        clients: fusion_workers,
        arrival_rate: f64::INFINITY,
        key_range: 1 << 14,
        coalesce: 256,
        coalesce_ops: fusion_ops_cap,
        seed,
        ..ReplayConfig::default()
    };
    println!(
        "== serving batch fusion ({fusion_sessions} sessions, {fusion_workers} workers, ≤{fusion_ops_cap} ops/frame, drain rate, median of {REPEATS} interleaved pairs) =="
    );
    let mut fusion_mops: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    let mut fused_finger_hits = 0u64;
    let mut fused_finger_misses = 0u64;
    let mut fused_ops_total = 0u64;
    let mut single_ops_total = 0u64;
    for _ in 0..REPEATS {
        for fused in [false, true] {
            let run = serving_replay_run(&fusion_cfg, fusion_workers, fused);
            fusion_mops[fused as usize].push(run.report.mops());
            if fused {
                fused_finger_hits += run.snap.finger_hits;
                fused_finger_misses += run.snap.finger_misses;
                fused_ops_total += run.batch_fused_ops;
            } else {
                single_ops_total += run.batch_single_ops;
            }
        }
    }
    let unfused_mops = median(&mut fusion_mops[0]);
    let fused_mops = median(&mut fusion_mops[1]);
    println!(
        "  unrolled {unfused_mops:.3} Mops/s\n  fused    {fused_mops:.3} Mops/s  ({:.2}x)  finger hits {fused_finger_hits} / misses {fused_finger_misses}",
        fused_mops / unfused_mops
    );
    cells.push(json::cell(
        "serving_batch_fusion",
        Json::obj([
            ("workload", Json::from(fusion_cfg.workload.name)),
            ("sessions", Json::from(fusion_sessions)),
            (
                "ops_per_session",
                Json::from(u64::from(fusion_cfg.ops_per_session)),
            ),
            ("workers", Json::from(fusion_workers)),
            ("clients", Json::from(fusion_cfg.clients)),
            ("coalesce_ops", Json::from(fusion_ops_cap as u64)),
            ("key_range", Json::from(fusion_cfg.key_range)),
            ("zipf_theta", Json::Num(fusion_cfg.zipf_theta)),
            ("seed", Json::from(seed)),
            ("repeats", Json::from(REPEATS)),
        ]),
        Json::obj([
            ("unfused_mops", Json::Num(unfused_mops)),
            ("fused_mops", Json::Num(fused_mops)),
            ("speedup", Json::Num(fused_mops / unfused_mops)),
            ("fused_finger_hits", Json::from(fused_finger_hits)),
            ("fused_finger_misses", Json::from(fused_finger_misses)),
            ("batch_fused_ops", Json::from(fused_ops_total)),
            ("batch_single_ops", Json::from(single_ops_total)),
        ]),
    ));
    let fusion_gate_ok = check_fusion_gate(
        unfused_mops,
        fused_mops,
        fused_finger_hits,
        fused_ops_total,
        single_ops_total,
    );

    let path = std::path::Path::new(&out_path);
    json::write_bench_file(path, &cells).expect("write bench json");
    println!("wrote {} cells to {}", cells.len(), path.display());

    let baseline_ok = check_against_baseline(&gate_mops);

    let mut failures: Vec<&str> = Vec::new();
    if !pool_gate_ok {
        failures.push("pool ablation gate failed");
    }
    if !leaf_gate_ok {
        failures.push("leaf ablation gate failed");
    }
    if !table1_ok {
        failures.push(
            "Table-1 exact counts regressed (expected insert 2 allocs/1 CAS, delete 0 allocs/3 atomics)",
        );
    }
    if !bulk_gate_ok {
        failures.push("bulk-load gate failed");
    }
    if !batch_gate_ok {
        failures.push("sorted-batch gate failed");
    }
    if !obs_gate_ok {
        failures.push("obs overhead gate failed (recording costs more than the budget)");
    }
    if !serving_gate_ok {
        failures.push("serving replay gate failed");
    }
    if !agreement_ok {
        failures.push("client/server latency agreement gate failed");
    }
    if !churn_gate_ok {
        failures.push("serving churn gate failed");
    }
    if !pipeline_gate_ok {
        failures.push("pipelining gate failed");
    }
    if !fusion_gate_ok {
        failures.push("serving batch fusion gate failed");
    }
    if !baseline_ok {
        failures.push("baseline throughput gate failed");
    }
    if !failures.is_empty() {
        for msg in &failures {
            eprintln!("error: {msg}");
        }
        dump_slowlog(&serve_runs[REPEATS / 2].slow);
        std::process::exit(1);
    }
}

/// Writes the median paced run's slow-op records to
/// `NMBST_SLOWLOG_PATH` (default `SLOWLOG_DUMP.txt`) so a failing CI
/// job can upload the outliers that were live when the gate tripped.
fn dump_slowlog(slow: &[SlowOp]) {
    let path =
        std::env::var("NMBST_SLOWLOG_PATH").unwrap_or_else(|_| "SLOWLOG_DUMP.txt".to_string());
    let mut out = String::new();
    out.push_str("# slow-op records from the median paced serving run, slowest first\n");
    out.push_str("# origin kind key ns events\n");
    for op in slow {
        let (origin, kind) = match op.origin {
            1 => ("server", nmbst_server::wire::op_name(op.kind)),
            _ => (
                "tree",
                match op.kind {
                    0 => "get",
                    1 => "insert",
                    2 => "remove",
                    3 => "batch",
                    4 => "range",
                    _ => "?",
                },
            ),
        };
        out.push_str(&format!(
            "{origin} {kind} key={} ns={} events={:?}\n",
            op.key,
            op.ns,
            op.event_names(),
        ));
    }
    match std::fs::write(&path, &out) {
        Ok(()) => eprintln!("wrote {} slow-op records to {path}", slow.len()),
        Err(e) => eprintln!("failed to write slowlog dump to {path}: {e}"),
    }
}

/// The client/server latency agreement gate: both sides timed the same
/// BATCH frames (one histogram sample per session bundle on each side),
/// so the counts must match exactly, and the server's wire p99 — which
/// excludes the client's syscall + loopback cost — can never credibly
/// exceed the client's RTT p99 by more than the two histograms' bucket
/// error (`NMBST_AGREE_TOLERANCE`, default 0.15 ≈ 2× the 6.7% bucket
/// width). The reverse direction is a loose unit-mismatch tripwire
/// (`NMBST_AGREE_FACTOR`, default 100×): loopback syscall overhead
/// legitimately dominates sub-10µs frames, but a µs/ns mix-up overshoots
/// 100× instantly.
fn check_latency_agreement(client_rtt: &Histogram, server_wire: &Histogram) -> bool {
    let tolerance = std::env::var("NMBST_AGREE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.15);
    let factor = std::env::var("NMBST_AGREE_FACTOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(100.0);
    if client_rtt.len() != server_wire.len() {
        eprintln!(
            "  agreement: FAIL — client timed {} frames, server timed {}",
            client_rtt.len(),
            server_wire.len()
        );
        return false;
    }
    let client_p99 = client_rtt.percentile(99.0) as f64;
    let server_p99 = server_wire.percentile(99.0) as f64;
    let mut ok = true;
    if server_p99 > client_p99 * (1.0 + tolerance) {
        eprintln!(
            "  agreement: FAIL — server wire p99 {server_p99:.0}ns exceeds client rtt p99 \
             {client_p99:.0}ns by more than {:.0}% (bucket error budget)",
            tolerance * 100.0
        );
        ok = false;
    }
    if client_p99 > server_p99 * factor {
        eprintln!(
            "  agreement: FAIL — client rtt p99 {client_p99:.0}ns is over {factor:.0}x the \
             server wire p99 {server_p99:.0}ns (unit mismatch?)"
        );
        ok = false;
    }
    if ok {
        println!(
            "  agreement: ok — {} frames both sides, server p99 {:.1}µs ≤ client p99 {:.1}µs × {:.2}",
            client_rtt.len(),
            server_p99 / 1_000.0,
            client_p99 / 1_000.0,
            1.0 + tolerance
        );
    }
    ok
}

/// The obs-overhead gate: default sampled recording vs
/// `LatencyConfig::disabled()` on the mixed handle cell must stay
/// within `NMBST_OBS_TOLERANCE` (relative, default 0.03 — the paper
/// repro's observability budget). `ratio` is the median of the
/// per-pair on/off ratios from the interleaved runs (see the call
/// site for why that's the estimator).
fn check_obs_gate(ratio: f64) -> bool {
    let tolerance = std::env::var("NMBST_OBS_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.03);
    if ratio.is_nan() || ratio <= 0.0 {
        eprintln!("  obs gate: FAIL — degenerate on/off ratio {ratio}");
        return false;
    }
    let ok = ratio >= 1.0 - tolerance;
    println!(
        "  obs gate: {} — recording-on runs at {:.1}% of recording-off (tolerance -{:.0}%)",
        if ok { "ok" } else { "FAIL" },
        ratio * 100.0,
        tolerance * 100.0
    );
    if !ok {
        eprintln!(
            "error: latency recording costs {:.1}% (> {:.0}% budget)",
            (1.0 - ratio) * 100.0,
            tolerance * 100.0
        );
    }
    ok
}

/// A replay target that ships each coalesced session bundle as one
/// BATCH frame on its own blocking connection — the replay engine's
/// [`SessionOp`]s map 1:1 onto wire [`BatchOp`]s.
struct WireTarget {
    client: Client,
    ops: Vec<BatchOp>,
}

impl SessionTarget for WireTarget {
    fn run(&mut self, ops: &[SessionOp]) -> std::io::Result<()> {
        self.ops.clear();
        self.ops.extend(ops.iter().map(|op| match *op {
            SessionOp::Get(k) => BatchOp::Get(k),
            SessionOp::Insert(k, v) => BatchOp::Insert(k, v),
            SessionOp::Remove(k) => BatchOp::Remove(k),
        }));
        self.client.batch(&self.ops).map(drop)
    }
}

/// Everything one replay run produces: the client-side report, the
/// store's metrics, per-worker op counts, the server's BATCH wire-time
/// histogram (the server-side view of the same frames the client's
/// `rtt` histogram timed — the agreement gate compares the two), and
/// the merged slow-op records (server frames + tree ops).
struct ServeRun {
    report: ReplayReport,
    snap: MetricsSnapshot,
    worker_ops: Vec<u64>,
    batch_wire: Histogram,
    slow: Vec<SlowOp>,
    /// BATCH ops executed shard-fused through `execute_batch` vs
    /// unrolled one at a time — the fusion cell's attribution pair.
    batch_fused_ops: u64,
    batch_single_ops: u64,
}

/// One fresh-server replay run: bind on loopback, connect one client
/// per replay thread, replay, then shut the server down (joining the
/// workers flushes every pinned handle) before snapshotting metrics.
/// Request timing is read through [`Server::stats_arc`] *after*
/// `shutdown` so every frame's record is certainly published.
/// `fuse_batches: false` is the fusion cell's control arm: the same
/// server unrolls each BATCH op through the per-shard handles instead
/// of routing it through `execute_batch`.
fn serving_replay_run(cfg: &ReplayConfig, workers: usize, fuse_batches: bool) -> ServeRun {
    let server = Server::start(ServerConfig {
        workers,
        fuse_batches,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = Arc::clone(server.store());
    let stats = server.stats_arc();
    let targets: Vec<WireTarget> = (0..cfg.clients)
        .map(|_| WireTarget {
            client: Client::connect(server.addr()).expect("connect to server"),
            ops: Vec::new(),
        })
        .collect();
    let report = run_replay(cfg, targets);
    let worker_ops = stats.worker_ops();
    server.shutdown();
    let snap = store.metrics();
    let batch_wire = stats.wire_hist(nmbst_server::wire::OP_BATCH);
    let mut slow = stats.slow_frames();
    slow.extend_from_slice(&snap.slow_ops);
    slow.sort_by_key(|r| std::cmp::Reverse(r.ns));
    ServeRun {
        report,
        snap,
        worker_ops,
        batch_wire,
        slow,
        batch_fused_ops: stats.batch_fused_ops(),
        batch_single_ops: stats.batch_single_ops(),
    }
}

fn to_batch_op(op: SessionOp) -> BatchOp {
    match op {
        SessionOp::Get(k) => BatchOp::Get(k),
        SessionOp::Insert(k, v) => BatchOp::Insert(k, v),
        SessionOp::Remove(k) => BatchOp::Remove(k),
    }
}

/// The churn replay's per-connection target: one BATCH frame per
/// *session* (not per bundle), shipped pipelined — several frames in
/// flight on the connection, responses drained in order. Dropped and
/// reopened by the replay engine every `sessions_per_conn` sessions.
struct ChurnTarget {
    client: Client,
    per_session: usize,
    reqs: Vec<Request>,
}

impl SessionTarget for ChurnTarget {
    fn run(&mut self, ops: &[SessionOp]) -> std::io::Result<()> {
        self.reqs.clear();
        self.reqs.extend(
            ops.chunks(self.per_session)
                .map(|chunk| Request::Batch(chunk.iter().copied().map(to_batch_op).collect())),
        );
        for resp in self.client.pipeline(&self.reqs)? {
            if let Response::Err(msg) = resp {
                return Err(std::io::Error::other(format!("server error: {msg}")));
            }
        }
        Ok(())
    }
}

/// Everything one churn replay run produces. No wire histogram here —
/// pipelined frames share socket flushes, so there is no per-frame
/// client RTT population to cross-check against (the agreement gate
/// stays on the `serving_replay` cell, whose target is strictly one
/// frame in flight).
struct ChurnRun {
    report: ReplayReport,
    snap: MetricsSnapshot,
    worker_ops: Vec<u64>,
    backpressure_events: u64,
    /// Every reactor noticed every close: `open_connections` reached 0
    /// after the last client hung up (2 s grace).
    drained: bool,
}

/// One fresh-server churn run: clients open and close their own
/// connections via a redialing factory, bundles go out pipelined.
fn serving_churn_run(cfg: &ReplayConfig, workers: usize) -> ChurnRun {
    let server = Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback server");
    let store = Arc::clone(server.store());
    let stats = server.stats_arc();
    let addr = server.addr();
    let per_session = cfg.ops_per_session as usize;
    let factories: Vec<_> = (0..cfg.clients)
        .map(|_| {
            move || {
                Ok(ChurnTarget {
                    client: Client::connect(addr)?,
                    per_session,
                    reqs: Vec::new(),
                })
            }
        })
        .collect();
    let report = run_replay_churn(cfg, factories);
    // All clients have hung up; stuck connections are reactor bugs.
    let t0 = Instant::now();
    let mut drained = false;
    while t0.elapsed() < Duration::from_secs(2) {
        if stats.serve_gauges().open_connections == 0 {
            drained = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let worker_ops = stats.worker_ops();
    let backpressure_events = stats.serve_gauges().backpressure_events;
    server.shutdown();
    let snap = store.metrics();
    ChurnRun {
        report,
        snap,
        worker_ops,
        backpressure_events,
        drained,
    }
}

/// The churn gate: per-worker ops all nonzero (hard fail — churned
/// connections still must reach every reactor's pinned handles), the
/// run actually churned (connections opened exceed the concurrent
/// fleet, which itself is ≥ 8× workers), every connection closed when
/// the clients left, and the paced run finished within
/// `NMBST_CHURN_SLACK` (relative, default 1.0) of its own schedule — a
/// server that can't sustain the offered load drains at capacity
/// instead and overshoots immediately.
fn check_churn_gate(run: &ChurnRun, clients: usize, workers: usize, sched_secs: f64) -> bool {
    let slack = std::env::var("NMBST_CHURN_SLACK")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);
    let mut pass = true;
    for (w, &ops) in run.worker_ops.iter().enumerate() {
        if ops == 0 {
            eprintln!("error: churn worker {w} routed zero ops through its pinned handles");
            pass = false;
        }
    }
    if clients < 8 * workers {
        eprintln!("error: churn fleet of {clients} conns is under 8x the {workers} workers");
        pass = false;
    }
    if run.report.conns <= clients as u64 {
        eprintln!(
            "error: churn run opened only {} connections for {clients} clients — nothing redialed",
            run.report.conns
        );
        pass = false;
    }
    if !run.drained {
        eprintln!("error: connections stuck open after every churn client hung up");
        pass = false;
    }
    let elapsed = run.report.elapsed.as_secs_f64();
    let ceiling = sched_secs * (1.0 + slack);
    if elapsed > ceiling {
        eprintln!(
            "error: paced churn run took {elapsed:.2}s against a {sched_secs:.2}s schedule \
             (ceiling {ceiling:.2}s) — the offered load was not sustained"
        );
        pass = false;
    }
    println!(
        "  churn gate: {} — {} conns over {clients} clients, drained={}, {elapsed:.2}s vs {sched_secs:.2}s schedule",
        if pass { "ok" } else { "FAIL" },
        run.report.conns,
        run.drained,
    );
    pass
}

/// One pipelining arm: `secs` of the seeded uniform GET stream, either
/// blocking one-at-a-time or pipelined in bursts of 8 windows (the
/// window itself still bounds frames in flight). Returns Mops/s.
fn pipeline_arm_mops(
    addr: std::net::SocketAddr,
    pipelined: bool,
    key_range: u64,
    secs: f64,
    seed: u64,
) -> f64 {
    let mut client = Client::connect(addr).expect("connect to server");
    let mut rng = XorShift64Star::from_stream(seed, 0x919);
    let burst = Client::PIPELINE_WINDOW * 8;
    let mut reqs = Vec::with_capacity(burst);
    let mut ops = 0u64;
    let t0 = Instant::now();
    let deadline = Duration::from_secs_f64(secs);
    while t0.elapsed() < deadline {
        if pipelined {
            reqs.clear();
            reqs.extend((0..burst).map(|_| Request::Get(rng.next_bounded(key_range))));
            let responses = client.pipeline(&reqs).expect("pipelined gets");
            assert_eq!(responses.len(), reqs.len());
            ops += responses.len() as u64;
        } else {
            let key = rng.next_bounded(key_range);
            std::hint::black_box(client.get(&key).expect("blocking get"));
            ops += 1;
        }
    }
    ops as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// The pipelining gate: the pipelined arm must clear
/// `NMBST_PIPELINE_MIN_SPEEDUP`× the blocking arm (default 2.0). The
/// blocking client pays a full RTT per request; the pipelined client
/// pays one per window — anything under 2× means the window is not
/// actually keeping frames in flight.
fn check_pipeline_gate(serial_mops: f64, pipelined_mops: f64) -> bool {
    let min_speedup = std::env::var("NMBST_PIPELINE_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    let speedup = pipelined_mops / serial_mops;
    let pass = speedup >= min_speedup;
    println!(
        "  pipeline gate: {speedup:.1}x over blocking (floor {min_speedup:.1}x)  [{}]",
        if pass { "ok" } else { "FAIL" }
    );
    if !pass {
        eprintln!(
            "error: pipelined client only {speedup:.2}x the blocking client (need {min_speedup:.1}x)"
        );
    }
    pass
}

/// The batch-fusion gate. The fused arm must not trail the unrolled
/// arm by more than `NMBST_FUSION_TOLERANCE` (relative, default 0.05 —
/// fusion exists to *win* on sorted same-shard runs, but on one core
/// the A/B mostly measures the shared decode/encode path, so the gate
/// is a no-regression floor, not a speedup demand). Hard-fails if the
/// fused servers recorded **zero finger hits** (the sorted per-shard
/// runs never anchored — fusion silently degraded to root descents),
/// if the fused arm executed zero ops through `execute_batch` (the
/// flag is not reaching the engine), or if the control arm leaked ops
/// into the fused counter's path (the A/B is not actually an A/B).
fn check_fusion_gate(
    unfused_mops: f64,
    fused_mops: f64,
    fused_finger_hits: u64,
    fused_ops: u64,
    single_ops: u64,
) -> bool {
    let tolerance = std::env::var("NMBST_FUSION_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05);
    let mut ok = true;
    if fused_ops == 0 {
        eprintln!(
            "error: fused arm executed zero ops through execute_batch — \
             fuse_batches is not reaching the serve engine"
        );
        ok = false;
    }
    if single_ops == 0 {
        eprintln!(
            "error: control arm executed zero unrolled ops — \
             the fusion A/B has no working control"
        );
        ok = false;
    }
    if fused_finger_hits == 0 {
        eprintln!(
            "error: fused serving runs recorded zero finger hits — \
             sorted per-shard runs never anchored, wire batches have \
             silently degraded to root descents"
        );
        ok = false;
    }
    let floor = unfused_mops * (1.0 - tolerance);
    let pass = fused_mops >= floor;
    println!(
        "  fusion gate: fused {fused_mops:.3} vs unrolled {unfused_mops:.3} Mops/s (floor {floor:.3}), finger hits {fused_finger_hits}  [{}]",
        if pass && ok { "ok" } else { "FAIL" }
    );
    if !pass {
        eprintln!(
            "error: fused batch execution trails unrolled by more than {:.1}% \
             ({fused_mops:.3} vs {unfused_mops:.3} Mops/s; NMBST_FUSION_TOLERANCE={tolerance})",
            tolerance * 100.0
        );
        ok = false;
    }
    ok
}

/// The serving gate. Hard-fails if any worker routed zero ops through
/// its pinned handles (traffic got served, but not through the
/// per-shard handle path — the pinning is silently broken), and
/// compares peak capacity against the committed `serving_replay`
/// baseline cell under `NMBST_SERVE_TOLERANCE` (relative, default
/// 0.25 — loopback serving jitters far more than in-process cells).
/// A baseline file without the cell (pre-PR 6) skips the comparison.
fn check_serving_gate(max_mops: f64, worker_ops: &[u64]) -> bool {
    let mut pass = true;
    for (w, &ops) in worker_ops.iter().enumerate() {
        if ops == 0 {
            eprintln!("error: serving worker {w} routed zero ops through its pinned handles");
            pass = false;
        }
    }
    let Some(baseline_path) = std::env::var("NMBST_BASELINE_JSON")
        .ok()
        .filter(|p| !p.is_empty())
    else {
        return pass;
    };
    let tolerance = std::env::var("NMBST_SERVE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.25);
    // Unreadable/unparseable baselines are already fatal in
    // `check_against_baseline`; don't double-report here.
    let Ok(text) = std::fs::read_to_string(&baseline_path) else {
        return pass;
    };
    let Ok(baseline) = Json::parse(&text) else {
        return pass;
    };
    let base = baseline
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or_default()
        .iter()
        .find_map(|c| {
            (c.get("bench")?.as_str()? == "serving_replay")
                .then(|| c.get("metrics")?.get("max_mops")?.as_f64())
                .flatten()
        });
    let Some(base) = base else {
        println!("  serving baseline: no serving_replay cell in {baseline_path} — skipped");
        return pass;
    };
    let floor = base * (1.0 - tolerance);
    let ok = max_mops >= floor;
    println!(
        "  serving peak {max_mops:.3} Mops/s vs baseline {base:.3} (floor {floor:.3}) — {}",
        if ok { "ok" } else { "FAIL" }
    );
    if !ok {
        eprintln!(
            "error: serving peak capacity trails the baseline by more than {:.0}%",
            tolerance * 100.0
        );
    }
    pass && ok
}

/// The bulk-load gate: the O(n) balanced build must beat loop-insert
/// (shuffled order, handle API) by at least `NMBST_BULK_MIN_SPEEDUP`×
/// (default 2.0). The bulk path allocates from the pool, does zero CAS
/// work, and never re-descends — if it can't clear 2× something is
/// structurally wrong, not jittery.
fn check_bulk_gate(bulk_secs: f64, loop_secs: f64, keys: u64) -> bool {
    let min_speedup = std::env::var("NMBST_BULK_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    let speedup = loop_secs / bulk_secs;
    let pass = speedup >= min_speedup;
    println!(
        "  bulk {:.1} ms vs loop {:.1} ms for {keys} keys — {speedup:.1}x (floor {min_speedup:.1}x)  [{}]",
        bulk_secs * 1e3,
        loop_secs * 1e3,
        if pass { "ok" } else { "REGRESSED" },
    );
    if !pass {
        eprintln!("error: bulk load only {speedup:.2}x faster than shuffled loop-insert (need {min_speedup:.1}x)");
    }
    pass
}

/// The sorted-batch gate: the batched cell must not trail the
/// one-at-a-time cell by more than `NMBST_BATCH_TOLERANCE` (relative,
/// default 0.05 — the finger exists to *win* this cell; the tolerance
/// only absorbs single-core scheduler jitter), and it must have
/// recorded at least one finger hit. A zero hit count with green
/// throughput means the anchor gate is rejecting every op and the
/// batch API silently degraded to root descents.
fn check_batch_gate(singles_mops: f64, batched_mops: f64, finger_hits: u64) -> bool {
    let tolerance = std::env::var("NMBST_BATCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05);
    let floor = singles_mops * (1.0 - tolerance);
    let fast_enough = batched_mops >= floor;
    let finger_alive = finger_hits > 0;
    println!(
        "  batch gate: batched {batched_mops:.3} Mops/s vs singles {singles_mops:.3} (floor {floor:.3}), finger hits {finger_hits}  [{}]",
        if fast_enough && finger_alive { "ok" } else { "REGRESSED" },
    );
    if !fast_enough {
        eprintln!(
            "error: batched sorted runs trail one-at-a-time by more than {:.1}%",
            tolerance * 100.0
        );
    }
    if !finger_alive {
        eprintln!("error: sorted-batch cell recorded zero finger hits — the anchor gate is dead");
    }
    fast_enough && finger_alive
}

/// The leaf ablation gate, two clauses:
///
/// * **Win** — the fat-leaf read-dominated cell must not trail the
///   `leaf_cap = 1` cell by more than `NMBST_LEAF_TOLERANCE` (relative,
///   default 0.05). Fat leaves exist to win the read path; the
///   tolerance only absorbs single-core scheduler jitter.
/// * **Attribution** — the thin tree's max observed descent depth must
///   be *strictly deeper* than the fat tree's. Both cells run the same
///   seeded key stream, so this is deterministic: if it ever fails, the
///   ablation stopped reproducing the pre-PR 7 one-key-per-leaf shape
///   and the throughput delta no longer isolates leaf compaction.
fn check_leaf_gate(read_dom_mops: [f64; 2], max_depths: [u64; 2]) -> bool {
    let tolerance = std::env::var("NMBST_LEAF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05);
    let [thin_mops, fat_mops] = read_dom_mops;
    let [thin_depth, fat_depth] = max_depths;
    let floor = thin_mops * (1.0 - tolerance);
    let fast_enough = fat_mops >= floor;
    let shape_ok = thin_depth > fat_depth;
    println!(
        "== leaf gate (tolerance {:.0}%) ==\n  read-dominated fat {fat_mops:.3} Mops/s vs cap-1 {thin_mops:.3} (floor {floor:.3}), depth {fat_depth} vs {thin_depth}  [{}]",
        tolerance * 100.0,
        if fast_enough && shape_ok { "ok" } else { "REGRESSED" },
    );
    if !fast_enough {
        eprintln!(
            "error: fat-leaf read-dominated throughput trails leaf_cap=1 by more than {:.1}%",
            tolerance * 100.0
        );
    }
    if !shape_ok {
        eprintln!(
            "error: leaf_cap=1 ablation no longer reproduces the deep pre-fat-leaf shape \
             (thin max_depth {thin_depth} vs fat {fat_depth}) — attribution lost"
        );
    }
    fast_enough && shape_ok
}

/// The pool ablation gate: pool-on must not trail pool-off on the
/// insert-heavy cell by more than `NMBST_POOL_TOLERANCE` (relative,
/// default 0.10). The pool exists to *win* this cell; the tolerance
/// only absorbs scheduler jitter on shared single-core runners, not a
/// real regression.
fn check_pool_gate(off_mops: f64, on_mops: f64) -> bool {
    let tolerance = std::env::var("NMBST_POOL_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    let floor = off_mops * (1.0 - tolerance);
    let pass = on_mops >= floor;
    println!(
        "== pool gate (tolerance {:.0}%) ==\n  insert-heavy pool-on {on_mops:.3} Mops/s vs pool-off {off_mops:.3} (floor {floor:.3})  [{}]",
        tolerance * 100.0,
        if pass { "ok" } else { "REGRESSED" },
    );
    if !pass {
        eprintln!(
            "error: pool-on insert-heavy throughput trails pool-off by more than {:.1}%",
            tolerance * 100.0
        );
    }
    pass
}

/// The throughput regression gate: compares this run's mixed and
/// read-dominated single-thread cells against the bench file named by
/// `NMBST_BASELINE_JSON` (no-op when unset). Tolerance is relative, from
/// `NMBST_PERF_TOLERANCE` (default 0.03 = 3%, the observability budget).
fn check_against_baseline(gate_mops: &[(&'static str, &'static str, f64)]) -> bool {
    let Some(baseline_path) = std::env::var("NMBST_BASELINE_JSON")
        .ok()
        .filter(|p| !p.is_empty())
    else {
        return true;
    };
    let tolerance = std::env::var("NMBST_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.03);
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: cannot parse baseline {baseline_path}: {e}");
            return false;
        }
    };
    let cells = baseline
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or_default();
    let baseline_mops = |workload: &str, api: &str| -> Option<f64> {
        cells.iter().find_map(|c| {
            let cfg = c.get("config")?;
            (c.get("bench")?.as_str()? == "single_thread_throughput"
                && cfg.get("workload")?.as_str()? == workload
                && cfg.get("api")?.as_str()? == api)
                .then(|| c.get("metrics")?.get("mops")?.as_f64())
                .flatten()
        })
    };

    println!(
        "== baseline gate ({baseline_path}, tolerance {:.0}%) ==",
        tolerance * 100.0
    );
    let mut ok = true;
    for &(workload, api, current) in gate_mops {
        let Some(base) = baseline_mops(workload, api) else {
            println!("  {workload:<24} {api:<10} no baseline cell — skipped");
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let pass = current >= floor;
        ok &= pass;
        println!(
            "  {workload:<24} {api:<10} {current:.3} Mops/s vs baseline {base:.3} (floor {floor:.3})  [{}]",
            if pass { "ok" } else { "REGRESSED" },
        );
        if !pass {
            eprintln!(
                "error: {workload} throughput ({api}) regressed more than {:.1}% vs {baseline_path}",
                tolerance * 100.0
            );
        }
    }
    ok
}
