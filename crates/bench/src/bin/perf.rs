//! The hot-path perf harness: machine-readable before/after cells for
//! the PR 2 optimizations and the PR 4 node-recycling pool, written as
//! `BENCH_PR4.json` (override the path with `NMBST_BENCH_JSON`).
//!
//! Five benches, each emitting `{bench, config, metrics}` cells in the
//! `nmbst-bench-v1` schema shared with criterion-lite:
//!
//! * `single_thread_throughput` — one thread, read-heavy / mixed /
//!   write-heavy mixes, plain per-op-pin API vs a pin-amortizing
//!   handle.
//! * `contended_throughput` — several threads hammering a small key
//!   range (write-heavy), root-restart vs local-restart retry policy,
//!   with the seek/local-restart counters captured per cell.
//! * `latency` — single-thread mixed-workload per-op latency
//!   percentiles, per-op-pin vs handle.
//! * `table1_exact` — the paper's Table-1 exact counts (insert: 2
//!   allocs / 1 CAS; delete: 0 allocs / 3 atomics), measured through
//!   both the plain API and a handle. **The process exits non-zero if
//!   any exact count regresses**, which is the CI perf-smoke gate.
//! * `pool_ablation` — the PR 4 one-flag A/B: the insert-heavy
//!   (write-dominated) handle cell with the node pool on vs off, plus
//!   mixed-workload cells, each embedding its obs snapshot so
//!   `pool_hits` / `pool_recycled` are committed next to the
//!   throughput they bought. **The process exits non-zero if pool-on
//!   trails pool-off by more than `NMBST_POOL_TOLERANCE`** (default
//!   0.10; CI uses a looser bound for jittery shared runners), or if
//!   the mixed pool-on cell somehow recorded zero pool hits.
//!
//! Knobs: `NMBST_SECS` (measured seconds per throughput cell, default
//! 1.0; CI uses 0.2), `NMBST_KEYS` (first entry = single-thread key
//! range), `NMBST_SEED`.
//!
//! Regression gate: when `NMBST_BASELINE_JSON` names a committed bench
//! file, the mixed-workload single-thread cells are compared against it
//! and the process exits non-zero if throughput dropped more than
//! `NMBST_PERF_TOLERANCE` (default 0.03) — the observability layer's
//! "no default-build slowdown" budget, enforced.

use criterion::json::{self, Json};
use nmbst::obs::MetricsSnapshot;
use nmbst::{NmTreeSet, PoolConfig, RestartPolicy, SetHandle, TagMode, TreeConfig};
use nmbst_bench::SweepConfig;
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::workload::OpKind;
use nmbst_harness::{Histogram, Workload};
use nmbst_reclaim::{Ebr, Leaky, Reclaim};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Which front end drives the operations.
#[derive(Clone, Copy, PartialEq)]
enum Api {
    /// The plain API: every call pins and unpins the reclaimer.
    PerOpPin,
    /// A [`SetHandle`] holding its guard across operations.
    Handle,
}

impl Api {
    fn label(self) -> &'static str {
        match self {
            Api::PerOpPin => "per_op_pin",
            Api::Handle => "handle",
        }
    }
}

fn prepopulate<R: Reclaim>(set: &NmTreeSet<u64, R>, key_range: u64, seed: u64) {
    let target = key_range / 2;
    let mut rng = XorShift64Star::from_stream(seed, u64::MAX);
    let mut inserted = 0;
    while inserted < target {
        if set.insert(1 + rng.next_bounded(key_range)) {
            inserted += 1;
        }
    }
}

#[inline]
fn plain_op<R: Reclaim>(set: &NmTreeSet<u64, R>, op: OpKind, key: u64) -> bool {
    match op {
        OpKind::Search => set.contains(&key),
        OpKind::Insert => set.insert(key),
        OpKind::Delete => set.remove(&key),
    }
}

#[inline]
fn handle_op<R: Reclaim>(h: &mut SetHandle<'_, u64, R>, op: OpKind, key: u64) -> bool {
    match op {
        OpKind::Search => h.contains(&key),
        OpKind::Insert => h.insert(key),
        OpKind::Delete => h.remove(&key),
    }
}

/// One single-thread throughput measurement; returns (Mops/s, ops,
/// final metrics snapshot).
fn single_thread_mops(
    api: Api,
    config: TreeConfig,
    workload: Workload,
    key_range: u64,
    secs: f64,
    seed: u64,
) -> (f64, u64, MetricsSnapshot) {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::with_config(config);
    prepopulate(&set, key_range, seed);
    let warmup = Duration::from_secs_f64((secs * 0.2).min(0.2));
    let duration = Duration::from_secs_f64(secs);
    let mut rng = XorShift64Star::from_stream(seed, 1);
    let mut ops = 0u64;
    let mut elapsed = Duration::ZERO;

    let mut phase = |budget: Duration, measured: bool, rng: &mut XorShift64Star| {
        let t0 = Instant::now();
        match api {
            Api::PerOpPin => {
                while t0.elapsed() < budget {
                    for _ in 0..64 {
                        let key = 1 + rng.next_bounded(key_range);
                        std::hint::black_box(plain_op(&set, workload.pick(rng), key));
                        if measured {
                            ops += 1;
                        }
                    }
                }
            }
            Api::Handle => {
                let mut h = set.handle();
                while t0.elapsed() < budget {
                    for _ in 0..64 {
                        let key = 1 + rng.next_bounded(key_range);
                        std::hint::black_box(handle_op(&mut h, workload.pick(rng), key));
                        if measured {
                            ops += 1;
                        }
                    }
                }
            }
        }
        t0.elapsed()
    };
    phase(warmup, false, &mut rng);
    elapsed += phase(duration, true, &mut rng);
    (ops as f64 / elapsed.as_secs_f64() / 1e6, ops, set.metrics())
}

/// A [`MetricsSnapshot`] as a JSON object, via its canonical `to_json`
/// rendering so the bench file and a live scrape always agree on keys.
fn snapshot_json(m: &MetricsSnapshot) -> Json {
    Json::parse(&m.to_json()).expect("MetricsSnapshot::to_json emits valid JSON")
}

/// Multi-thread contended throughput under a restart policy; returns
/// (Mops/s, ops, full seeks, local restarts) summed over threads.
fn contended_mops(
    restart: RestartPolicy,
    threads: usize,
    key_range: u64,
    secs: f64,
    seed: u64,
) -> (f64, u64, u64, u64) {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::with_restart_policy(restart);
    prepopulate(&set, key_range, seed);
    let workload = Workload::WRITE_DOMINATED;
    let stop = AtomicBool::new(false);
    let start = Barrier::new(threads + 1);
    let totals = Mutex::new((0u64, 0u64, 0u64)); // ops, seeks, local restarts
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        for t in 0..threads {
            let (set, stop, start, totals) = (&set, &stop, &start, &totals);
            s.spawn(move || {
                let mut rng = XorShift64Star::from_stream(seed, t as u64);
                start.wait();
                let (ops, delta) = nmbst::stats::delta(|| {
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..32 {
                            let key = 1 + rng.next_bounded(key_range);
                            std::hint::black_box(plain_op(set, workload.pick(&mut rng), key));
                            ops += 1;
                        }
                    }
                    ops
                });
                let mut acc = totals.lock().unwrap();
                acc.0 += ops;
                acc.1 += delta.seeks;
                acc.2 += delta.local_restarts;
            });
        }
        start.wait();
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
        elapsed = t0.elapsed();
    });

    let (ops, seeks, restarts) = *totals.lock().unwrap();
    (
        ops as f64 / elapsed.as_secs_f64() / 1e6,
        ops,
        seeks,
        restarts,
    )
}

/// Single-thread per-op latency histogram over `ops` mixed operations.
fn latency_hist(api: Api, key_range: u64, ops: u64, seed: u64) -> Histogram {
    let set: NmTreeSet<u64, Ebr> = NmTreeSet::new();
    prepopulate(&set, key_range, seed);
    let workload = Workload::MIXED;
    let mut rng = XorShift64Star::from_stream(seed, 2);
    let mut hist = Histogram::new();
    match api {
        Api::PerOpPin => {
            for _ in 0..ops {
                let key = 1 + rng.next_bounded(key_range);
                let op = workload.pick(&mut rng);
                let t0 = Instant::now();
                std::hint::black_box(plain_op(&set, op, key));
                hist.record(t0.elapsed().as_nanos() as u64);
            }
        }
        Api::Handle => {
            let mut h = set.handle();
            for _ in 0..ops {
                let key = 1 + rng.next_bounded(key_range);
                let op = workload.pick(&mut rng);
                let t0 = Instant::now();
                std::hint::black_box(handle_op(&mut h, op, key));
                hist.record(t0.elapsed().as_nanos() as u64);
            }
        }
    }
    hist
}

/// Table-1 exact counts measured through the chosen front end; returns
/// (insert allocs, delete allocs, insert atomics, delete atomics) per op.
fn table1_counts(api: Api) -> (f64, f64, f64, f64) {
    const BASE: u64 = 1_000;
    const OPS: u64 = 500;
    let set: NmTreeSet<u64, Leaky> = NmTreeSet::new();
    let mut h = set.handle();
    let set = &set;
    let mut run = |key: u64, op: OpKind| match api {
        Api::PerOpPin => plain_op(set, op, key),
        Api::Handle => handle_op(&mut h, op, key),
    };
    for k in (0..BASE).map(|i| i * 2 + 1) {
        run(k, OpKind::Insert);
    }
    let ((), ins) = nmbst::stats::delta(|| {
        for k in (1..=OPS).map(|i| i * 2) {
            assert!(run(k, OpKind::Insert), "uncontended insert failed");
        }
    });
    let ((), del) = nmbst::stats::delta(|| {
        for k in (1..=OPS).map(|i| i * 2) {
            assert!(run(k, OpKind::Delete), "uncontended delete failed");
        }
    });
    (
        ins.allocs as f64 / OPS as f64,
        del.allocs as f64 / OPS as f64,
        ins.atomics() as f64 / OPS as f64,
        del.atomics() as f64 / OPS as f64,
    )
}

fn main() {
    let cfg = SweepConfig::from_env();
    let secs = cfg.duration.as_secs_f64();
    let seed = cfg.seed;
    let key_range = cfg.key_ranges.first().copied().unwrap_or(1_000).max(64);
    let latency_ops = ((secs * 200_000.0) as u64).clamp(10_000, 2_000_000);
    // Conflict-dense on purpose: local restarts only pay off when CAS
    // failures actually happen, so this cell packs many writers into a
    // small key range.
    let contended_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let contended_range = 128;
    let out_path = std::env::var(criterion::BENCH_JSON_ENV)
        .ok()
        .filter(|p| !p.is_empty())
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let mut cells: Vec<Json> = Vec::new();

    // Single-core containers schedule-jitter individual runs by 10%+;
    // the median of three repeats per cell is stable enough to commit.
    const REPEATS: usize = 3;
    println!(
        "== single-thread throughput (key range {key_range}, {secs:.2}s/cell, median of {REPEATS}) =="
    );
    let mut mixed_mops: Vec<(&'static str, f64)> = Vec::new();
    for workload in Workload::FIGURE4 {
        for api in [Api::PerOpPin, Api::Handle] {
            let mut runs: Vec<(f64, u64, MetricsSnapshot)> = (0..REPEATS)
                .map(|_| {
                    single_thread_mops(api, TreeConfig::default(), workload, key_range, secs, seed)
                })
                .collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mops, ops, snap) = runs[REPEATS / 2];
            println!(
                "  {:<24} {:<10} {mops:.3} Mops/s",
                workload.name,
                api.label()
            );
            if workload.name == Workload::MIXED.name {
                mixed_mops.push((api.label(), mops));
            }
            cells.push(json::cell(
                "single_thread_throughput",
                Json::obj([
                    ("workload", Json::from(workload.name)),
                    ("api", Json::from(api.label())),
                    ("threads", Json::Int(1)),
                    ("key_range", Json::from(key_range)),
                    ("secs", Json::Num(secs)),
                    ("seed", Json::from(seed)),
                    ("repeats", Json::from(REPEATS)),
                ]),
                Json::obj([
                    ("mops", Json::Num(mops)),
                    ("ops", Json::from(ops)),
                    ("obs", snapshot_json(&snap)),
                ]),
            ));
        }
    }

    println!(
        "== contended throughput ({contended_threads} threads, key range {contended_range}, write-heavy) =="
    );
    for restart in [RestartPolicy::Root, RestartPolicy::Local] {
        let label = match restart {
            RestartPolicy::Root => "root",
            RestartPolicy::Local => "local",
        };
        let (mops, ops, seeks, restarts) =
            contended_mops(restart, contended_threads, contended_range, secs, seed);
        println!(
            "  restart={label:<6} {mops:.3} Mops/s  (seeks {seeks}, local restarts {restarts})"
        );
        cells.push(json::cell(
            "contended_throughput",
            Json::obj([
                ("workload", Json::from(Workload::WRITE_DOMINATED.name)),
                ("restart", Json::from(label)),
                ("threads", Json::from(contended_threads)),
                ("key_range", Json::from(contended_range)),
                ("secs", Json::Num(secs)),
                ("seed", Json::from(seed)),
            ]),
            Json::obj([
                ("mops", Json::Num(mops)),
                ("ops", Json::from(ops)),
                ("seeks", Json::from(seeks)),
                ("local_restarts", Json::from(restarts)),
            ]),
        ));
    }

    println!("== latency percentiles (1 thread, mixed, {latency_ops} ops) ==");
    for api in [Api::PerOpPin, Api::Handle] {
        let hist = latency_hist(api, key_range, latency_ops, seed);
        let (p50, p99, p999) = (
            hist.percentile(50.0),
            hist.percentile(99.0),
            hist.percentile(99.9),
        );
        println!(
            "  {:<10} p50 {p50} ns, p99 {p99} ns, p99.9 {p999} ns",
            api.label()
        );
        cells.push(json::cell(
            "latency",
            Json::obj([
                ("workload", Json::from(Workload::MIXED.name)),
                ("api", Json::from(api.label())),
                ("threads", Json::Int(1)),
                ("key_range", Json::from(key_range)),
                ("ops", Json::from(latency_ops)),
                ("seed", Json::from(seed)),
            ]),
            Json::obj([
                ("p50_ns", Json::from(p50)),
                ("p99_ns", Json::from(p99)),
                ("p999_ns", Json::from(p999)),
                ("mean_ns", Json::Num(hist.mean())),
                ("max_ns", Json::from(hist.max())),
            ]),
        ));
    }

    println!("== Table-1 exact counts ==");
    let mut table1_ok = true;
    for api in [Api::PerOpPin, Api::Handle] {
        let (ia, da, iat, dat) = table1_counts(api);
        let ok = ia == 2.0 && da == 0.0 && iat == 1.0 && dat == 3.0;
        table1_ok &= ok;
        println!(
            "  {:<10} insert {ia:.2} allocs / {iat:.2} atomics, delete {da:.2} allocs / {dat:.2} atomics  [{}]",
            api.label(),
            if ok { "ok" } else { "REGRESSED" },
        );
        cells.push(json::cell(
            "table1_exact",
            Json::obj([
                ("api", Json::from(api.label())),
                ("tag_mode", Json::from(format!("{:?}", TagMode::FetchOr))),
            ]),
            Json::obj([
                ("insert_allocs", Json::Num(ia)),
                ("delete_allocs", Json::Num(da)),
                ("insert_atomics", Json::Num(iat)),
                ("delete_atomics", Json::Num(dat)),
                ("ok", Json::Bool(ok)),
            ]),
        ));
    }

    // The PR 4 ablation: identical insert-heavy handle cells, the only
    // difference being `TreeConfig::pool`. Pool-on reuses grace-period-
    // expired nodes instead of round-tripping the global allocator, so
    // it must at least hold the line; the mixed cells record the steady
    // hit rate a balanced workload sustains.
    println!("== pool ablation (1 thread, handle, key range {key_range}, median of {REPEATS}) ==");
    let mut pool_gate_ok = true;
    let mut insert_heavy = [0.0f64; 2]; // [pool-off, pool-on] Mops/s
    for workload in [Workload::WRITE_DOMINATED, Workload::MIXED] {
        for pool_on in [false, true] {
            let pool = if pool_on {
                PoolConfig::default()
            } else {
                PoolConfig::disabled()
            };
            let config = TreeConfig::default().with_pool(pool);
            let mut runs: Vec<(f64, u64, MetricsSnapshot)> = (0..REPEATS)
                .map(|_| single_thread_mops(Api::Handle, config, workload, key_range, secs, seed))
                .collect();
            runs.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (mops, ops, snap) = runs[REPEATS / 2];
            println!(
                "  {:<24} pool={:<4} {mops:.3} Mops/s  (pool_hits {}, recycled {})",
                workload.name,
                if pool_on { "on" } else { "off" },
                snap.pool.hits,
                snap.pool.recycled,
            );
            if workload.name == Workload::WRITE_DOMINATED.name {
                insert_heavy[pool_on as usize] = mops;
            }
            if pool_on && workload.name == Workload::MIXED.name && snap.pool.hits == 0 {
                eprintln!("error: mixed pool-on cell recorded zero pool hits — recycling is dead");
                pool_gate_ok = false;
            }
            cells.push(json::cell(
                "pool_ablation",
                Json::obj([
                    ("workload", Json::from(workload.name)),
                    ("api", Json::from(Api::Handle.label())),
                    ("pool", Json::from(if pool_on { "on" } else { "off" })),
                    ("pool_capacity", Json::from(pool.capacity)),
                    ("threads", Json::Int(1)),
                    ("key_range", Json::from(key_range)),
                    ("secs", Json::Num(secs)),
                    ("seed", Json::from(seed)),
                    ("repeats", Json::from(REPEATS)),
                ]),
                Json::obj([
                    ("mops", Json::Num(mops)),
                    ("ops", Json::from(ops)),
                    ("obs", snapshot_json(&snap)),
                ]),
            ));
        }
    }
    pool_gate_ok &= check_pool_gate(insert_heavy[0], insert_heavy[1]);

    let path = std::path::Path::new(&out_path);
    json::write_bench_file(path, &cells).expect("write bench json");
    println!("wrote {} cells to {}", cells.len(), path.display());

    let baseline_ok = check_against_baseline(&mixed_mops);

    if !pool_gate_ok {
        eprintln!("error: pool ablation gate failed");
        std::process::exit(1);
    }
    if !table1_ok {
        eprintln!(
            "error: Table-1 exact counts regressed (expected insert 2 allocs/1 CAS, delete 0 allocs/3 atomics)"
        );
        std::process::exit(1);
    }
    if !baseline_ok {
        std::process::exit(1);
    }
}

/// The pool ablation gate: pool-on must not trail pool-off on the
/// insert-heavy cell by more than `NMBST_POOL_TOLERANCE` (relative,
/// default 0.10). The pool exists to *win* this cell; the tolerance
/// only absorbs scheduler jitter on shared single-core runners, not a
/// real regression.
fn check_pool_gate(off_mops: f64, on_mops: f64) -> bool {
    let tolerance = std::env::var("NMBST_POOL_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.10);
    let floor = off_mops * (1.0 - tolerance);
    let pass = on_mops >= floor;
    println!(
        "== pool gate (tolerance {:.0}%) ==\n  insert-heavy pool-on {on_mops:.3} Mops/s vs pool-off {off_mops:.3} (floor {floor:.3})  [{}]",
        tolerance * 100.0,
        if pass { "ok" } else { "REGRESSED" },
    );
    if !pass {
        eprintln!(
            "error: pool-on insert-heavy throughput trails pool-off by more than {:.1}%",
            tolerance * 100.0
        );
    }
    pass
}

/// The throughput regression gate: compares this run's mixed-workload
/// single-thread cells against the bench file named by
/// `NMBST_BASELINE_JSON` (no-op when unset). Tolerance is relative, from
/// `NMBST_PERF_TOLERANCE` (default 0.03 = 3%, the observability budget).
fn check_against_baseline(mixed_mops: &[(&'static str, f64)]) -> bool {
    let Some(baseline_path) = std::env::var("NMBST_BASELINE_JSON")
        .ok()
        .filter(|p| !p.is_empty())
    else {
        return true;
    };
    let tolerance = std::env::var("NMBST_PERF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.03);
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: cannot parse baseline {baseline_path}: {e}");
            return false;
        }
    };
    let cells = baseline
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or_default();
    let baseline_mops = |api: &str| -> Option<f64> {
        cells.iter().find_map(|c| {
            let cfg = c.get("config")?;
            (c.get("bench")?.as_str()? == "single_thread_throughput"
                && cfg.get("workload")?.as_str()? == Workload::MIXED.name
                && cfg.get("api")?.as_str()? == api)
                .then(|| c.get("metrics")?.get("mops")?.as_f64())
                .flatten()
        })
    };

    println!(
        "== baseline gate ({baseline_path}, tolerance {:.0}%) ==",
        tolerance * 100.0
    );
    let mut ok = true;
    for &(api, current) in mixed_mops {
        let Some(base) = baseline_mops(api) else {
            println!("  {api:<10} no baseline cell — skipped");
            continue;
        };
        let floor = base * (1.0 - tolerance);
        let pass = current >= floor;
        ok &= pass;
        println!(
            "  {api:<10} {current:.3} Mops/s vs baseline {base:.3} (floor {floor:.3})  [{}]",
            if pass { "ok" } else { "REGRESSED" },
        );
        if !pass {
            eprintln!(
                "error: mixed-workload throughput ({api}) regressed more than {:.1}% vs {baseline_path}",
                tolerance * 100.0
            );
        }
    }
    ok
}
