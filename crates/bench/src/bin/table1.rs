//! Regenerates **Table 1** of the paper: objects allocated and atomic
//! instructions executed per modify operation, in the absence of
//! contention and with no memory reclamation.
//!
//! ```text
//! cargo run --release -p nmbst-bench --bin table1
//! ```
//!
//! The `nmbst-bench` crate enables the `instrument` features, so the
//! counters are live. The paper's expected values are printed alongside
//! the measurements; the same numbers are asserted exactly in
//! `tests/table1_counts.rs`.

use nmbst_harness::table1::{render_table1, table1_rows};

fn main() {
    let rows = table1_rows();
    println!("Table 1 — measured per-operation costs (uncontended):\n");
    println!("{}", render_table1(&rows));
    println!("Paper's Table 1 for reference:");
    println!("  Ellen et al.     : insert 4 objects / 3 atomics, delete 1 object  / 4 atomics");
    println!(
        "  Howley & Jones   : insert 2 objects / 3 atomics, delete 1 object  / up to 9 atomics"
    );
    println!("  This work (NM)   : insert 2 objects / 1 atomic,  delete 0 objects / 3 atomics");
}
