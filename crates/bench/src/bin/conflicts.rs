//! Conflict profile: atomic instructions per *completed* operation as
//! contention rises — the paper's §5 mechanism claims, measured.
//!
//! §5 argues NM wins because (a) it executes fewer atomics per modify
//! op, (b) its contention window is smaller so conflicts (which cost
//! retries, i.e. extra atomics) are rarer, and (c) one splice can clean
//! up several deletes. All three are visible in instruction *counts*,
//! which — unlike wall-clock throughput — do not need a 64-core testbed
//! to measure meaningfully.
//!
//! ```text
//! NMBST_THREADS=1,2,4,8 cargo run --release -p nmbst-bench --bin conflicts
//! ```

use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
use nmbst_bench::SweepConfig;
use nmbst_harness::adapter::{ConcurrentSet, NmLeaky};
use nmbst_harness::report::Table;
use nmbst_harness::rng::XorShift64Star;
use nmbst_harness::{prepopulate, Workload};
use std::sync::Mutex;

const OPS_PER_THREAD: u64 = 100_000;
const KEY_RANGE: u64 = 1_000; // small: the paper's high-contention row

/// What to read from the instrumentation counters.
#[derive(Clone, Copy, PartialEq)]
enum Metric {
    NmAtomics,
    BaselineCas,
    BaselineLocks,
}

/// Runs write-dominated churn and returns (metric per op, NM-only:
/// nodes unlinked per splice or 0).
fn profile<S: ConcurrentSet>(threads: usize, metric: Metric) -> (f64, f64) {
    let set = S::make();
    prepopulate(&set, KEY_RANGE, 0x5EED);
    let totals = Mutex::new((0u64, 0u64, 0u64)); // metric, splices, unlinked
    std::thread::scope(|s| {
        for t in 0..threads {
            let set = &set;
            let totals = &totals;
            s.spawn(move || {
                nmbst::stats::reset();
                nmbst_baselines::stats::reset();
                let nm_before = nmbst::stats::snapshot();
                let base_before = nmbst_baselines::stats::snapshot();
                let w = Workload::WRITE_DOMINATED;
                let mut rng = XorShift64Star::from_stream(0xC0DE, t as u64);
                for _ in 0..OPS_PER_THREAD {
                    let key = 1 + rng.next_bounded(KEY_RANGE);
                    match w.pick(&mut rng) {
                        nmbst_harness::OpKind::Insert => {
                            std::hint::black_box(set.insert(key));
                        }
                        _ => {
                            std::hint::black_box(set.remove(key));
                        }
                    }
                }
                let nm = nmbst::stats::snapshot().since(&nm_before);
                let base = nmbst_baselines::stats::snapshot().since(&base_before);
                let mut g = totals.lock().unwrap();
                g.0 += match metric {
                    Metric::NmAtomics => nm.atomics(),
                    Metric::BaselineCas => base.cas,
                    Metric::BaselineLocks => base.locks,
                };
                g.1 += nm.splices;
                g.2 += nm.unlinked;
            });
        }
    });
    let (atomics, splices, unlinked) = *totals.lock().unwrap();
    let per_op = atomics as f64 / (threads as u64 * OPS_PER_THREAD) as f64;
    let chain = if splices > 0 {
        unlinked as f64 / splices as f64
    } else {
        0.0
    };
    (per_op, chain)
}

fn main() {
    let cfg = SweepConfig::from_env();
    println!(
        "conflict profile: write-dominated, {KEY_RANGE} keys, {OPS_PER_THREAD} ops/thread\n\
         (atomic RMW instructions per completed operation; paper §5)\n"
    );
    let mut table = Table::new(vec![
        "threads",
        "NM atomics/op",
        "EFRB atomics/op",
        "HJ atomics/op",
        "BCCO locks/op",
        "NM unlinked/splice",
    ]);
    for &t in &cfg.threads {
        let (nm, chain) = profile::<NmLeaky>(t, Metric::NmAtomics);
        let (efrb, _) = profile::<EfrbTree>(t, Metric::BaselineCas);
        let (hj, _) = profile::<HjTree>(t, Metric::BaselineCas);
        let (bcco, _) = profile::<BccoTree>(t, Metric::BaselineLocks);
        table.push_row(vec![
            t.to_string(),
            format!("{nm:.3}"),
            format!("{efrb:.3}"),
            format!("{hj:.3}"),
            format!("{bcco:.3}"),
            format!("{chain:.3}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: NM's column stays lowest and grows slowest;\n\
         unlinked/splice > 2.0 indicates chain removals (Figure 2)."
    );
}
