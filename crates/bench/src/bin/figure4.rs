//! Regenerates **Figure 4** of the paper: throughput of NM-BST vs
//! BCCO-BST vs EFRB-BST vs HJ-BST across key-space sizes (rows),
//! workload mixes (columns) and thread counts (x-axis).
//!
//! ```text
//! NMBST_SECS=30 NMBST_RUNS=3 NMBST_THREADS=1,2,4,8,16,32,64,128,256 \
//! NMBST_KEYS=1000,10000,100000,1000000 \
//!     cargo run --release -p nmbst-bench --bin figure4
//! ```
//!
//! Prints one table per (key range, workload) panel and a combined CSV
//! at the end for plotting. All implementations run with no memory
//! reclamation (NM uses the `Leaky` reclaimer), matching §4's setup.

use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree};
use nmbst_bench::SweepConfig;
use nmbst_harness::adapter::{ConcurrentSet, NmLeaky};
use nmbst_harness::chart::{render_chart, Series};
use nmbst_harness::report::{fmt_mops, Table};
use nmbst_harness::{mean_mops, BenchConfig, Workload};

fn cell<S: ConcurrentSet>(cfg: &SweepConfig, threads: usize, keys: u64, w: Workload) -> f64 {
    let bench = BenchConfig {
        threads,
        key_range: keys,
        workload: w,
        duration: cfg.duration,
        seed: cfg.seed,
        dist: cfg.dist,
    };
    mean_mops::<S>(&bench, cfg.runs)
}

fn main() {
    let cfg = SweepConfig::from_env();
    eprintln!(
        "figure4 sweep: {:?}s/cell x{} runs, threads {:?}, keys {:?}",
        cfg.duration.as_secs_f64(),
        cfg.runs,
        cfg.threads,
        cfg.key_ranges
    );

    let mut csv = Table::new(vec![
        "key_range",
        "workload",
        "threads",
        "algorithm",
        "mops",
    ]);

    for &keys in &cfg.key_ranges {
        for w in Workload::FIGURE4 {
            println!("\n== key range {keys} | {} ==", w.name);
            let mut table = Table::new(vec!["threads", "NM-BST", "BCCO-BST", "EFRB-BST", "HJ-BST"]);
            let mut series: Vec<Series> = ["NM-BST", "BCCO-BST", "EFRB-BST", "HJ-BST"]
                .iter()
                .map(|l| Series {
                    label: l.to_string(),
                    values: Vec::new(),
                })
                .collect();
            for &t in &cfg.threads {
                let nm = cell::<NmLeaky>(&cfg, t, keys, w);
                let bcco = cell::<BccoTree>(&cfg, t, keys, w);
                let efrb = cell::<EfrbTree>(&cfg, t, keys, w);
                let hj = cell::<HjTree>(&cfg, t, keys, w);
                for (name, v) in [
                    ("NM-BST", nm),
                    ("BCCO-BST", bcco),
                    ("EFRB-BST", efrb),
                    ("HJ-BST", hj),
                ] {
                    csv.push_row(vec![
                        keys.to_string(),
                        w.name.to_string(),
                        t.to_string(),
                        name.to_string(),
                        format!("{v:.4}"),
                    ]);
                }
                table.push_row(vec![
                    t.to_string(),
                    fmt_mops(nm),
                    fmt_mops(bcco),
                    fmt_mops(efrb),
                    fmt_mops(hj),
                ]);
                for (s, v) in series.iter_mut().zip([nm, bcco, efrb, hj]) {
                    s.values.push(v);
                }
            }
            println!("{}", table.render());
            println!("(Mops/s; higher is better)\n");
            let x_labels: Vec<String> = cfg.threads.iter().map(|t| t.to_string()).collect();
            println!(
                "{}",
                render_chart(
                    &format!("Mops/s vs threads — {keys} keys, {}", w.name),
                    &x_labels,
                    &series,
                    12
                )
            );
        }
    }

    println!("\n== combined CSV ==");
    print!("{}", csv.to_csv());
}
