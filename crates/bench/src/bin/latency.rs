//! Per-operation latency percentiles for every implementation — a
//! complement to Figure 4's throughput view (the paper reports only
//! throughput; tail latency is where helping protocols and lock
//! convoys show their character).
//!
//! ```text
//! NMBST_THREADS=1,4 NMBST_KEYS=10000 \
//!     cargo run --release -p nmbst-bench --bin latency
//! ```

use nmbst_baselines::{bcco::BccoTree, efrb::EfrbTree, hj::HjTree, locked::LockedBTreeSet};
use nmbst_bench::SweepConfig;
use nmbst_harness::adapter::{ConcurrentSet, NmEbr, NmLeaky};
use nmbst_harness::report::Table;
use nmbst_harness::{run_latency, BenchConfig, Workload};

const OPS_PER_THREAD: u64 = 50_000;

fn row<S: ConcurrentSet>(cfg: &BenchConfig, table: &mut Table) {
    let res = run_latency::<S>(cfg, OPS_PER_THREAD);
    let h = &res.hist;
    table.push_row(vec![
        res.algorithm.to_string(),
        format!("{:.2}", h.mean() / 1e3),
        format!("{:.2}", h.percentile(50.0) as f64 / 1e3),
        format!("{:.2}", h.percentile(99.0) as f64 / 1e3),
        format!("{:.2}", h.percentile(99.9) as f64 / 1e3),
        format!("{:.2}", h.max() as f64 / 1e3),
    ]);
}

fn main() {
    let cfg = SweepConfig::from_env();
    for &keys in &cfg.key_ranges {
        for workload in [Workload::MIXED, Workload::WRITE_DOMINATED] {
            for &threads in &cfg.threads {
                let bench = BenchConfig {
                    threads,
                    key_range: keys,
                    workload,
                    duration: cfg.duration, // unused by run_latency
                    seed: cfg.seed,
                    dist: cfg.dist,
                };
                println!(
                    "\n== latency (us) | {} keys | {} | {} threads | {} ops/thread ==",
                    keys, workload.name, threads, OPS_PER_THREAD
                );
                let mut table = Table::new(vec!["algorithm", "mean", "p50", "p99", "p99.9", "max"]);
                row::<NmLeaky>(&bench, &mut table);
                row::<NmEbr>(&bench, &mut table);
                row::<EfrbTree>(&bench, &mut table);
                row::<HjTree>(&bench, &mut table);
                row::<BccoTree>(&bench, &mut table);
                row::<LockedBTreeSet>(&bench, &mut table);
                println!("{}", table.render());
            }
        }
    }
}
