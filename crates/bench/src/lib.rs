//! Shared configuration plumbing for the benchmark binaries and benches.
//!
//! Every knob is an environment variable so `cargo bench` / `cargo run`
//! stay argument-free:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `NMBST_SECS` | measured seconds per cell | `1.0` |
//! | `NMBST_RUNS` | runs averaged per cell | `1` |
//! | `NMBST_THREADS` | comma list of thread counts | `1,2,4,8` |
//! | `NMBST_KEYS` | comma list of key ranges | `1000,10000,100000` |
//! | `NMBST_SEED` | workload seed | `0x5EED` |
//! | `NMBST_ZIPF` | Zipf theta (unset = uniform, the paper's setting) | unset |
//!
//! The paper's full grid is `NMBST_SECS=30 NMBST_RUNS=3`
//! `NMBST_THREADS=1,2,4,8,16,32,64,128,256`
//! `NMBST_KEYS=1000,10000,100000,1000000`.

use nmbst_harness::KeyDist;
use std::time::Duration;

/// Parses a comma-separated list env var into numbers.
fn parse_list(name: &str, default: &[u64]) -> Vec<u64> {
    match std::env::var(name) {
        Ok(s) => s
            .split(',')
            .map(|x| {
                x.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad {name} entry: {x:?}"))
            })
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Sweep configuration read from the environment.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Measured duration per cell.
    pub duration: Duration,
    /// Runs averaged per cell.
    pub runs: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Key ranges to sweep.
    pub key_ranges: Vec<u64>,
    /// Workload seed.
    pub seed: u64,
    /// Key distribution (uniform unless `NMBST_ZIPF` is set).
    pub dist: KeyDist,
}

impl SweepConfig {
    /// Reads the sweep configuration from the environment.
    pub fn from_env() -> Self {
        let secs: f64 = std::env::var("NMBST_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        SweepConfig {
            duration: Duration::from_secs_f64(secs),
            runs: std::env::var("NMBST_RUNS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(1),
            threads: parse_list("NMBST_THREADS", &[1, 2, 4, 8])
                .into_iter()
                .map(|t| t as usize)
                .collect(),
            key_ranges: parse_list("NMBST_KEYS", &[1_000, 10_000, 100_000]),
            seed: std::env::var("NMBST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED),
            dist: match std::env::var("NMBST_ZIPF")
                .ok()
                .and_then(|s| s.parse().ok())
            {
                Some(theta) => KeyDist::Zipf(theta),
                None => KeyDist::Uniform,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // Note: assumes the test environment doesn't set NMBST_* vars.
        let c = SweepConfig::from_env();
        assert_eq!(c.runs, 1);
        assert!(!c.threads.is_empty());
        assert!(!c.key_ranges.is_empty());
    }
}
