//! A minimal JSON value model and writer — just enough to emit the
//! workspace's machine-readable bench files (`BENCH_*.json`), with no
//! external dependencies.
//!
//! The stable cell schema shared by every emitter (criterion-lite's
//! `NMBST_BENCH_JSON` mode and the `perf` bin):
//!
//! ```json
//! {
//!   "schema": "nmbst-bench-v1",
//!   "cells": [
//!     { "bench": "<name>", "config": { ... }, "metrics": { ... } }
//!   ]
//! }
//! ```
//!
//! `config` holds the knobs that produced the cell (threads, workload
//! mix, key range, api/policy variant...), `metrics` the measurements
//! (ns/op, Mops/s, percentiles, exact counter values). Future PRs
//! append files with the same schema, forming a perf trajectory.

use std::io::{self, Write};
use std::path::Path;

/// A JSON value. Object keys keep insertion order (stable diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, serialized without a decimal point.
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON text (the subset this module emits: no exponents
    /// beyond what `f64::from_str` accepts, `\uXXXX` escapes limited to
    /// the BMP). Enough to read back `BENCH_*.json` baselines for the
    /// perf regression gate — not a general-purpose parser.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value (`Int` or `Num`) as `f64`, else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, else `None`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counter values in this workspace stay far below 2^63.
        Json::Int(n as i64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The schema tag every bench file carries.
pub const BENCH_SCHEMA: &str = "nmbst-bench-v1";

/// Builds one `{bench, config, metrics}` cell.
pub fn cell(bench: &str, config: Json, metrics: Json) -> Json {
    Json::Obj(vec![
        ("bench".to_string(), Json::from(bench)),
        ("config".to_string(), config),
        ("metrics".to_string(), metrics),
    ])
}

/// Writes a complete bench file (`{"schema": ..., "cells": [...]}`,
/// pretty enough to diff: one cell per line) to `path`.
pub fn write_bench_file(path: &Path, cells: &[Json]) -> io::Result<()> {
    let mut body = String::new();
    body.push_str("{\"schema\":\"");
    body.push_str(BENCH_SCHEMA);
    body.push_str("\",\"cells\":[\n");
    for (i, c) in cells.iter().enumerate() {
        body.push_str(&c.render());
        if i + 1 < cells.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn renders_structures_in_order() {
        let j = Json::obj([
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(j.render(), "{\"b\":1,\"a\":[2,null]}");
    }

    #[test]
    fn cell_has_stable_shape() {
        let c = cell(
            "x",
            Json::obj([("threads", Json::Int(1))]),
            Json::obj([("ns_per_op", Json::Num(10.0))]),
        );
        assert_eq!(
            c.render(),
            "{\"bench\":\"x\",\"config\":{\"threads\":1},\"metrics\":{\"ns_per_op\":10}}"
        );
    }

    #[test]
    fn parse_round_trips_everything_render_emits() {
        let original = Json::obj([
            ("schema", Json::from(BENCH_SCHEMA)),
            (
                "cells",
                Json::Arr(vec![cell(
                    "t",
                    Json::obj([("workload", Json::from("mixed")), ("threads", Json::Int(4))]),
                    Json::obj([
                        ("mops", Json::Num(7.468)),
                        ("ok", Json::Bool(true)),
                        ("note", Json::from("a\"b\\c\n")),
                        ("nan", Json::Null),
                    ]),
                )]),
            ),
        ]);
        let parsed = Json::parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn accessors_navigate_parsed_structure() {
        let j = Json::parse(r#"{"cells":[{"bench":"x","metrics":{"mops":1.5}}]}"#).unwrap();
        let cells = j.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells[0].get("bench").and_then(Json::as_str), Some("x"));
        assert_eq!(
            cells[0]
                .get("metrics")
                .and_then(|m| m.get("mops"))
                .and_then(Json::as_f64),
            Some(1.5)
        );
        assert!(j.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_ints_floats_and_negatives() {
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Num(250.0));
        assert_eq!(
            Json::parse(" [1, 2.0] ").unwrap().as_arr().unwrap().len(),
            2
        );
    }

    #[test]
    fn bench_file_round_trip_shape() {
        let dir = std::env::temp_dir().join("nmbst-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_bench_file(&path, &[cell("a", Json::obj([]), Json::obj([]))]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"nmbst-bench-v1\",\"cells\":["));
        assert!(text.contains("\"bench\":\"a\""));
        assert!(text.trim_end().ends_with("]}"));
        std::fs::remove_file(&path).ok();
    }
}
