//! A minimal JSON value model and writer — just enough to emit the
//! workspace's machine-readable bench files (`BENCH_*.json`), with no
//! external dependencies.
//!
//! The stable cell schema shared by every emitter (criterion-lite's
//! `NMBST_BENCH_JSON` mode and the `perf` bin):
//!
//! ```json
//! {
//!   "schema": "nmbst-bench-v1",
//!   "cells": [
//!     { "bench": "<name>", "config": { ... }, "metrics": { ... } }
//!   ]
//! }
//! ```
//!
//! `config` holds the knobs that produced the cell (threads, workload
//! mix, key range, api/policy variant...), `metrics` the measurements
//! (ns/op, Mops/s, percentiles, exact counter values). Future PRs
//! append files with the same schema, forming a perf trajectory.

use std::io::{self, Write};
use std::path::Path;

/// A JSON value. Object keys keep insertion order (stable diffs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, serialized without a decimal point.
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counter values in this workspace stay far below 2^63.
        Json::Int(n as i64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The schema tag every bench file carries.
pub const BENCH_SCHEMA: &str = "nmbst-bench-v1";

/// Builds one `{bench, config, metrics}` cell.
pub fn cell(bench: &str, config: Json, metrics: Json) -> Json {
    Json::Obj(vec![
        ("bench".to_string(), Json::from(bench)),
        ("config".to_string(), config),
        ("metrics".to_string(), metrics),
    ])
}

/// Writes a complete bench file (`{"schema": ..., "cells": [...]}`,
/// pretty enough to diff: one cell per line) to `path`.
pub fn write_bench_file(path: &Path, cells: &[Json]) -> io::Result<()> {
    let mut body = String::new();
    body.push_str("{\"schema\":\"");
    body.push_str(BENCH_SCHEMA);
    body.push_str("\",\"cells\":[\n");
    for (i, c) in cells.iter().enumerate() {
        body.push_str(&c.render());
        if i + 1 < cells.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\\c\n".into()).render(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn renders_structures_in_order() {
        let j = Json::obj([
            ("b", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(j.render(), "{\"b\":1,\"a\":[2,null]}");
    }

    #[test]
    fn cell_has_stable_shape() {
        let c = cell(
            "x",
            Json::obj([("threads", Json::Int(1))]),
            Json::obj([("ns_per_op", Json::Num(10.0))]),
        );
        assert_eq!(
            c.render(),
            "{\"bench\":\"x\",\"config\":{\"threads\":1},\"metrics\":{\"ns_per_op\":10}}"
        );
    }

    #[test]
    fn bench_file_round_trip_shape() {
        let dir = std::env::temp_dir().join("nmbst-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_bench_file(&path, &[cell("a", Json::obj([]), Json::obj([]))]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"nmbst-bench-v1\",\"cells\":["));
        assert!(text.contains("\"bench\":\"a\""));
        assert!(text.trim_end().ends_with("]}"));
        std::fs::remove_file(&path).ok();
    }
}
