//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, exposing exactly the subset of its API this workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark
//! groups with sample size / warm-up / measurement-time / throughput
//! configuration, `bench_function` / `bench_with_input`, and
//! `Bencher::iter`.
//!
//! Methodology (deliberately simple, but honest): each benchmark is
//! warmed up for the configured warm-up window, then timed over
//! `sample_size` samples, each sample running as many iterations as fit
//! its share of the measurement window (at least one). We report
//! median / mean / min / max ns per iteration and, when a throughput is
//! configured, median elements per second. There is no outlier analysis
//! or statistical regression — this exists so `cargo bench` works in a
//! fully offline build, not to replace criterion's statistics.
//!
//! Command-line behaviour mirrors what cargo sends to `harness = false`
//! bench targets: `--bench` is accepted and ignored, `--test` runs each
//! benchmark for a single iteration (smoke mode, used by CI), any other
//! non-flag argument is a substring filter on benchmark names, and other
//! `--flags` are ignored.

pub mod json;

use json::Json;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable naming a file to which every finished benchmark
/// appends a machine-readable `{bench, config, metrics}` cell (schema
/// [`json::BENCH_SCHEMA`]). Unset or empty: no file is written.
pub const BENCH_JSON_ENV: &str = "NMBST_BENCH_JSON";

/// Cells recorded so far by this process; the sink file is rewritten in
/// full after each cell so a partial run still leaves valid JSON.
static JSON_CELLS: Mutex<Vec<Json>> = Mutex::new(Vec::new());

fn record_json_cell(bench: &str, config: Json, metrics: Json) {
    let Ok(path) = std::env::var(BENCH_JSON_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut cells = JSON_CELLS.lock().unwrap();
    cells.push(json::cell(bench, config, metrics));
    if let Err(e) = json::write_bench_file(std::path::Path::new(&path), &cells) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Top-level harness handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Criterion {
    /// Applies the command-line conventions cargo uses for
    /// `harness = false` bench targets (see module docs).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.smoke = true,
                "--exact" | "--bench" | "--nocapture" => {}
                s if s.starts_with("--") => {
                    // Flags with a value (e.g. `--color always`).
                    if matches!(s, "--color" | "--format" | "--logfile") {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements (operations).
    Elements(u64),
}

/// A benchmark name of the form `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// A group of benchmarks sharing configuration, created by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up window run before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Total timed window, split evenly across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Configures derived throughput reporting for the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = id.into_benchmark_id().render();
        self.run(&name, f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let name = id.into_benchmark_id().render();
        self.run(&name, |b| f(b, input));
    }

    /// Ends the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}

    fn run(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.smoke {
            let mut b = Bencher::smoke();
            f(&mut b);
            println!("{full}: ok (smoke)");
            record_json_cell(
                &full,
                Json::obj([("smoke", Json::Bool(true))]),
                Json::obj([]),
            );
            return;
        }

        // Warm-up: run until the window elapses, and calibrate how many
        // iterations each timed sample should contain.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut b = Bencher::timed(1);
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::timed(iters_per_sample);
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, c| a.partial_cmp(c).unwrap());
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];

        print!(
            "{full}: {} iters/sample, median {}, mean {}, range [{} .. {}]",
            iters_per_sample,
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let elem_per_sec = n as f64 / (median * 1e-9);
            print!(", {:.3} Melem/s", elem_per_sec / 1e6);
        }
        println!();

        let mut config = vec![
            ("sample_size".to_string(), Json::from(self.sample_size)),
            ("iters_per_sample".to_string(), Json::from(iters_per_sample)),
        ];
        let mut metrics = vec![
            ("median_ns".to_string(), Json::Num(median)),
            ("mean_ns".to_string(), Json::Num(mean)),
            ("min_ns".to_string(), Json::Num(min)),
            ("max_ns".to_string(), Json::Num(max)),
        ];
        if let Some(Throughput::Elements(n)) = self.throughput {
            config.push(("elements_per_iter".to_string(), Json::from(n)));
            metrics.push((
                "melem_per_s".to_string(),
                Json::Num(n as f64 / (median * 1e-9) / 1e6),
            ));
        }
        record_json_cell(&full, Json::Obj(config), Json::Obj(metrics));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Names accepted by [`BenchmarkGroup::bench_function`] /
/// [`BenchmarkGroup::bench_with_input`]: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: String::new(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: String::new(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn timed(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    fn smoke() -> Self {
        Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over this sample's iteration count.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's
/// macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            smoke: true,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2))
                .throughput(Throughput::Elements(10));
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1, "smoke mode runs the routine exactly once");
    }

    #[test]
    fn timed_mode_counts_iterations() {
        let mut c = Criterion {
            filter: None,
            smoke: false,
        };
        let counter = std::cell::Cell::new(0u64);
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .warm_up_time(Duration::from_micros(200))
            .measurement_time(Duration::from_micros(400));
        g.bench_with_input(BenchmarkId::new("f", 7), &3u64, |b, &x| {
            b.iter(|| counter.set(counter.get() + x))
        });
        g.finish();
        assert!(counter.get() >= 3, "routine ran at least once per phase");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            smoke: false,
        };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| ran = true));
        g.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        let id = BenchmarkId::new("algo", "50u/64k");
        assert_eq!(id.render(), "algo/50u/64k");
    }
}
