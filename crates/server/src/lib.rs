//! # nmbst-server — the sharded serving tier
//!
//! A from-scratch TCP key-value server over [`nmbst::ShardedMap`]: the
//! "millions of users" leg of the roadmap, built with zero external
//! dependencies (std networking, hand-rolled wire format).
//!
//! Three layers:
//!
//! * [`wire`] — the length-prefixed binary protocol
//!   (GET/INSERT/REMOVE/BATCH/SCAN/METRICS/PING) shared by both sides.
//! * [`Server`] — thread-per-core workers over one shared listener;
//!   each worker drives the store through per-shard pinned handles and
//!   publishes its batched op counts on a sampling tick.
//! * [`Client`] — the blocking client the tests and the replay harness
//!   in `nmbst-harness` use.
//!
//! ```
//! use nmbst_server::{wire::BatchOp, Client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig {
//!     workers: 2,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let mut c = Client::connect(server.addr()).unwrap();
//! c.batch(&[BatchOp::Insert(1, 10), BatchOp::Insert(2, 20)]).unwrap();
//! let (entries, _) = c.scan(0, 100, 0).unwrap();
//! assert_eq!(entries, vec![(1, 10), (2, 20)]);
//! drop(c);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

mod client;
mod conn;
mod server;
mod sys;
pub mod wire;

pub use client::Client;
pub use server::{PhaseHists, Server, ServerConfig, ServerStats, Store};

#[doc(hidden)]
pub use server::testing;
