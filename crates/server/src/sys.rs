//! Raw Linux syscall bindings for the reactor: `epoll`, `eventfd`, and
//! `fcntl`, declared by hand to keep the serving tier's
//! zero-external-deps rule (no `libc` crate).
//!
//! Scope is deliberately tiny — exactly the five entry points the
//! per-worker reactors need — and everything unsafe is wrapped in two
//! RAII owners ([`Epoll`], [`EventFd`]) plus one free function
//! ([`set_nonblocking`]). Numeric constants are the x86-64/aarch64
//! Linux ABI values (identical on both); the `#[repr(C, packed)]` on
//! [`EpollEvent`] matches the kernel's x86-64 layout, which is what
//! glibc and the `libc` crate declare on every 64-bit target.

use std::io;
use std::os::fd::RawFd;

// epoll_ctl ops.
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Peer hung up (`EPOLLHUP`) — always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// Peer closed its write half (`EPOLLRDHUP`); requested so half-closed
/// connections wake the reactor instead of idling.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// One readiness record, kernel layout. Packed because the x86-64 ABI
/// declares `epoll_event` with `__attribute__((packed))` — without it
/// the u64 data field would be 8-aligned and every event past the first
/// in a batch would be misread.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// Caller's registration token, returned verbatim.
    pub data: u64,
}

impl EpollEvent {
    /// An empty record for pre-sizing `epoll_wait` buffers.
    pub const ZERO: EpollEvent = EpollEvent { events: 0, data: 0 };
}

unsafe extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Puts a file descriptor into non-blocking mode (`O_NONBLOCK` via
/// `fcntl`). Used on the shared listener and every accepted stream;
/// `TcpStream::set_nonblocking` exists but going through the one
/// declared `fcntl` keeps the syscall surface auditable in this file.
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // Safety: F_GETFL/F_SETFL on a caller-owned fd; no memory passed.
    let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
    cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

/// An owned epoll instance. Registration tokens are bare `u64`s; the
/// reactor uses slab slot indices plus sentinel values for the listener
/// and the wake eventfd.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // Safety: plain syscall, no pointers.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // Safety: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for level-triggered readiness with `token`
    /// returned in every event.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set. Errors are surfaced but the
    /// reactor treats a failed DEL on a closing fd as best-effort.
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        // A null event pointer is allowed for DEL on Linux ≥ 2.6.9.
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`;
    /// returns how many records were written. EINTR retries internally —
    /// the reactor's tick cadence doesn't care about signals.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // Safety: `events` is a valid, writable, correctly-sized
            // buffer for up to `events.len()` records.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // Safety: we own the fd and drop is the only closer.
        unsafe { close(self.fd) };
    }
}

/// An owned eventfd used as the reactor wakeup: shutdown (and
/// cross-worker connection handoff) write to it, which makes the
/// worker's `epoll_wait` return immediately — replacing the old
/// dummy-`TcpStream::connect` shutdown hack.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a non-blocking close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<EventFd> {
        // Safety: plain syscall, no pointers.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The raw descriptor, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the eventfd counter, waking any epoll waiting on it.
    /// Infallible in practice (the counter would need 2^64-1 unconsumed
    /// wakes to block); errors are swallowed because the caller — a
    /// shutdown path — has no better recourse than the epoll timeout.
    pub fn signal(&self) {
        let one: u64 = 1;
        // Safety: writing 8 bytes from a live stack value.
        unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
    }

    /// Consumes all pending signals (the counter resets to 0). Returns
    /// true if at least one signal was pending.
    pub fn drain(&self) -> bool {
        let mut buf = [0u8; 8];
        // Safety: reading up to 8 bytes into a live stack buffer.
        let n = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        n == 8
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // Safety: we own the fd and drop is the only closer.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    /// The bindings round-trip against a real socket pair: readiness is
    /// reported level-triggered with the registration token, MOD changes
    /// the interest set, DEL silences it, and the eventfd wakes a
    /// blocking wait.
    #[test]
    fn epoll_reports_readiness_with_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        set_nonblocking(rx.as_raw_fd()).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(rx.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing to read yet: a zero-timeout wait returns no events.
        let mut evs = [EpollEvent::ZERO; 8];
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);

        tx.write_all(b"x").unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let (events, data) = (evs[0].events, evs[0].data);
        assert_eq!(data, 42, "token returned verbatim");
        assert!(events & EPOLLIN != 0);

        // Level-triggered: the byte is still unread, so it reports again.
        let n = ep.wait(&mut evs, 0).unwrap();
        assert_eq!(n, 1, "level-triggered readiness persists");

        // MOD to write-interest only: the pending byte stops reporting,
        // and an idle socket's send buffer is immediately writable.
        ep.modify(rx.as_raw_fd(), EPOLLOUT, 43).unwrap();
        let n = ep.wait(&mut evs, 1000).unwrap();
        assert_eq!(n, 1);
        let (events, data) = (evs[0].events, evs[0].data);
        assert_eq!(data, 43);
        assert!(events & EPOLLOUT != 0);
        assert!(events & EPOLLIN == 0);

        ep.del(rx.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0, "DEL silences the fd");
    }

    /// eventfd wakes an epoll_wait from another thread, and drain()
    /// resets it so it doesn't re-report.
    #[test]
    fn eventfd_wakes_and_drains() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.fd(), EPOLLIN, u64::MAX).unwrap();

        let mut evs = [EpollEvent::ZERO; 4];
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);
        assert!(!efd.drain(), "no signal pending");

        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                efd.signal();
            });
            let n = ep.wait(&mut evs, 5000).unwrap();
            assert_eq!(n, 1);
            let data = evs[0].data;
            assert_eq!(data, u64::MAX);
        });

        assert!(efd.drain(), "signal consumed");
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0, "drained: no re-report");
        // Two signals coalesce into one readable counter.
        efd.signal();
        efd.signal();
        assert_eq!(ep.wait(&mut evs, 1000).unwrap(), 1);
        assert!(efd.drain());
        assert!(!efd.drain());
    }
}
