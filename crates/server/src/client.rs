//! A blocking client for the wire protocol — what the tests and the
//! replay harness drive. One TCP connection; the single-op methods are
//! strict request/response, while [`Client::pipeline`] keeps a bounded
//! window of frames in flight and matches responses by order. Reused
//! encode/decode buffers, no allocations per request beyond the reply's
//! own payload.

use crate::wire::{
    read_frame, write_frame, BatchOp, BatchReply, MetricsFormat, Request, Response, WireError,
};
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an [`crate::Server`].
///
/// Not thread-safe by design — like a [`nmbst::MapHandle`], give each
/// client thread its own. See [`crate::Server`] for a usage example.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    out: Vec<u8>,
    body: Vec<u8>,
}

impl Client {
    /// Connects (TCP, `TCP_NODELAY`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            out: Vec::with_capacity(256),
            body: Vec::with_capacity(256),
        })
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        self.out.clear();
        req.encode(&mut self.out);
        let op = self.out[0];
        write_frame(&mut self.writer, &self.out)?;
        self.writer.flush()?;
        if !read_frame(&mut self.reader, &mut self.body)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(Response::decode(op, &self.body)?)
    }

    fn unexpected(resp: Response) -> io::Error {
        match resp {
            Response::Err(msg) => io::Error::other(format!("server error: {msg}")),
            other => WireError(format!("mismatched response {other:?}")).into(),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: &u64) -> io::Result<Option<u64>> {
        match self.round_trip(&Request::Get(*key))? {
            Response::Get(v) => Ok(v),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Insert; `Ok(true)` iff the key was added (duplicates rejected,
    /// like [`nmbst::NmTreeMap::insert`]).
    pub fn insert(&mut self, key: u64, value: u64) -> io::Result<bool> {
        match self.round_trip(&Request::Insert(key, value))? {
            Response::Insert(added) => Ok(added),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Remove; `Ok(true)` iff the key was present.
    pub fn remove(&mut self, key: &u64) -> io::Result<bool> {
        match self.round_trip(&Request::Remove(*key))? {
            Response::Remove(removed) => Ok(removed),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Runs `ops` server-side in one frame; replies line up with `ops`.
    pub fn batch(&mut self, ops: &[BatchOp]) -> io::Result<Vec<BatchReply>> {
        match self.round_trip(&Request::Batch(ops.to_vec()))? {
            Response::Batch(replies) if replies.len() == ops.len() => Ok(replies),
            Response::Batch(replies) => {
                Err(WireError(format!("{} replies for {} ops", replies.len(), ops.len())).into())
            }
            other => Err(Self::unexpected(other)),
        }
    }

    /// Ordered scan of `lo..=hi`, at most `max` entries (0 = unlimited).
    /// Returns the ascending entries and whether the cap truncated them.
    pub fn scan(&mut self, lo: u64, hi: u64, max: u32) -> io::Result<(Vec<(u64, u64)>, bool)> {
        match self.round_trip(&Request::Scan { lo, hi, max })? {
            Response::Scan { entries, truncated } => Ok((entries, truncated)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Scrapes the server's metrics in the requested format.
    pub fn metrics(&mut self, format: MetricsFormat) -> io::Result<String> {
        match self.round_trip(&Request::Metrics(format))? {
            Response::Metrics(text) => Ok(text),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Fetches the server's slow-op log: tree-origin and server-origin
    /// records merged, slowest first, at most `max` (0 = all retained).
    pub fn slowlog(&mut self, max: u32) -> io::Result<Vec<nmbst::obs::SlowOp>> {
        match self.round_trip(&Request::SlowLog { max })? {
            Response::SlowLog(records) => Ok(records),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Default in-flight window for [`Client::pipeline`]: deep enough
    /// to hide a round trip entirely, shallow enough that the client's
    /// unread responses stay far below the server's write budget.
    pub const PIPELINE_WINDOW: usize = 32;

    /// Sends `reqs` pipelined — up to [`Client::PIPELINE_WINDOW`]
    /// frames in flight — and returns the responses in request order.
    ///
    /// The protocol carries no request IDs; ordering is the contract
    /// (the server executes and buffers responses strictly in arrival
    /// order), so response `i` answers `reqs[i]`. Server-side `Err`
    /// responses are returned in place, not raised — but an `Err`
    /// response also closes the connection server-side, so a shorter
    /// `Vec` than `reqs` is impossible: any frames after the fault
    /// surface as an I/O error here.
    pub fn pipeline(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        self.pipeline_with_window(reqs, Self::PIPELINE_WINDOW)
    }

    /// [`Client::pipeline`] with an explicit in-flight window (clamped
    /// to at least 1; a window of 1 degenerates to the blocking
    /// one-at-a-time path). The window bound is what makes pipelining
    /// deadlock-free: the client never has more than `window` unread
    /// responses outstanding, so it cannot fill its own receive buffer
    /// (and the server's write budget) while still trying to write.
    pub fn pipeline_with_window(
        &mut self,
        reqs: &[Request],
        window: usize,
    ) -> io::Result<Vec<Response>> {
        let window = window.max(1);
        let mut responses = Vec::with_capacity(reqs.len());
        let mut sent = 0usize;
        while responses.len() < reqs.len() {
            // Top up the window, then flush so the server sees the
            // whole burst in as few segments as possible.
            if sent < reqs.len() && sent - responses.len() < window {
                while sent < reqs.len() && sent - responses.len() < window {
                    self.out.clear();
                    reqs[sent].encode(&mut self.out);
                    write_frame(&mut self.writer, &self.out)?;
                    sent += 1;
                }
                self.writer.flush()?;
            }
            // Drain one response; its opcode is the oldest unanswered
            // request's (in-order matching).
            if !read_frame(&mut self.reader, &mut self.body)? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-pipeline",
                ));
            }
            let op = reqs[responses.len()].opcode();
            responses.push(Response::decode(op, &self.body)?);
        }
        Ok(responses)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.reader.peer_addr().ok())
            .finish_non_exhaustive()
    }
}
