//! Per-connection state machine for the epoll reactors: incremental
//! frame assembly on the read side, a bounded buffered queue on the
//! write side, and the backpressure valve between them.
//!
//! A [`Conn`] owns a non-blocking `TcpStream` and two byte buffers. The
//! reactor drives it with three calls per readiness event:
//!
//! 1. [`Conn::fill`] — read until `WouldBlock`/EOF into the assembly
//!    buffer.
//! 2. [`Conn::next_frame`] — pop complete frames one at a time (the
//!    pipelining loop: a single `fill` may have delivered many frames,
//!    or the tail of one and the head of the next).
//! 3. [`Conn::flush`] — push the write buffer out until `WouldBlock`
//!    or empty.
//!
//! Responses are appended with [`Conn::queue_frame`] in the order their
//! requests were parsed, which is what makes pipelining safe: the
//! protocol has no request IDs, so FIFO execution + FIFO buffering *is*
//! the ordering guarantee.
//!
//! ## Backpressure invariant
//!
//! The reactor stops parsing (and therefore executing) frames for a
//! connection whose write buffer holds at least `write_budget` bytes —
//! see [`Conn::should_pause`]. Reads pause with parsing, so a client
//! that pipelines faster than it drains responses is throttled by its
//! own TCP window instead of ballooning server memory. The buffer can
//! still overshoot the budget by one response (a SCAN reply is checked
//! *after* it is queued, not split), so the budget is a watermark, not
//! a hard cap; `MAX_FRAME` bounds the overshoot.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::wire::{split_frame, FrameSplit};

/// Read chunk size. One syscall per chunk; big enough that a burst of
/// pipelined GETs (17-byte frames) arrives in one read.
const READ_CHUNK: usize = 64 * 1024;

/// What [`Conn::fill`] observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillOutcome {
    /// Socket drained to `WouldBlock`; connection still open.
    Open,
    /// Peer closed its write half (read returned 0). Any buffered bytes
    /// are still parseable; no more will arrive.
    Eof,
}

/// What [`Conn::next_frame`] produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum NextFrame {
    /// A complete frame body (length prefix stripped).
    Frame(Vec<u8>),
    /// No complete frame buffered; wait for more bytes.
    Pending,
    /// The peer announced a frame above `MAX_FRAME`. Unrecoverable:
    /// a length-prefixed stream cannot resync past a bad length, so
    /// the connection must be closed without a reply.
    Oversized,
}

/// One client connection owned by a reactor worker.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Partial-frame assembly buffer: bytes read but not yet consumed
    /// as frames. `rpos` is the parse cursor; consumed bytes are
    /// compacted away between readiness events, not on every frame.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Not-yet-written response bytes. Frames are appended whole;
    /// `flush` drains from the front.
    wbuf: VecDeque<u8>,
    /// Reads are paused by backpressure: the fd's epoll interest has
    /// EPOLLIN removed until the write buffer drains below half budget.
    pub(crate) read_paused: bool,
    /// The peer sent EOF (or a fatal error): finish flushing `wbuf`,
    /// then close. Set by ERR-and-close paths too.
    pub(crate) close_after_flush: bool,
    /// The epoll interest currently registered for this fd, so the
    /// reactor only issues `EPOLL_CTL_MOD` on actual changes.
    pub(crate) interest: u32,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: VecDeque::new(),
            read_paused: false,
            close_after_flush: false,
            interest: 0,
        }
    }

    /// Reads until `WouldBlock` or EOF. Returns `Err` only on fatal
    /// socket errors (reset, etc.) — the caller drops the connection.
    pub(crate) fn fill(&mut self) -> io::Result<FillOutcome> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(FillOutcome::Eof),
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    // A short read usually means the socket is drained;
                    // loop anyway — the next read returns WouldBlock
                    // and settles it (level-triggered epoll would also
                    // re-report, but one extra read now saves a full
                    // reactor turn).
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(FillOutcome::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops the next complete frame from the assembly buffer, if one is
    /// fully buffered. Call in a loop after `fill` — pipelined peers
    /// deliver many frames per readiness event.
    pub(crate) fn next_frame(&mut self) -> NextFrame {
        match split_frame(&self.rbuf[self.rpos..]) {
            FrameSplit::Frame { body_len } => {
                let start = self.rpos + 4;
                let body = self.rbuf[start..start + body_len].to_vec();
                self.rpos = start + body_len;
                NextFrame::Frame(body)
            }
            FrameSplit::Incomplete(_) => {
                self.compact();
                NextFrame::Pending
            }
            FrameSplit::Oversized(_) => NextFrame::Oversized,
        }
    }

    /// Drops consumed bytes from the front of the assembly buffer. Runs
    /// when parsing pauses (no complete frame / backpressure), so the
    /// common fast path — many whole frames in one buffer — pays one
    /// memmove per readiness event, not per frame.
    pub(crate) fn compact(&mut self) {
        if self.rpos > 0 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Appends one response frame (length prefix + body) to the write
    /// buffer. The caller queues responses in request order.
    pub(crate) fn queue_frame(&mut self, body: &[u8]) {
        self.wbuf.extend((body.len() as u32).to_le_bytes());
        self.wbuf.extend(body.iter().copied());
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub(crate) fn buffered(&self) -> usize {
        self.wbuf.len()
    }

    /// True when the write buffer has reached the backpressure budget:
    /// the reactor stops reading (and executing) for this connection
    /// until `flush` drains it below [`Conn::should_resume`]'s mark.
    pub(crate) fn should_pause(&self, write_budget: usize) -> bool {
        self.wbuf.len() >= write_budget
    }

    /// True when a paused connection has drained enough to resume
    /// reading. Half the budget of hysteresis so a connection near the
    /// boundary doesn't flap its epoll interest on every frame.
    pub(crate) fn should_resume(&self, write_budget: usize) -> bool {
        self.wbuf.len() < write_budget / 2
    }

    /// Writes buffered bytes until `WouldBlock` or the buffer empties.
    /// `Ok(true)` = fully flushed. Fatal errors (peer reset mid-write)
    /// surface as `Err`; the caller drops the connection — the peer is
    /// gone, there is nobody left to desync.
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        while !self.wbuf.is_empty() {
            let (front, _) = self.wbuf.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ));
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MAX_FRAME;
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (rx, _) = l.accept().unwrap();
        (tx, rx)
    }

    /// A frame dribbled one byte at a time assembles exactly once, and
    /// two frames in one read both pop.
    #[test]
    fn assembles_partial_and_pipelined_frames() {
        let (mut tx, rx) = pair();
        crate::sys::set_nonblocking(rx.as_raw_fd()).unwrap();
        let mut conn = Conn::new(rx);

        let mut wire = Vec::new();
        crate::wire::write_frame(&mut wire, b"abc").unwrap();
        for &b in &wire {
            tx.write_all(&[b]).unwrap();
            // Wait for the byte to land so each fill sees exactly one.
            loop {
                match conn.fill().unwrap() {
                    FillOutcome::Open if conn.rbuf.len() > conn.rpos => break,
                    FillOutcome::Open => std::thread::yield_now(),
                    FillOutcome::Eof => panic!("peer alive"),
                }
            }
            if conn.rbuf.len() - conn.rpos < wire.len() {
                assert_eq!(conn.next_frame(), NextFrame::Pending);
            }
        }
        assert_eq!(conn.next_frame(), NextFrame::Frame(b"abc".to_vec()));
        assert_eq!(conn.next_frame(), NextFrame::Pending);

        // Two pipelined frames delivered together both pop, in order.
        let mut wire = Vec::new();
        crate::wire::write_frame(&mut wire, b"first").unwrap();
        crate::wire::write_frame(&mut wire, b"second").unwrap();
        tx.write_all(&wire).unwrap();
        loop {
            conn.fill().unwrap();
            if conn.rbuf.len() - conn.rpos >= wire.len() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(conn.next_frame(), NextFrame::Frame(b"first".to_vec()));
        assert_eq!(conn.next_frame(), NextFrame::Frame(b"second".to_vec()));
        assert_eq!(conn.next_frame(), NextFrame::Pending);
    }

    /// An oversized length prefix is detected from the prefix alone.
    #[test]
    fn oversized_prefix_is_fatal() {
        let (mut tx, rx) = pair();
        crate::sys::set_nonblocking(rx.as_raw_fd()).unwrap();
        let mut conn = Conn::new(rx);
        tx.write_all(&(MAX_FRAME as u32 + 1).to_le_bytes()).unwrap();
        loop {
            conn.fill().unwrap();
            if conn.rbuf.len() >= 4 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(conn.next_frame(), NextFrame::Oversized);
    }

    /// The backpressure watermarks: pause at budget, resume below half.
    #[test]
    fn pause_resume_watermarks() {
        let (_tx, rx) = pair();
        let mut conn = Conn::new(rx);
        assert!(!conn.should_pause(100));
        conn.queue_frame(&[0u8; 96]); // 4-byte prefix + 96 = 100 buffered
        assert_eq!(conn.buffered(), 100);
        assert!(conn.should_pause(100));
        assert!(!conn.should_resume(100));
        conn.wbuf.drain(..51);
        assert!(conn.should_resume(100), "49 < 50");
    }

    /// flush drains a nonblocking socket without losing or reordering
    /// bytes, and reports completion.
    #[test]
    fn flush_preserves_order_across_wouldblock() {
        let (tx, rx) = pair();
        crate::sys::set_nonblocking(tx.as_raw_fd()).unwrap();
        let mut conn = Conn::new(tx);
        // Enough data to overrun the socket buffer and hit WouldBlock.
        let body: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        conn.queue_frame(&body);
        let mut got = Vec::new();
        let mut rx = rx;
        rx.set_nonblocking(true).unwrap();
        let mut done = false;
        while !done || !got.is_empty() && got.len() < body.len() + 4 {
            done = conn.flush().unwrap();
            let mut chunk = [0u8; 65536];
            match rx.read(&mut chunk) {
                Ok(n) => got.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("{e}"),
            }
            if done && got.len() >= body.len() + 4 {
                break;
            }
        }
        assert_eq!(got.len(), body.len() + 4);
        assert_eq!(&got[..4], &(body.len() as u32).to_le_bytes());
        assert_eq!(&got[4..], &body[..]);
    }
}
