//! Per-connection state machine for the epoll reactors: incremental
//! frame assembly on the read side, a bounded buffered queue on the
//! write side, and the backpressure valve between them.
//!
//! A [`Conn`] owns a non-blocking `TcpStream` and two byte buffers. The
//! reactor drives it with three calls per readiness event:
//!
//! 1. [`Conn::fill`] — read until `WouldBlock`/EOF into the assembly
//!    buffer.
//! 2. [`Conn::next_frame`] — pop complete frames one at a time (the
//!    pipelining loop: a single `fill` may have delivered many frames,
//!    or the tail of one and the head of the next).
//! 3. [`Conn::flush`] — push the write buffer out until `WouldBlock`
//!    or empty.
//!
//! Both directions are zero-copy past the socket: `next_frame` returns
//! a *range* into the assembly buffer (no per-frame `Vec`), and
//! responses are encoded straight into the write buffer behind a
//! reserved length prefix (`wire::begin_frame`/`end_frame`) — borrow
//! both sides at once with [`Conn::frame_and_wbuf`]. Responses are
//! appended in the order their requests were parsed, which is what
//! makes pipelining safe: the protocol has no request IDs, so FIFO
//! execution + FIFO buffering *is* the ordering guarantee.
//!
//! ## Backpressure invariant
//!
//! The reactor stops parsing (and therefore executing) frames for a
//! connection whose write buffer holds at least `write_budget` bytes —
//! see [`Conn::should_pause`]. Reads pause with parsing, so a client
//! that pipelines faster than it drains responses is throttled by its
//! own TCP window instead of ballooning server memory. The buffer can
//! still overshoot the budget by one response (a SCAN reply is checked
//! *after* it is queued, not split), so the budget is a watermark, not
//! a hard cap; `MAX_FRAME` bounds the overshoot.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::wire::{split_frame, FrameSplit};

/// Read chunk size. One syscall per chunk; big enough that a burst of
/// pipelined GETs (17-byte frames) arrives in one read.
const READ_CHUNK: usize = 64 * 1024;

/// What [`Conn::fill`] observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillOutcome {
    /// Socket drained to `WouldBlock`; connection still open.
    Open,
    /// Peer closed its write half (read returned 0). Any buffered bytes
    /// are still parseable; no more will arrive.
    Eof,
}

/// What [`Conn::next_frame`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NextFrame {
    /// A complete frame body at `rbuf[start .. start + len]` (length
    /// prefix stripped) — borrow it with [`Conn::frame_and_wbuf`]. The
    /// range stays valid until the next `fill`/`compact`; popping
    /// further frames does not move it.
    Frame {
        /// Body offset inside the assembly buffer.
        start: usize,
        /// Body length in bytes.
        len: usize,
    },
    /// No complete frame buffered; wait for more bytes.
    Pending,
    /// The peer announced a frame above `MAX_FRAME`. Unrecoverable:
    /// a length-prefixed stream cannot resync past a bad length, so
    /// the connection must be closed without a reply.
    Oversized,
}

/// One client connection owned by a reactor worker.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    /// Partial-frame assembly buffer: bytes read but not yet consumed
    /// as frames. `rpos` is the parse cursor; consumed bytes are
    /// compacted away between readiness events, not on every frame.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Not-yet-written response bytes: whole length-prefixed frames,
    /// encoded in place. `wpos` is the flush cursor — `flush` advances
    /// it instead of draining the front, and the buffer is reset (not
    /// shrunk) once empty, so steady state re-uses one allocation.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Reads are paused by backpressure: the fd's epoll interest has
    /// EPOLLIN removed until the write buffer drains below half budget.
    pub(crate) read_paused: bool,
    /// The peer sent EOF (or a fatal error): finish flushing `wbuf`,
    /// then close. Set by ERR-and-close paths too.
    pub(crate) close_after_flush: bool,
    /// The epoll interest currently registered for this fd, so the
    /// reactor only issues `EPOLL_CTL_MOD` on actual changes.
    pub(crate) interest: u32,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            read_paused: false,
            close_after_flush: false,
            interest: 0,
        }
    }

    /// Reads until `WouldBlock` or EOF. Returns `Err` only on fatal
    /// socket errors (reset, etc.) — the caller drops the connection.
    pub(crate) fn fill(&mut self) -> io::Result<FillOutcome> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(FillOutcome::Eof),
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    // A short read usually means the socket is drained;
                    // loop anyway — the next read returns WouldBlock
                    // and settles it (level-triggered epoll would also
                    // re-report, but one extra read now saves a full
                    // reactor turn).
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(FillOutcome::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Pops the next complete frame from the assembly buffer, if one is
    /// fully buffered, returning its body *range* (no copy). Call in a
    /// loop after `fill` — pipelined peers deliver many frames per
    /// readiness event.
    pub(crate) fn next_frame(&mut self) -> NextFrame {
        match split_frame(&self.rbuf[self.rpos..]) {
            FrameSplit::Frame { body_len } => {
                let start = self.rpos + 4;
                self.rpos = start + body_len;
                NextFrame::Frame {
                    start,
                    len: body_len,
                }
            }
            FrameSplit::Incomplete(_) => {
                self.compact();
                NextFrame::Pending
            }
            FrameSplit::Oversized(_) => NextFrame::Oversized,
        }
    }

    /// The split borrow of the zero-copy serve path: the frame body at
    /// `start .. start + len` (as returned by [`Conn::next_frame`])
    /// together with the write buffer the response is encoded into.
    /// One method, so the compiler sees two disjoint field borrows —
    /// the engine decodes from the first while appending to the second.
    pub(crate) fn frame_and_wbuf(&mut self, start: usize, len: usize) -> (&[u8], &mut Vec<u8>) {
        (&self.rbuf[start..start + len], &mut self.wbuf)
    }

    /// Drops consumed bytes from the front of the assembly buffer. Runs
    /// when parsing pauses (no complete frame / backpressure), so the
    /// common fast path — many whole frames in one buffer — pays one
    /// memmove per readiness event, not per frame.
    pub(crate) fn compact(&mut self) {
        if self.rpos > 0 {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub(crate) fn buffered(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// True when the write buffer has reached the backpressure budget:
    /// the reactor stops reading (and executing) for this connection
    /// until `flush` drains it below [`Conn::should_resume`]'s mark.
    pub(crate) fn should_pause(&self, write_budget: usize) -> bool {
        self.buffered() >= write_budget
    }

    /// True when a paused connection has drained enough to resume
    /// reading. Half the budget of hysteresis so a connection near the
    /// boundary doesn't flap its epoll interest on every frame.
    pub(crate) fn should_resume(&self, write_budget: usize) -> bool {
        self.buffered() < write_budget / 2
    }

    /// Writes buffered bytes until `WouldBlock` or the buffer empties.
    /// `Ok(true)` = fully flushed. Fatal errors (peer reset mid-write)
    /// surface as `Err`; the caller drops the connection — the peer is
    /// gone, there is nobody left to desync.
    pub(crate) fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ));
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Shed the written prefix before parking on epoll:
                    // the unwritten tail is bounded by the backpressure
                    // budget (+ one frame), so the memmove is cheap and
                    // keeps a long stall from pinning the buffer at its
                    // high-water length while new frames append.
                    if self.wpos > 0 {
                        self.wbuf.drain(..self.wpos);
                        self.wpos = 0;
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Fully drained: reset in place, keeping the allocation.
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MAX_FRAME;
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (rx, _) = l.accept().unwrap();
        (tx, rx)
    }

    /// Queues one response frame the way the engine does: length prefix
    /// reserved, body appended, prefix backfilled.
    fn queue_frame(conn: &mut Conn, body: &[u8]) {
        let mark = crate::wire::begin_frame(&mut conn.wbuf);
        conn.wbuf.extend_from_slice(body);
        crate::wire::end_frame(&mut conn.wbuf, mark);
    }

    /// Pops the next frame and copies its body out (`None` = pending).
    fn next_body(conn: &mut Conn) -> Option<Vec<u8>> {
        match conn.next_frame() {
            NextFrame::Frame { start, len } => Some(conn.frame_and_wbuf(start, len).0.to_vec()),
            NextFrame::Pending => None,
            NextFrame::Oversized => panic!("unexpected oversize"),
        }
    }

    /// A frame dribbled one byte at a time assembles exactly once, and
    /// two frames in one read both pop.
    #[test]
    fn assembles_partial_and_pipelined_frames() {
        let (mut tx, rx) = pair();
        crate::sys::set_nonblocking(rx.as_raw_fd()).unwrap();
        let mut conn = Conn::new(rx);

        let mut wire = Vec::new();
        crate::wire::write_frame(&mut wire, b"abc").unwrap();
        for &b in &wire {
            tx.write_all(&[b]).unwrap();
            // Wait for the byte to land so each fill sees exactly one.
            loop {
                match conn.fill().unwrap() {
                    FillOutcome::Open if conn.rbuf.len() > conn.rpos => break,
                    FillOutcome::Open => std::thread::yield_now(),
                    FillOutcome::Eof => panic!("peer alive"),
                }
            }
            if conn.rbuf.len() - conn.rpos < wire.len() {
                assert_eq!(next_body(&mut conn), None);
            }
        }
        assert_eq!(next_body(&mut conn).as_deref(), Some(&b"abc"[..]));
        assert_eq!(next_body(&mut conn), None);

        // Two pipelined frames delivered together both pop, in order,
        // and the first frame's range stays valid after the second pops
        // (no compaction while frames are being consumed).
        let mut wire = Vec::new();
        crate::wire::write_frame(&mut wire, b"first").unwrap();
        crate::wire::write_frame(&mut wire, b"second").unwrap();
        tx.write_all(&wire).unwrap();
        loop {
            conn.fill().unwrap();
            if conn.rbuf.len() - conn.rpos >= wire.len() {
                break;
            }
            std::thread::yield_now();
        }
        let NextFrame::Frame { start, len } = conn.next_frame() else {
            panic!("first frame must be complete");
        };
        assert_eq!(next_body(&mut conn).as_deref(), Some(&b"second"[..]));
        assert_eq!(conn.frame_and_wbuf(start, len).0, b"first");
        assert_eq!(next_body(&mut conn), None);
    }

    /// An oversized length prefix is detected from the prefix alone.
    #[test]
    fn oversized_prefix_is_fatal() {
        let (mut tx, rx) = pair();
        crate::sys::set_nonblocking(rx.as_raw_fd()).unwrap();
        let mut conn = Conn::new(rx);
        tx.write_all(&(MAX_FRAME as u32 + 1).to_le_bytes()).unwrap();
        loop {
            conn.fill().unwrap();
            if conn.rbuf.len() >= 4 {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(conn.next_frame(), NextFrame::Oversized);
    }

    /// The backpressure watermarks: pause at budget, resume below half.
    /// The flush cursor counts as drained — `buffered` is what is still
    /// owed to the kernel, not the buffer's length.
    #[test]
    fn pause_resume_watermarks() {
        let (_tx, rx) = pair();
        let mut conn = Conn::new(rx);
        assert!(!conn.should_pause(100));
        queue_frame(&mut conn, &[0u8; 96]); // 4-byte prefix + 96 = 100 buffered
        assert_eq!(conn.buffered(), 100);
        assert!(conn.should_pause(100));
        assert!(!conn.should_resume(100));
        conn.wpos = 51; // as if flush stopped mid-buffer
        assert_eq!(conn.buffered(), 49);
        assert!(conn.should_resume(100), "49 < 50");
    }

    /// flush drains a nonblocking socket without losing or reordering
    /// bytes, and reports completion.
    #[test]
    fn flush_preserves_order_across_wouldblock() {
        let (tx, rx) = pair();
        crate::sys::set_nonblocking(tx.as_raw_fd()).unwrap();
        let mut conn = Conn::new(tx);
        // Enough data to overrun the socket buffer and hit WouldBlock.
        let body: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        queue_frame(&mut conn, &body);
        let mut got = Vec::new();
        let mut rx = rx;
        rx.set_nonblocking(true).unwrap();
        let mut done = false;
        while !done || !got.is_empty() && got.len() < body.len() + 4 {
            done = conn.flush().unwrap();
            let mut chunk = [0u8; 65536];
            match rx.read(&mut chunk) {
                Ok(n) => got.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(e) => panic!("{e}"),
            }
            if done && got.len() >= body.len() + 4 {
                break;
            }
        }
        assert_eq!(got.len(), body.len() + 4);
        assert_eq!(&got[..4], &(body.len() as u32).to_le_bytes());
        assert_eq!(&got[4..], &body[..]);
        // Fully flushed: the buffer reset in place.
        assert_eq!(conn.buffered(), 0);
        assert_eq!(conn.wbuf.len(), 0);
    }
}
