//! The wire protocol: length-prefixed binary frames, hand-rolled (the
//! build is offline — no serde, no protobuf).
//!
//! ## Frame layout
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! [ body_len: u32 LE ][ body: body_len bytes ]
//! ```
//!
//! `body_len` covers the body only (not itself) and is capped at
//! [`MAX_FRAME`]; a peer announcing more is malformed and the
//! connection is dropped. All integers are little-endian.
//!
//! ## Request bodies
//!
//! ```text
//! GET     = [0x01][key u64]
//! INSERT  = [0x02][key u64][val u64]
//! REMOVE  = [0x03][key u64]
//! BATCH   = [0x04][count u32] then count × [kind u8][key u64]([val u64] iff kind=INSERT)
//! SCAN    = [0x05][lo u64][hi u64][max u32]      (hi inclusive; max 0 = unlimited)
//! METRICS = [0x06][format u8]                    (0 = JSON, 1 = Prometheus text)
//! PING    = [0x07]
//! SLOWLOG = [0x08][max u32]                      (newest-N slow ops; max 0 = all)
//! ```
//!
//! `BATCH` kinds reuse the single-op opcodes (GET/INSERT/REMOVE).
//!
//! ## Response bodies
//!
//! The first byte is a status: `0x00` OK, `0x01` error (rest of the
//! body is a UTF-8 message). After an OK status:
//!
//! ```text
//! GET     → [found u8]([val u64] iff found)
//! INSERT  → [added u8]
//! REMOVE  → [removed u8]
//! BATCH   → [count u32] then count × the single-op encoding, request order
//! SCAN    → [n u32][truncated u8] then n × [key u64][val u64], ascending
//! METRICS → UTF-8 text (rest of body)
//! PING    → empty
//! SLOWLOG → [n u32] then n × [kind u8][origin u8][n_events u8][key u64][ns u64][events 12 × u8]
//! ```
//!
//! SLOWLOG records are [`SlowOp`]s verbatim (31 bytes each), slowest
//! first; `origin` distinguishes tree-deposited records from
//! server-frame ones, and `kind` is an `OpClass` discriminant for the
//! former, a wire opcode for the latter.

use nmbst::obs::{SlowOp, SLOW_EVENTS};
use std::io::{self, Read, Write};

/// Hard cap on a frame body. Large enough for a ~1M-entry SCAN reply,
/// small enough that a corrupt length prefix cannot OOM the peer.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// GET opcode (also the `kind` of server-origin [`SlowOp`] records and
/// the `op` dimension of the server's per-request timing histograms).
pub const OP_GET: u8 = 0x01;
/// INSERT opcode.
pub const OP_INSERT: u8 = 0x02;
/// REMOVE opcode.
pub const OP_REMOVE: u8 = 0x03;
/// BATCH opcode — the replay tier's unit of work, and the opcode whose
/// server-side wire histogram the bench cross-checks against
/// client-observed round-trip latency.
pub const OP_BATCH: u8 = 0x04;
/// SCAN opcode.
pub const OP_SCAN: u8 = 0x05;
/// METRICS opcode.
pub const OP_METRICS: u8 = 0x06;
/// PING opcode.
pub const OP_PING: u8 = 0x07;
/// SLOWLOG opcode.
pub const OP_SLOWLOG: u8 = 0x08;

/// Number of distinct request opcodes (`0x01..=OP_COUNT`); sizes the
/// server's per-opcode timing arrays.
pub const OP_COUNT: usize = 8;

/// The exposition label for a request opcode (`op="..."` in Prometheus
/// series, the key in METRICS JSON timing objects). `"?"` for values
/// that are not opcodes.
pub fn op_name(opcode: u8) -> &'static str {
    match opcode {
        OP_GET => "get",
        OP_INSERT => "insert",
        OP_REMOVE => "remove",
        OP_BATCH => "batch",
        OP_SCAN => "scan",
        OP_METRICS => "metrics",
        OP_PING => "ping",
        OP_SLOWLOG => "slowlog",
        _ => "?",
    }
}

pub(crate) const STATUS_OK: u8 = 0x00;
pub(crate) const STATUS_ERR: u8 = 0x01;

/// Which exposition format a METRICS request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One flat JSON object (tree snapshot + server counters).
    Json,
    /// Prometheus text exposition.
    Prometheus,
}

/// One operation inside a BATCH request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Point lookup.
    Get(u64),
    /// Insert key → value (rejected if the key exists).
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
}

/// One reply inside a BATCH response, request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchReply {
    /// GET hit, with the value.
    Found(u64),
    /// GET miss.
    Missing,
    /// INSERT outcome: `true` = key added.
    Added(bool),
    /// REMOVE outcome: `true` = key was present.
    Removed(bool),
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get(u64),
    /// Insert key → value.
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
    /// Many point ops in one frame (the replay tier's unit of work).
    Batch(Vec<BatchOp>),
    /// Ordered range scan over `lo..=hi`, at most `max` entries
    /// (`max == 0` = unlimited).
    Scan {
        /// Low key, inclusive.
        lo: u64,
        /// High key, inclusive.
        hi: u64,
        /// Entry cap; 0 means no cap.
        max: u32,
    },
    /// Metrics scrape.
    Metrics(MetricsFormat),
    /// Liveness probe.
    Ping,
    /// The newest slow-op records, up to `max` (`0` = all available).
    SlowLog {
        /// Record cap; 0 means no cap.
        max: u32,
    },
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// GET result.
    Get(Option<u64>),
    /// INSERT result: `true` = key added.
    Insert(bool),
    /// REMOVE result: `true` = key was present.
    Remove(bool),
    /// BATCH results, request order.
    Batch(Vec<BatchReply>),
    /// SCAN result: ascending entries plus whether the cap truncated it.
    Scan {
        /// `(key, value)` pairs, ascending by key.
        entries: Vec<(u64, u64)>,
        /// `true` if `max` cut the scan short.
        truncated: bool,
    },
    /// Metrics text in the requested format.
    Metrics(String),
    /// PING acknowledged.
    Pong,
    /// Slow-op records, slowest first (tree rings + server frame ring,
    /// merged).
    SlowLog(Vec<SlowOp>),
    /// Server-side failure; the connection stays usable.
    Err(String),
}

/// A malformed frame (bad opcode, truncated payload, oversized length).
#[derive(Debug)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Byte-slice cursor for decoding; every read is bounds-checked so a
/// hostile frame can only produce a [`WireError`], never a panic.
struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError(format!("truncated frame: need {n} more bytes")))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.at
            )))
        }
    }
}

impl Request {
    /// The wire opcode this request encodes as — the index of the
    /// server's per-opcode timing histograms and the `kind` of
    /// server-origin slow-frame records.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Get(_) => OP_GET,
            Request::Insert(..) => OP_INSERT,
            Request::Remove(_) => OP_REMOVE,
            Request::Batch(_) => OP_BATCH,
            Request::Scan { .. } => OP_SCAN,
            Request::Metrics(_) => OP_METRICS,
            Request::Ping => OP_PING,
            Request::SlowLog { .. } => OP_SLOWLOG,
        }
    }

    /// Appends this request's body (no length prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Get(k) => {
                out.push(OP_GET);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Request::Insert(k, v) => {
                out.push(OP_INSERT);
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            Request::Remove(k) => {
                out.push(OP_REMOVE);
                out.extend_from_slice(&k.to_le_bytes());
            }
            Request::Batch(ops) => {
                out.push(OP_BATCH);
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    match op {
                        BatchOp::Get(k) => {
                            out.push(OP_GET);
                            out.extend_from_slice(&k.to_le_bytes());
                        }
                        BatchOp::Insert(k, v) => {
                            out.push(OP_INSERT);
                            out.extend_from_slice(&k.to_le_bytes());
                            out.extend_from_slice(&v.to_le_bytes());
                        }
                        BatchOp::Remove(k) => {
                            out.push(OP_REMOVE);
                            out.extend_from_slice(&k.to_le_bytes());
                        }
                    }
                }
            }
            Request::Scan { lo, hi, max } => {
                out.push(OP_SCAN);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
            Request::Metrics(fmt) => {
                out.push(OP_METRICS);
                out.push(match fmt {
                    MetricsFormat::Json => 0,
                    MetricsFormat::Prometheus => 1,
                });
            }
            Request::Ping => out.push(OP_PING),
            Request::SlowLog { max } => {
                out.push(OP_SLOWLOG);
                out.extend_from_slice(&max.to_le_bytes());
            }
        }
    }

    /// Decodes one request body.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut c = Cur::new(body);
        let req = match c.u8()? {
            OP_GET => Request::Get(c.u64()?),
            OP_INSERT => Request::Insert(c.u64()?, c.u64()?),
            OP_REMOVE => Request::Remove(c.u64()?),
            OP_BATCH => {
                let mut ops = Vec::new();
                decode_batch_payload(&mut c, &mut |op| ops.push(op))?;
                Request::Batch(ops)
            }
            OP_SCAN => Request::Scan {
                lo: c.u64()?,
                hi: c.u64()?,
                max: c.u32()?,
            },
            OP_METRICS => Request::Metrics(match c.u8()? {
                0 => MetricsFormat::Json,
                1 => MetricsFormat::Prometheus,
                f => return Err(WireError(format!("bad metrics format {f:#x}"))),
            }),
            OP_PING => Request::Ping,
            OP_SLOWLOG => Request::SlowLog { max: c.u32()? },
            op => return Err(WireError(format!("bad opcode {op:#x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

/// Decodes the records of a BATCH request with the cursor positioned
/// just past the opcode byte, handing each op to `visit` in request
/// order. Shared by [`Request::decode`] and the allocation-free
/// [`decode_batch_ops`] so the two paths cannot diverge.
fn decode_batch_payload(c: &mut Cur<'_>, visit: &mut dyn FnMut(BatchOp)) -> Result<(), WireError> {
    let n = c.u32()? as usize;
    // 9 bytes is the smallest record; pre-reject counts the remaining
    // bytes cannot possibly satisfy.
    if n > c.buf.len() / 9 + 1 {
        return Err(WireError(format!("batch count {n} exceeds frame")));
    }
    for _ in 0..n {
        visit(match c.u8()? {
            OP_GET => BatchOp::Get(c.u64()?),
            OP_INSERT => BatchOp::Insert(c.u64()?, c.u64()?),
            OP_REMOVE => BatchOp::Remove(c.u64()?),
            k => return Err(WireError(format!("bad batch kind {k:#x}"))),
        });
    }
    Ok(())
}

/// Decodes one full BATCH request body (`body[0] == OP_BATCH`,
/// trailing bytes rejected) without building a `Request`: each op is
/// handed to `visit` in request order and the op count is returned.
/// This is the serving tier's scratch-reuse entry point — the visitor
/// pushes into a reusable per-reactor buffer, so a steady-state BATCH
/// decode allocates nothing.
pub fn decode_batch_ops(body: &[u8], mut visit: impl FnMut(BatchOp)) -> Result<usize, WireError> {
    let mut c = Cur::new(body);
    match c.u8()? {
        OP_BATCH => {}
        op => return Err(WireError(format!("expected BATCH, got opcode {op:#x}"))),
    }
    let mut n = 0usize;
    decode_batch_payload(&mut c, &mut |op| {
        n += 1;
        visit(op);
    })?;
    c.finish()?;
    Ok(n)
}

/// Appends one BATCH reply record (the single-op encoding inside a
/// BATCH response body). Shared by [`Response::encode`] and the
/// server's zero-copy path, which writes replies straight into the
/// connection write buffer instead of staging a `Response::Batch`.
#[inline]
pub fn encode_batch_reply(out: &mut Vec<u8>, r: BatchReply) {
    match r {
        BatchReply::Found(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        BatchReply::Missing => out.push(0),
        BatchReply::Added(b) => out.push(2 | (b as u8) << 4),
        BatchReply::Removed(b) => out.push(3 | (b as u8) << 4),
    }
}

/// Reserves a 4-byte length prefix at the tail of `out` and returns a
/// mark for [`end_frame`]. Everything appended between the two calls
/// becomes the frame body: the zero-copy alternative to staging a body
/// in a side buffer and memcpy-ing it behind a prefix. Nesting is fine
/// as long as frames close innermost-first.
#[inline]
pub fn begin_frame(out: &mut Vec<u8>) -> usize {
    out.extend_from_slice(&[0u8; 4]);
    out.len()
}

/// Backfills the length prefix reserved by [`begin_frame`] with the
/// number of bytes appended since, and returns that body length.
#[inline]
pub fn end_frame(out: &mut [u8], mark: usize) -> usize {
    let body_len = out.len() - mark;
    debug_assert!(body_len <= MAX_FRAME, "encoded body exceeds MAX_FRAME");
    out[mark - 4..mark].copy_from_slice(&(body_len as u32).to_le_bytes());
    body_len
}

impl Response {
    /// Appends this response's body (status byte included, no length
    /// prefix) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Err(msg) => {
                out.push(STATUS_ERR);
                out.extend_from_slice(msg.as_bytes());
                return;
            }
            _ => out.push(STATUS_OK),
        }
        match self {
            Response::Get(v) => match v {
                Some(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                None => out.push(0),
            },
            Response::Insert(added) => out.push(*added as u8),
            Response::Remove(removed) => out.push(*removed as u8),
            Response::Batch(replies) => {
                out.extend_from_slice(&(replies.len() as u32).to_le_bytes());
                for r in replies {
                    encode_batch_reply(out, *r);
                }
            }
            Response::Scan { entries, truncated } => {
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                out.push(*truncated as u8);
                for (k, v) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Metrics(text) => out.extend_from_slice(text.as_bytes()),
            Response::Pong => {}
            Response::SlowLog(records) => {
                out.extend_from_slice(&(records.len() as u32).to_le_bytes());
                for r in records {
                    out.push(r.kind);
                    out.push(r.origin);
                    out.push(r.n_events);
                    out.extend_from_slice(&r.key.to_le_bytes());
                    out.extend_from_slice(&r.ns.to_le_bytes());
                    out.extend_from_slice(&r.events);
                }
            }
            Response::Err(_) => unreachable!("handled above"),
        }
    }

    /// Decodes one response body. The caller must know which request it
    /// answers (the protocol is strictly request/response in order), so
    /// the expected opcode is passed in.
    pub fn decode(for_op: u8, body: &[u8]) -> Result<Response, WireError> {
        let mut c = Cur::new(body);
        match c.u8()? {
            STATUS_OK => {}
            STATUS_ERR => {
                let msg = String::from_utf8_lossy(c.rest()).into_owned();
                return Ok(Response::Err(msg));
            }
            s => return Err(WireError(format!("bad status {s:#x}"))),
        }
        let resp = match for_op {
            OP_GET => Response::Get(match c.u8()? {
                0 => None,
                _ => Some(c.u64()?),
            }),
            OP_INSERT => Response::Insert(c.u8()? != 0),
            OP_REMOVE => Response::Remove(c.u8()? != 0),
            OP_BATCH => {
                let n = c.u32()? as usize;
                if n > body.len() {
                    return Err(WireError(format!("batch reply count {n} exceeds frame")));
                }
                let mut replies = Vec::with_capacity(n);
                for _ in 0..n {
                    let tag = c.u8()?;
                    replies.push(match (tag & 0x0F, tag >> 4) {
                        (1, _) => BatchReply::Found(c.u64()?),
                        (0, _) => BatchReply::Missing,
                        (2, b) => BatchReply::Added(b != 0),
                        (3, b) => BatchReply::Removed(b != 0),
                        _ => return Err(WireError(format!("bad batch reply tag {tag:#x}"))),
                    });
                }
                Response::Batch(replies)
            }
            OP_SCAN => {
                let n = c.u32()? as usize;
                if n > body.len() / 16 + 1 {
                    return Err(WireError(format!("scan count {n} exceeds frame")));
                }
                let truncated = c.u8()? != 0;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push((c.u64()?, c.u64()?));
                }
                Response::Scan { entries, truncated }
            }
            OP_METRICS => Response::Metrics(String::from_utf8_lossy(c.rest()).into_owned()),
            OP_PING => Response::Pong,
            OP_SLOWLOG => {
                let n = c.u32()? as usize;
                // 31 bytes per record; pre-reject counts the frame
                // cannot possibly satisfy.
                if n > body.len() / 31 + 1 {
                    return Err(WireError(format!("slowlog count {n} exceeds frame")));
                }
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    let kind = c.u8()?;
                    let origin = c.u8()?;
                    let n_events = c.u8()?;
                    let key = c.u64()?;
                    let ns = c.u64()?;
                    let mut events = [0u8; SLOW_EVENTS];
                    events.copy_from_slice(c.take(SLOW_EVENTS)?);
                    records.push(SlowOp {
                        kind,
                        origin,
                        n_events,
                        key,
                        ns,
                        events,
                    });
                }
                Response::SlowLog(records)
            }
            op => return Err(WireError(format!("bad request opcode {op:#x}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// What [`split_frame`] found at the front of a byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameSplit {
    /// Not enough bytes for a complete frame yet; keep reading. Carries
    /// the total prefix-plus-body size once the length prefix is known
    /// (`0` while even the prefix is partial) so a reactor can pre-grow
    /// its buffer.
    Incomplete(usize),
    /// A complete frame: the body is `buf[4 .. 4 + body_len]` and the
    /// caller should consume `4 + body_len` bytes.
    Frame {
        /// Body length in bytes (the decoded u32 prefix).
        body_len: usize,
    },
    /// The length prefix announces more than [`MAX_FRAME`]: the peer is
    /// malformed (or hostile) and the connection must be dropped —
    /// there is no way to resynchronize a length-prefixed stream.
    Oversized(usize),
}

/// The incremental-decode entry point: inspects the front of `buf` (an
/// arbitrary prefix of the byte stream, as assembled by a non-blocking
/// reader) without consuming anything. This is [`read_frame`]'s logic
/// factored out of the blocking-`Read` loop so a reactor can call it
/// after every partial read: feed it one byte at a time and it returns
/// [`FrameSplit::Incomplete`] until exactly the full frame is present.
pub fn split_frame(buf: &[u8]) -> FrameSplit {
    if buf.len() < 4 {
        return FrameSplit::Incomplete(0);
    }
    let body_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if body_len > MAX_FRAME {
        return FrameSplit::Oversized(body_len);
    }
    if buf.len() < 4 + body_len {
        FrameSplit::Incomplete(4 + body_len)
    } else {
        FrameSplit::Frame { body_len }
    }
}

/// Writes `body` as one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Reads one frame body into `buf` (cleared and resized). Returns
/// `Ok(false)` on clean EOF at a frame boundary; mid-frame EOF and
/// oversized lengths are `Err`.
///
/// Read-timeout contract (the server polls with a timeout so shutdown
/// can interrupt an idle connection): a timeout *before any byte of a
/// frame* surfaces as `Err(WouldBlock | TimedOut)` with nothing
/// consumed — the caller may treat it as an idle tick and call again.
/// Once any byte has been consumed, timeouts are retried internally so
/// a slow writer can never desync the stream.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    fn is_timeout(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }
    /// `read_exact` that survives timeouts once mid-object.
    fn fill(r: &mut impl Read, mut dst: &mut [u8], what: &str) -> io::Result<()> {
        while !dst.is_empty() {
            match r.read(dst) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("eof inside frame {what}"),
                    ));
                }
                Ok(n) => dst = &mut dst[n..],
                Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    let mut len = [0u8; 4];
    // First read: EOF = clean close, timeout = idle tick (nothing
    // consumed either way).
    let got = loop {
        match r.read(&mut len) {
            Ok(0) => return Ok(false),
            Ok(n) => break n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    fill(r, &mut len[got..], "length")?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds MAX_FRAME"),
        ));
    }
    buf.clear();
    buf.resize(n, 0);
    fill(r, buf, "body")?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut body = Vec::new();
        req.encode(&mut body);
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn round_trip_response(op: u8, resp: Response) {
        let mut body = Vec::new();
        resp.encode(&mut body);
        assert_eq!(Response::decode(op, &body).unwrap(), resp);
    }

    #[test]
    fn request_round_trips() {
        round_trip_request(Request::Get(42));
        round_trip_request(Request::Insert(u64::MAX, 0));
        round_trip_request(Request::Remove(7));
        round_trip_request(Request::Batch(vec![
            BatchOp::Get(1),
            BatchOp::Insert(2, 20),
            BatchOp::Remove(3),
        ]));
        round_trip_request(Request::Batch(Vec::new()));
        round_trip_request(Request::Scan {
            lo: 5,
            hi: 500,
            max: 0,
        });
        round_trip_request(Request::Metrics(MetricsFormat::Json));
        round_trip_request(Request::Metrics(MetricsFormat::Prometheus));
        round_trip_request(Request::Ping);
        round_trip_request(Request::SlowLog { max: 0 });
        round_trip_request(Request::SlowLog { max: 128 });
    }

    #[test]
    fn response_round_trips() {
        round_trip_response(OP_GET, Response::Get(Some(9)));
        round_trip_response(OP_GET, Response::Get(None));
        round_trip_response(OP_INSERT, Response::Insert(true));
        round_trip_response(OP_REMOVE, Response::Remove(false));
        round_trip_response(
            OP_BATCH,
            Response::Batch(vec![
                BatchReply::Found(1),
                BatchReply::Missing,
                BatchReply::Added(true),
                BatchReply::Added(false),
                BatchReply::Removed(true),
            ]),
        );
        round_trip_response(
            OP_SCAN,
            Response::Scan {
                entries: vec![(1, 10), (2, 20)],
                truncated: true,
            },
        );
        round_trip_response(OP_METRICS, Response::Metrics("x y z".into()));
        round_trip_response(OP_PING, Response::Pong);
        round_trip_response(OP_GET, Response::Err("boom".into()));
        round_trip_response(OP_SLOWLOG, Response::SlowLog(Vec::new()));
        let mut events = [0u8; SLOW_EVENTS];
        for (i, e) in events.iter_mut().enumerate() {
            *e = i as u8;
        }
        round_trip_response(
            OP_SLOWLOG,
            Response::SlowLog(vec![
                SlowOp {
                    kind: OP_BATCH,
                    origin: 1,
                    n_events: 0,
                    key: 42,
                    ns: 2_000_000,
                    events: [0; SLOW_EVENTS],
                },
                SlowOp {
                    kind: 1,
                    origin: 0,
                    n_events: 12,
                    key: u64::MAX,
                    ns: 1_500_000,
                    events,
                },
            ]),
        );
    }

    /// The visitor decode must agree byte-for-byte with `Request::decode`
    /// on every valid BATCH body, and reject the same malformed ones.
    #[test]
    fn decode_batch_ops_agrees_with_request_decode() {
        let ops = vec![
            BatchOp::Get(1),
            BatchOp::Insert(2, 20),
            BatchOp::Remove(3),
            BatchOp::Get(u64::MAX),
        ];
        let mut body = Vec::new();
        Request::Batch(ops.clone()).encode(&mut body);
        let mut seen = Vec::new();
        let n = decode_batch_ops(&body, |op| seen.push(op)).unwrap();
        assert_eq!(n, ops.len());
        assert_eq!(seen, ops);
        // Empty batch.
        let mut body = Vec::new();
        Request::Batch(Vec::new()).encode(&mut body);
        assert_eq!(decode_batch_ops(&body, |_| panic!("no ops")).unwrap(), 0);
        // Non-batch opcode is rejected outright.
        let mut body = Vec::new();
        Request::Ping.encode(&mut body);
        assert!(decode_batch_ops(&body, |_| {}).is_err());
        // Trailing garbage and bogus counts are rejected like decode.
        let mut body = Vec::new();
        Request::Batch(vec![BatchOp::Get(7)]).encode(&mut body);
        body.push(0);
        assert!(decode_batch_ops(&body, |_| {}).is_err());
        let mut body = vec![OP_BATCH];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch_ops(&body, |_| {}).is_err());
    }

    /// `begin_frame`/`end_frame` produce exactly what `write_frame`
    /// produces, including back-to-back frames in one buffer.
    #[test]
    fn reserve_backfill_frames_match_write_frame() {
        let mut out = Vec::new();
        let mark = begin_frame(&mut out);
        out.extend_from_slice(b"hello");
        assert_eq!(end_frame(&mut out, mark), 5);
        let mark = begin_frame(&mut out);
        assert_eq!(end_frame(&mut out, mark), 0);
        let mut expect = Vec::new();
        write_frame(&mut expect, b"hello").unwrap();
        write_frame(&mut expect, b"").unwrap();
        assert_eq!(out, expect);
        assert_eq!(split_frame(&out), FrameSplit::Frame { body_len: 5 });
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        assert!(Request::decode(&[OP_GET, 1, 2]).is_err(), "truncated key");
        // Trailing garbage after a valid payload.
        let mut body = Vec::new();
        Request::Ping.encode(&mut body);
        body.push(0);
        assert!(Request::decode(&body).is_err());
        // Batch count larger than the frame could hold.
        let mut body = vec![OP_BATCH];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode(&body).is_err());
    }

    /// Seeded fuzz: random bytes must never panic the decoder, and every
    /// encodable request must survive a round trip.
    #[test]
    fn decoder_survives_random_bytes() {
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5_000 {
            let len = (next() % 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = Request::decode(&bytes); // must not panic
            let _ = Response::decode((next() % 10) as u8, &bytes);
            let _ = split_frame(&bytes); // arbitrary prefixes are fine too
        }
    }

    /// The incremental splitter agrees with the blocking reader at every
    /// possible prefix length: Incomplete until the exact boundary, then
    /// a Frame whose body matches, with trailing bytes left alone.
    #[test]
    fn split_frame_finds_boundaries_incrementally() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        for cut in 0..wire.len() {
            let got = split_frame(&wire[..cut]);
            if cut < 4 {
                assert_eq!(got, FrameSplit::Incomplete(0), "cut={cut}");
            } else if cut < 9 {
                assert_eq!(got, FrameSplit::Incomplete(9), "cut={cut}");
            } else {
                assert_eq!(got, FrameSplit::Frame { body_len: 5 }, "cut={cut}");
            }
        }
        // Consume the first frame: the empty second frame is complete.
        assert_eq!(split_frame(&wire[9..]), FrameSplit::Frame { body_len: 0 });
        // An oversized prefix is flagged, not waited for.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert_eq!(split_frame(&huge), FrameSplit::Oversized(MAX_FRAME + 1));
        // ... even with only the prefix present and no body at all.
        assert_eq!(split_frame(&huge[..3]), FrameSplit::Incomplete(0));
    }

    /// Seeded fuzz for the reactor path: valid frames concatenated, then
    /// delivered in chunks split at random byte boundaries — the
    /// splitter must reassemble exactly the frames that were sent, in
    /// order, regardless of how the stream was fragmented.
    #[test]
    fn split_frame_survives_random_fragmentation() {
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _round in 0..200 {
            // A handful of frames with random small bodies (including
            // empty ones, the hardest boundary case).
            let mut sent: Vec<Vec<u8>> = Vec::new();
            let mut wire = Vec::new();
            for _ in 0..(next() % 6 + 1) {
                let len = (next() % 40) as usize;
                let body: Vec<u8> = (0..len).map(|_| next() as u8).collect();
                write_frame(&mut wire, &body).unwrap();
                sent.push(body);
            }
            // Deliver in random-sized chunks through a reassembly buffer.
            let mut rbuf: Vec<u8> = Vec::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            let mut at = 0;
            while at < wire.len() {
                let chunk = ((next() % 7) as usize + 1).min(wire.len() - at);
                rbuf.extend_from_slice(&wire[at..at + chunk]);
                at += chunk;
                loop {
                    match split_frame(&rbuf) {
                        FrameSplit::Frame { body_len } => {
                            got.push(rbuf[4..4 + body_len].to_vec());
                            rbuf.drain(..4 + body_len);
                        }
                        FrameSplit::Incomplete(_) => break,
                        FrameSplit::Oversized(n) => panic!("bogus oversize {n}"),
                    }
                }
            }
            assert_eq!(got, sent, "fragmented reassembly must be exact");
            assert!(rbuf.is_empty(), "no leftover bytes");
        }
    }

    #[test]
    fn frame_io_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut r, &mut buf).unwrap(), "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).is_err());
    }
}
