//! The serving loop: per-worker **epoll reactors** over one shared
//! non-blocking `TcpListener`, each worker multiplexing many
//! connections through a pinned per-shard [`ShardedMapHandle`].
//!
//! Worker/handle pinning is the design's point: a worker thread owns
//! one `ShardedMapHandle` — one pin-amortizing [`nmbst::MapHandle`] per
//! shard — so every descent that worker makes into a given shard reuses
//! that shard's guard, seek record, and node cache, all resident in the
//! worker's core cache. There is no cross-worker handle sharing and
//! therefore no handle synchronization.
//!
//! Concurrency model: every worker registers the shared listener in its
//! own epoll instance (level-triggered). Whichever worker wakes first
//! accepts, and each accepted connection is assigned **round-robin**
//! across workers — a connection for another worker is handed off
//! through that worker's inbox and an eventfd wake. Each worker drives
//! its connections as non-blocking state machines ([`crate::conn`]):
//! partial frames assemble incrementally, a connection may have many
//! frames in flight (**pipelining** — responses are written in request
//! order, which the FIFO parse→execute→buffer path guarantees), and a
//! connection whose write buffer exceeds `write_budget` stops being
//! read (**backpressure**) until it drains below half the budget.
//!
//! ## Routing policy: connections round-robin, keys inside the worker
//!
//! Connection→worker assignment is deliberately **not** key-affine (no
//! routing by a frame's first key, batch hash, or anything else derived
//! from keys): every worker owns a pinned handle *per shard*, so any
//! worker can serve any key at full handle speed, and a connection's
//! mixed-key traffic never has to hop workers. Key locality is
//! recovered one level down, per frame: the engine partitions each
//! BATCH by `RouteHasher` shard, sorts each shard's run, executes it
//! through that shard's finger-anchored handle
//! ([`nmbst::ShardedMapHandle::execute_batch`]), and scatters replies
//! back to request order — so wire batches inherit the finger-seek win
//! regardless of which worker the connection landed on.
//!
//! ## Zero-copy serve path
//!
//! A steady-state point or BATCH frame is served without touching the
//! heap: the frame body is a *range* into the connection's assembly
//! buffer (never copied out), BATCH ops decode into a reusable
//! per-reactor scratch, and the response is encoded directly into the
//! connection's write buffer behind a reserved length prefix
//! (`wire::begin_frame`/`end_frame`) — no staging `Vec`, no
//! per-response memcpy. SCAN/METRICS/SLOWLOG still build owned
//! payloads; their cost is the payload, not the framing.
//!
//! Shutdown: a stop flag plus one eventfd signal per worker — the
//! eventfd wake replaces the old dummy-`connect()` hack, which raced
//! against real clients for the accept queue. The 100 ms `epoll_wait`
//! timeout is the idle tick: workers `flush_stats()` their handles
//! there (and every `flush_every` ops), which keeps the METRICS verb's
//! view of in-flight workers honest.

use crate::conn::{Conn, FillOutcome, NextFrame};
use crate::sys::{
    set_nonblocking, Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::wire::{
    self, op_name, BatchOp, BatchReply, MetricsFormat, Request, Response, OP_BATCH, OP_COUNT,
    STATUS_OK,
};
use nmbst::obs::slow::SlowRing;
use nmbst::obs::{Histogram, ServeGauges, SlowOp, SLOW_EVENTS};
use nmbst::{BatchCmd, BatchScratch, BatchVerdict, Ebr, ShardedMap, ShardedMapHandle, TreeConfig};
use nmbst_sync::CachePadded;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The store the tier serves: `u64 → u64` over epoch-reclaimed sharded
/// trees. Fixed-width keys keep the wire protocol trivial; richer
/// payloads belong in a layer above.
pub type Store = ShardedMap<u64, u64, Ebr>;

/// Everything tunable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Reactor worker threads, each multiplexing its share of the
    /// connections. Defaults to the machine's available parallelism
    /// (thread-per-core).
    pub workers: usize,
    /// Tree shards in the store; `0` (default) means one per worker.
    pub shards: usize,
    /// Configuration for every shard's tree.
    pub tree: TreeConfig,
    /// Ops between a worker's `flush_stats` sampling ticks.
    pub flush_every: u32,
    /// Frames whose wire time (request assembled → response buffered)
    /// meets this threshold deposit a server-origin [`SlowOp`] into the
    /// server's slow ring (served by the SLOWLOG verb). `0` disables
    /// capture. Default 1 ms.
    pub slow_frame_ns: u64,
    /// Backpressure watermark: a connection whose buffered response
    /// bytes reach this budget stops being read (and therefore stops
    /// having requests executed) until the buffer drains below half.
    /// The buffer may overshoot by one response (responses are queued
    /// whole), so this is a watermark, not a hard cap. Default 256 KiB.
    pub write_budget: usize,
    /// Execute BATCH frames shard-fused: partition by shard, sort each
    /// shard's run by key, run it through that shard's finger-anchored
    /// handle, and scatter replies back to request order (default).
    /// `false` unrolls each batch op through the routing handle in
    /// request order — the pre-fusion behaviour, kept for A/B
    /// attribution (the `serving_batch_fusion` perf cell).
    pub fuse_batches: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards: 0,
            tree: TreeConfig::default(),
            flush_every: 1024,
            slow_frame_ns: 1_000_000,
            write_budget: 256 * 1024,
            fuse_batches: true,
        }
    }
}

/// Records the server-level slow-frame ring retains.
const SERVER_SLOW_CAP: usize = 128;

/// Epoll token for the worker's wake eventfd.
const TOKEN_WAKE: u64 = u64::MAX;
/// Epoll token for the shared listener.
const TOKEN_LISTENER: u64 = u64::MAX - 1;

/// Per-phase latency histograms for one request opcode: where a frame's
/// time went. `wire` spans request-assembled → response-buffered;
/// `decode`/`execute`/`encode` partition its interior (encode includes
/// queuing the frame into the connection's write buffer), so
/// `wire ≈ decode + execute + encode` per frame — the breakdown that
/// tells a slow-frame investigation whether the store or the wire
/// handling is the problem. Socket flush time is *not* attributed to
/// individual frames: under pipelining many responses share one write.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseHists {
    /// Full frame: request assembled → response buffered.
    pub wire: Histogram,
    /// `Request::decode` time.
    pub decode: Histogram,
    /// Store execution time (the tree/batch/scan work).
    pub execute: Histogram,
    /// `Response::encode` + write-buffer queue time.
    pub encode: Histogram,
}

impl PhaseHists {
    /// The phase histograms with their exposition labels, in fixed
    /// order.
    pub fn by_phase(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("wire", &self.wire),
            ("decode", &self.decode),
            ("execute", &self.execute),
            ("encode", &self.encode),
        ]
    }

    fn merge(&mut self, other: &PhaseHists) {
        self.wire.merge(&other.wire);
        self.decode.merge(&other.decode);
        self.execute.merge(&other.execute);
        self.encode.merge(&other.encode);
    }
}

/// One worker's request timing: a [`PhaseHists`] per opcode, indexed by
/// `opcode - 1`. Behind a per-worker mutex that only the owning worker
/// (per frame) and scrapes (rarely) take — never contended on the
/// serving path, so the lock costs an uncontended CAS per frame.
struct WorkerTiming {
    ops: [PhaseHists; OP_COUNT],
}

impl WorkerTiming {
    fn new() -> Self {
        WorkerTiming {
            ops: std::array::from_fn(|_| PhaseHists::default()),
        }
    }
}

/// One worker's connection gauges, cache-padded like the op counters.
/// `open`/`paused`/`wbuf_bytes` are gauges the owning reactor maintains
/// (exact at its loop boundaries); `backpressure` counts pause
/// transitions monotonically.
#[derive(Debug, Default)]
struct WorkerServe {
    open: AtomicU64,
    paused: AtomicU64,
    wbuf_bytes: AtomicU64,
    backpressure: AtomicU64,
}

/// Server-level counters, one step above the store's tree metrics.
/// Worker op counts are cache-padded like the tree's own counter shards
/// — workers must not ping-pong a stats line while serving.
#[derive(Debug)]
pub struct ServerStats {
    worker_ops: Box<[CachePadded<AtomicU64>]>,
    connections: AtomicU64,
    frames: AtomicU64,
    wire_errors: AtomicU64,
    batch_fused_ops: AtomicU64,
    batch_single_ops: AtomicU64,
    encode_bytes: Box<[AtomicU64]>,
    timing: Box<[Mutex<WorkerTiming>]>,
    serve: Box<[CachePadded<WorkerServe>]>,
    slow: SlowRing,
    slow_frame_ns: u64,
}

impl std::fmt::Debug for WorkerTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTiming").finish_non_exhaustive()
    }
}

impl ServerStats {
    fn new(workers: usize, slow_frame_ns: u64) -> Self {
        ServerStats {
            worker_ops: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            wire_errors: AtomicU64::new(0),
            batch_fused_ops: AtomicU64::new(0),
            batch_single_ops: AtomicU64::new(0),
            encode_bytes: (0..OP_COUNT).map(|_| AtomicU64::new(0)).collect(),
            timing: (0..workers)
                .map(|_| Mutex::new(WorkerTiming::new()))
                .collect(),
            serve: (0..workers)
                .map(|_| CachePadded::new(WorkerServe::default()))
                .collect(),
            slow: SlowRing::new(SERVER_SLOW_CAP),
            slow_frame_ns,
        }
    }

    /// One served frame's timing: records the four phase durations into
    /// the worker's per-opcode histograms and deposits a slow-frame
    /// record when the wire time crosses the configured threshold.
    fn record_frame(&self, worker: usize, opcode: u8, key: u64, ns: [u64; 4]) {
        let [wire, decode, execute, encode] = ns;
        {
            let mut t = self.timing[worker]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let p = &mut t.ops[usize::from(opcode - 1).min(OP_COUNT - 1)];
            p.wire.record(wire);
            p.decode.record(decode);
            p.execute.record(execute);
            p.encode.record(encode);
        }
        if self.slow_frame_ns != 0 && wire >= self.slow_frame_ns {
            self.slow.push(SlowOp {
                kind: opcode,
                origin: 1,
                n_events: 0,
                key,
                ns: wire,
                events: [0; SLOW_EVENTS],
            });
        }
    }

    /// Per-opcode request timing merged across workers, labelled with
    /// the opcode's exposition name, in opcode order. Opcodes that have
    /// served no frames are included (empty histograms).
    pub fn request_timing(&self) -> Vec<(&'static str, PhaseHists)> {
        let mut merged: Vec<PhaseHists> = (0..OP_COUNT).map(|_| PhaseHists::default()).collect();
        for w in self.timing.iter() {
            let t = w.lock().unwrap_or_else(|e| e.into_inner());
            for (dst, src) in merged.iter_mut().zip(t.ops.iter()) {
                dst.merge(src);
            }
        }
        merged
            .into_iter()
            .enumerate()
            .map(|(i, p)| (op_name(i as u8 + 1), p))
            .collect()
    }

    /// The full-frame (wire) latency histogram for one opcode, merged
    /// across workers — e.g. `wire::OP_BATCH` for the replay bench's
    /// server-vs-client percentile cross-check.
    pub fn wire_hist(&self, opcode: u8) -> Histogram {
        let mut h = Histogram::new();
        if opcode == 0 || usize::from(opcode) > OP_COUNT {
            return h;
        }
        for w in self.timing.iter() {
            let t = w.lock().unwrap_or_else(|e| e.into_inner());
            h.merge(&t.ops[usize::from(opcode - 1)].wire);
        }
        h
    }

    /// The server-origin slow-frame records currently retained, oldest
    /// first (the SLOWLOG verb merges these with the store's
    /// tree-origin records and sorts slowest-first).
    pub fn slow_frames(&self) -> Vec<SlowOp> {
        self.slow.snapshot()
    }

    /// Total slow frames ever deposited (including ones the ring has
    /// since overwritten).
    pub fn slow_frames_deposited(&self) -> u64 {
        self.slow.deposited()
    }

    /// Tree operations each worker has routed through its pinned
    /// handles, index-aligned with worker threads. The replay gate
    /// hard-fails if any entry is zero — a worker that served traffic
    /// without touching its handle means the pinning is broken.
    pub fn worker_ops(&self) -> Vec<u64> {
        self.worker_ops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Request frames served.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Malformed frames (connection dropped after each).
    pub fn wire_errors(&self) -> u64 {
        self.wire_errors.load(Ordering::Relaxed)
    }

    /// BATCH ops executed shard-fused (partition → per-shard sorted run
    /// through the finger-anchored handle → scatter). The fusion gate
    /// hard-fails if a fused server serves a replay with this at zero.
    pub fn batch_fused_ops(&self) -> u64 {
        self.batch_fused_ops.load(Ordering::Relaxed)
    }

    /// BATCH ops executed unrolled in request order through the routing
    /// handle (`fuse_batches: false`, the A/B control arm).
    pub fn batch_single_ops(&self) -> u64 {
        self.batch_single_ops.load(Ordering::Relaxed)
    }

    /// Response-frame bytes encoded per opcode (body + 4-byte length
    /// prefix), labelled with the opcode's exposition name, in opcode
    /// order. Error replies are not attributed (the opcode is what
    /// failed to parse).
    pub fn encode_bytes(&self) -> Vec<(&'static str, u64)> {
        self.encode_bytes
            .iter()
            .enumerate()
            .map(|(i, b)| (op_name(i as u8 + 1), b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Attributes one encoded response frame's bytes to its opcode.
    fn note_encode(&self, opcode: u8, bytes: u64) {
        self.encode_bytes[usize::from(opcode - 1).min(OP_COUNT - 1)]
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// This worker's connection gauges (racy point reads).
    fn worker_gauges(&self, w: usize) -> ServeGauges {
        let g = &self.serve[w];
        ServeGauges {
            open_connections: g.open.load(Ordering::Relaxed),
            read_paused_connections: g.paused.load(Ordering::Relaxed),
            write_buffered_bytes: g.wbuf_bytes.load(Ordering::Relaxed),
            backpressure_events: g.backpressure.load(Ordering::Relaxed),
        }
    }

    /// Per-reactor connection/backpressure gauges, index-aligned with
    /// worker threads.
    pub fn worker_serve(&self) -> Vec<ServeGauges> {
        (0..self.serve.len())
            .map(|w| self.worker_gauges(w))
            .collect()
    }

    /// Fleet-aggregate connection gauges — the values the METRICS verb
    /// folds into the store snapshot's `serve` field.
    pub fn serve_gauges(&self) -> ServeGauges {
        let mut total = ServeGauges::default();
        for w in 0..self.serve.len() {
            let g = self.worker_gauges(w);
            total.open_connections += g.open_connections;
            total.read_paused_connections += g.read_paused_connections;
            total.write_buffered_bytes += g.write_buffered_bytes;
            total.backpressure_events += g.backpressure_events;
        }
        total
    }
}

/// A worker's cross-thread mailbox: connections assigned to it by
/// whichever worker ran the accept, plus the eventfd that wakes its
/// `epoll_wait` (for handoffs and shutdown).
struct WorkerShared {
    inbox: Mutex<Vec<TcpStream>>,
    wake: EventFd,
}

/// A running serving tier over one [`Store`].
///
/// # Examples
///
/// ```
/// use nmbst_server::{Client, Server, ServerConfig};
///
/// let server = Server::start(ServerConfig {
///     workers: 2,
///     ..ServerConfig::default()
/// })
/// .unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// assert!(client.insert(7, 70).unwrap());
/// assert_eq!(client.get(&7).unwrap(), Some(70));
/// drop(client);
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    shared: Vec<Arc<WorkerShared>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and spawns the workers; serving begins before this returns.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let workers = config.workers.max(1);
        let shards = if config.shards == 0 {
            workers
        } else {
            config.shards
        };
        let listener = TcpListener::bind(&config.addr)?;
        set_nonblocking(listener.as_raw_fd())?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let store = Arc::new(Store::with_config(shards, config.tree));
        let stats = Arc::new(ServerStats::new(workers, config.slow_frame_ns));
        let stop = Arc::new(AtomicBool::new(false));
        let rr = Arc::new(AtomicUsize::new(0));
        let shared = (0..workers)
            .map(|_| {
                Ok(Arc::new(WorkerShared {
                    inbox: Mutex::new(Vec::new()),
                    wake: EventFd::new()?,
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let handles = (0..workers)
            .map(|w| {
                let listener = Arc::clone(&listener);
                let shared: Vec<_> = shared.iter().map(Arc::clone).collect();
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let rr = Arc::clone(&rr);
                let flush_every = config.flush_every.max(1);
                let write_budget = config.write_budget.max(1);
                let fuse_batches = config.fuse_batches;
                std::thread::Builder::new()
                    .name(format!("nmbst-worker-{w}"))
                    .spawn(move || {
                        worker_loop(
                            w,
                            &listener,
                            &shared,
                            &rr,
                            &store,
                            &stats,
                            &stop,
                            flush_every,
                            write_budget,
                            fuse_batches,
                        )
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server {
            addr,
            store,
            stats,
            stop,
            shared,
            workers: handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store being served (e.g. for out-of-band verification).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Server-level counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// A shared handle to the counters that outlives the server — lets
    /// a bench snapshot request timing *after* `shutdown` has joined
    /// the workers, when every frame's record is certainly published.
    pub fn stats_arc(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Aggregated store metrics — the same snapshot the METRICS verb
    /// serves, minus the server counters.
    pub fn metrics(&self) -> nmbst::obs::MetricsSnapshot {
        self.store.metrics()
    }

    /// Stops the reactors (eventfd wake, no dummy connections) and
    /// joins them. Connections are closed where they stand; buffered
    /// responses that have not reached the socket are dropped with
    /// them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        for sh in &self.shared {
            sh.wake.signal();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// One worker's reactor state: its epoll instance, connection slab, and
/// pinned store handle. Connections are identified by slab slot, which
/// doubles as the epoll registration token; freed slots are reused only
/// after the event batch that might still reference them has been fully
/// processed (accepts and inbox handoffs are deferred to the end of
/// each loop iteration for exactly this reason).
struct Reactor<'a> {
    idx: usize,
    workers: usize,
    epoll: Epoll,
    listener: &'a TcpListener,
    shared: &'a [Arc<WorkerShared>],
    rr: &'a AtomicUsize,
    stats: &'a ServerStats,
    stop: &'a AtomicBool,
    engine: Engine<'a>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    write_budget: usize,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    idx: usize,
    listener: &TcpListener,
    shared: &[Arc<WorkerShared>],
    rr: &AtomicUsize,
    store: &Store,
    stats: &ServerStats,
    stop: &AtomicBool,
    flush_every: u32,
    write_budget: usize,
    fuse_batches: bool,
) {
    let epoll = match Epoll::new() {
        Ok(e) => e,
        Err(_) => return,
    };
    if epoll
        .add(shared[idx].wake.fd(), EPOLLIN, TOKEN_WAKE)
        .is_err()
    {
        return;
    }
    if epoll
        .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .is_err()
    {
        return;
    }
    let mut reactor = Reactor {
        idx,
        workers: shared.len(),
        epoll,
        listener,
        shared,
        rr,
        stats,
        stop,
        engine: Engine::new(idx, store, stats, fuse_batches, flush_every),
        slab: Vec::new(),
        free: Vec::new(),
        write_budget,
    };
    reactor.run();
}

impl Reactor<'_> {
    fn run(&mut self) {
        let mut events = vec![EpollEvent::ZERO; 128];
        loop {
            let n = match self.epoll.wait(&mut events, 100) {
                Ok(n) => n,
                Err(_) => {
                    // An epoll failure is unrecoverable for this worker,
                    // but don't spin on it — check the flag and park.
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut accept_ready = false;
            for ev in events.iter().take(n) {
                let ev = *ev; // copy out of the packed buffer
                match ev.data {
                    TOKEN_WAKE => {
                        self.shared[self.idx].wake.drain();
                    }
                    TOKEN_LISTENER => accept_ready = true,
                    slot => self.drive(slot as usize, ev.events),
                }
            }
            // Accepts and handoffs run *after* the event batch: a slot
            // freed while processing the batch must not be reused while
            // stale events for it may remain in `events`.
            if accept_ready {
                self.accept_new();
            }
            self.drain_inbox();
            if n == 0 {
                // Idle tick: publish batched handle stats.
                self.engine.flush_stats();
            }
            let buffered: u64 = self
                .slab
                .iter()
                .flatten()
                .map(|c| c.buffered() as u64)
                .sum();
            self.stats.serve[self.idx]
                .wbuf_bytes
                .store(buffered, Ordering::Relaxed);
        }
        self.engine.flush_stats();
        // Dropping the slab closes every connection; zero the gauges so
        // a post-shutdown scrape doesn't report ghosts.
        let g = &self.stats.serve[self.idx];
        g.open.store(0, Ordering::Relaxed);
        g.paused.store(0, Ordering::Relaxed);
        g.wbuf_bytes.store(0, Ordering::Relaxed);
    }

    /// Accepts until `WouldBlock`, assigning each connection
    /// round-robin across workers.
    fn accept_new(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    self.stats.connections.fetch_add(1, Ordering::Relaxed);
                    let target = self.rr.fetch_add(1, Ordering::Relaxed) % self.workers;
                    if target == self.idx {
                        self.register(stream);
                    } else {
                        let sh = &self.shared[target];
                        sh.inbox
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(stream);
                        sh.wake.signal();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Adopts connections other workers' accepts assigned to us.
    fn drain_inbox(&mut self) {
        let pending: Vec<TcpStream> = {
            let mut inbox = self.shared[self.idx]
                .inbox
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *inbox)
        };
        for stream in pending {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            self.register(stream);
        }
    }

    /// Registers a new connection in the slab and this worker's epoll.
    fn register(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if set_nonblocking(stream.as_raw_fd()).is_err() {
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        let mut conn = Conn::new(stream);
        conn.interest = EPOLLIN | EPOLLRDHUP;
        if self
            .epoll
            .add(conn.stream.as_raw_fd(), conn.interest, slot as u64)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.slab[slot] = Some(conn);
        self.stats.serve[self.idx]
            .open
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Handles one readiness event for a connection slot.
    fn drive(&mut self, slot: usize, ev: u32) {
        let Some(mut conn) = self.slab.get_mut(slot).and_then(Option::take) else {
            return; // stale event for an already-closed slot
        };
        if self.drive_conn(&mut conn, ev, slot) {
            self.slab[slot] = Some(conn);
        } else {
            self.discard(slot, conn);
        }
    }

    /// The per-event state machine. Returns false when the connection
    /// is finished (dropped by the caller, which closes the fd).
    fn drive_conn(&mut self, conn: &mut Conn, ev: u32, slot: usize) -> bool {
        if ev & (EPOLLHUP | EPOLLERR) != 0 {
            return false;
        }
        if ev & EPOLLOUT != 0 {
            if conn.flush().is_err() {
                return false;
            }
            if conn.read_paused && conn.should_resume(self.write_budget) {
                self.unpause(conn);
                // Bytes already sitting in the assembly buffer will not
                // re-trigger EPOLLIN (epoll only sees the socket), so
                // the parse loop must run again right here.
                if !self.process(conn) {
                    return false;
                }
            }
            if conn.close_after_flush && conn.buffered() == 0 {
                return false;
            }
        }
        if ev & (EPOLLIN | EPOLLRDHUP) != 0 && !conn.read_paused && !conn.close_after_flush {
            match conn.fill() {
                Err(_) => return false,
                Ok(outcome) => {
                    if !self.process(conn) {
                        return false;
                    }
                    if outcome == FillOutcome::Eof && !conn.close_after_flush {
                        if conn.buffered() == 0 {
                            return false;
                        }
                        // Responses are still queued: flush, then close.
                        conn.close_after_flush = true;
                    }
                    if conn.close_after_flush && conn.buffered() == 0 {
                        return false;
                    }
                }
            }
        }
        self.update_interest(conn, slot);
        true
    }

    /// Parses and serves every complete frame buffered on `conn`,
    /// pausing at the backpressure watermark. Returns false when the
    /// connection is finished.
    fn process(&mut self, conn: &mut Conn) -> bool {
        loop {
            if conn.close_after_flush {
                break;
            }
            if conn.should_pause(self.write_budget) {
                if !conn.read_paused {
                    conn.read_paused = true;
                    let g = &self.stats.serve[self.idx];
                    g.paused.fetch_add(1, Ordering::Relaxed);
                    g.backpressure.fetch_add(1, Ordering::Relaxed);
                }
                if conn.flush().is_err() {
                    return false;
                }
                if conn.should_resume(self.write_budget) {
                    self.unpause(conn);
                    continue;
                }
                break;
            }
            match conn.next_frame() {
                NextFrame::Pending => break,
                // An oversized length prefix closes the connection with
                // no reply — a length-prefixed stream cannot resync.
                NextFrame::Oversized => return false,
                NextFrame::Frame { start, len } => {
                    // Zero-copy hand-off: the request body stays in the
                    // assembly buffer and the response is encoded
                    // straight into the write buffer — the split borrow
                    // proves the two never alias.
                    let (body, wbuf) = conn.frame_and_wbuf(start, len);
                    if !self.engine.serve_frame(body, wbuf) {
                        // Answer sent (an Err frame is already queued);
                        // after a framing error the stream cannot be
                        // trusted. Frames already parsed were served;
                        // frames buffered behind the bad one are
                        // discarded with it.
                        conn.close_after_flush = true;
                    }
                }
            }
        }
        conn.compact();
        match conn.flush() {
            Err(_) => false,
            Ok(done) => !(conn.close_after_flush && done),
        }
    }

    fn unpause(&self, conn: &mut Conn) {
        conn.read_paused = false;
        self.stats.serve[self.idx]
            .paused
            .fetch_sub(1, Ordering::Relaxed);
    }

    /// Re-registers the fd's epoll interest if it changed: EPOLLIN
    /// while reads are allowed, EPOLLOUT while responses are buffered.
    fn update_interest(&self, conn: &mut Conn, slot: usize) {
        let mut want = 0u32;
        if !conn.read_paused && !conn.close_after_flush {
            want |= EPOLLIN | EPOLLRDHUP;
        }
        if conn.buffered() > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, slot as u64)
                .is_ok()
        {
            conn.interest = want;
        }
    }

    /// Closes a connection: epoll dereg (best-effort — closing the fd
    /// deregisters anyway), gauge updates, slot back on the free list.
    fn discard(&mut self, slot: usize, conn: Conn) {
        let _ = self.epoll.del(conn.stream.as_raw_fd());
        let g = &self.stats.serve[self.idx];
        g.open.fetch_sub(1, Ordering::Relaxed);
        if conn.read_paused {
            g.paused.fetch_sub(1, Ordering::Relaxed);
        }
        self.free.push(slot);
        // `conn` drops here, closing the socket.
    }
}

/// One worker's request-execution engine: the pinned store handle plus
/// every piece of reusable scratch a frame needs, factored out of the
/// reactor so tests can drive the exact serving path in-process (see
/// [`crate::testing`]) without sockets or epoll.
///
/// Steady-state point and BATCH frames run allocation-free: ops decode
/// into `batch_cmds`, partition into `batch_scratch`, verdicts land in
/// `batch_out`, and the response is encoded straight into the
/// connection's write buffer behind a reserved length prefix. All three
/// scratch vectors keep their capacity across frames.
struct Engine<'a> {
    worker: usize,
    store: &'a Store,
    stats: &'a ServerStats,
    handle: ShardedMapHandle<'a, u64, u64, Ebr>,
    fuse_batches: bool,
    flush_every: u32,
    ops_since_flush: u32,
    batch_cmds: Vec<BatchCmd<u64, u64>>,
    batch_scratch: BatchScratch,
    batch_out: Vec<BatchVerdict<u64>>,
}

impl<'a> Engine<'a> {
    fn new(
        worker: usize,
        store: &'a Store,
        stats: &'a ServerStats,
        fuse_batches: bool,
        flush_every: u32,
    ) -> Engine<'a> {
        Engine {
            worker,
            store,
            stats,
            handle: store.handle(),
            fuse_batches,
            flush_every: flush_every.max(1),
            ops_since_flush: 0,
            batch_cmds: Vec::new(),
            batch_scratch: BatchScratch::new(),
            batch_out: Vec::new(),
        }
    }

    /// Publishes the handle's batched stats and resets the sampling
    /// countdown (reactor idle tick / shutdown / test scrape).
    fn flush_stats(&mut self) {
        self.handle.flush_stats();
        self.ops_since_flush = 0;
    }

    /// Serves one request frame: decode → execute through the pinned
    /// handle → encode into `wbuf` behind a reserved length prefix, in
    /// arrival order (the pipelining ordering guarantee). Returns false
    /// on a malformed frame — an Err reply is queued and the caller
    /// must close the connection after flushing it.
    fn serve_frame(&mut self, body: &[u8], wbuf: &mut Vec<u8>) -> bool {
        self.stats.frames.fetch_add(1, Ordering::Relaxed);
        // BATCH frames take the fused fast path before a `Request` is
        // ever materialised: ops decode straight into reusable scratch,
        // skipping the per-frame `Vec<BatchOp>` the general path would
        // allocate.
        if body.first() == Some(&OP_BATCH) {
            self.serve_batch(body, wbuf)
        } else {
            self.serve_plain(body, wbuf)
        }
    }

    /// The BATCH fast path: decode into scratch, execute (fused or
    /// unrolled per config), encode verdicts in request order.
    fn serve_batch(&mut self, body: &[u8], wbuf: &mut Vec<u8>) -> bool {
        let t0 = Instant::now();
        self.batch_cmds.clear();
        let cmds = &mut self.batch_cmds;
        let decoded = wire::decode_batch_ops(body, |op| {
            cmds.push(match op {
                BatchOp::Get(k) => BatchCmd::Get(k),
                BatchOp::Insert(k, v) => BatchCmd::Insert(k, v),
                BatchOp::Remove(k) => BatchCmd::Remove(k),
            })
        });
        let t1 = Instant::now();
        if let Err(e) = decoded {
            return self.wire_error(&e, wbuf);
        }
        let n_ops = self.batch_cmds.len() as u64;
        self.stats.worker_ops[self.worker].fetch_add(n_ops, Ordering::Relaxed);
        self.ops_since_flush = self.ops_since_flush.saturating_add(n_ops as u32);
        if self.fuse_batches {
            self.handle.execute_batch(
                &self.batch_cmds,
                &mut self.batch_scratch,
                &mut self.batch_out,
            );
            self.stats
                .batch_fused_ops
                .fetch_add(n_ops, Ordering::Relaxed);
        } else {
            // A/B control arm: request order through the routing handle,
            // exactly what `execute` did before fusion.
            self.batch_out.clear();
            for cmd in &self.batch_cmds {
                self.batch_out.push(match cmd {
                    BatchCmd::Get(k) => match self.handle.get(k) {
                        Some(v) => BatchVerdict::Found(v),
                        None => BatchVerdict::Missing,
                    },
                    BatchCmd::Insert(k, v) => BatchVerdict::Added(self.handle.insert(*k, *v)),
                    BatchCmd::Remove(k) => BatchVerdict::Removed(self.handle.remove(k)),
                });
            }
            self.stats
                .batch_single_ops
                .fetch_add(n_ops, Ordering::Relaxed);
        }
        let t2 = Instant::now();
        let mark = wire::begin_frame(wbuf);
        wbuf.push(STATUS_OK);
        wbuf.extend_from_slice(&(self.batch_out.len() as u32).to_le_bytes());
        for v in &self.batch_out {
            wire::encode_batch_reply(
                wbuf,
                match *v {
                    BatchVerdict::Found(x) => BatchReply::Found(x),
                    BatchVerdict::Missing => BatchReply::Missing,
                    BatchVerdict::Added(b) => BatchReply::Added(b),
                    BatchVerdict::Removed(b) => BatchReply::Removed(b),
                },
            );
        }
        let frame_bytes = wire::end_frame(wbuf, mark) as u64 + 4;
        self.stats.note_encode(OP_BATCH, frame_bytes);
        let t3 = Instant::now();
        let key = self.batch_cmds.first().map_or(0, |c| *c.key());
        self.record(OP_BATCH, key, t0, t1, t2, t3);
        true
    }

    /// Every non-BATCH opcode: the `Request`/`Response` path, with the
    /// response encoded directly into `wbuf`.
    fn serve_plain(&mut self, body: &[u8], wbuf: &mut Vec<u8>) -> bool {
        let t0 = Instant::now();
        let decoded = Request::decode(body);
        let t1 = Instant::now();
        let req = match decoded {
            Ok(req) => req,
            Err(e) => return self.wire_error(&e, wbuf),
        };
        let ops = op_count(&req);
        self.stats.worker_ops[self.worker].fetch_add(ops, Ordering::Relaxed);
        self.ops_since_flush = self.ops_since_flush.saturating_add(ops as u32);
        let response = execute(&req, &mut self.handle, self.store, self.stats);
        let t2 = Instant::now();
        let mark = wire::begin_frame(wbuf);
        response.encode(wbuf);
        let frame_bytes = wire::end_frame(wbuf, mark) as u64 + 4;
        self.stats.note_encode(req.opcode(), frame_bytes);
        let t3 = Instant::now();
        self.record(req.opcode(), slow_key(&req), t0, t1, t2, t3);
        true
    }

    /// Queues an Err reply for a malformed frame and reports the
    /// connection unservable. Error bytes are not attributed to an
    /// opcode — the opcode is what failed to parse.
    fn wire_error(&mut self, e: &wire::WireError, wbuf: &mut Vec<u8>) -> bool {
        self.stats.wire_errors.fetch_add(1, Ordering::Relaxed);
        let mark = wire::begin_frame(wbuf);
        Response::Err(e.to_string()).encode(wbuf);
        wire::end_frame(wbuf, mark);
        false
    }

    /// Frame epilogue: phase timing, slow-frame capture, and the
    /// sampled stats flush.
    fn record(&mut self, opcode: u8, key: u64, t0: Instant, t1: Instant, t2: Instant, t3: Instant) {
        self.stats.record_frame(
            self.worker,
            opcode,
            key,
            [
                (t3 - t0).as_nanos() as u64,
                (t1 - t0).as_nanos() as u64,
                (t2 - t1).as_nanos() as u64,
                (t3 - t2).as_nanos() as u64,
            ],
        );
        if self.ops_since_flush >= self.flush_every {
            self.handle.flush_stats();
            self.ops_since_flush = 0;
        }
    }
}

/// Tree operations a request will route through the worker's handle.
fn op_count(req: &Request) -> u64 {
    match req {
        Request::Get(_) | Request::Insert(..) | Request::Remove(_) => 1,
        Request::Batch(ops) => ops.len() as u64,
        // SCAN/METRICS/PING/SLOWLOG read through the store front end,
        // not the pinned handle; they don't count toward handle-routed
        // ops.
        Request::Scan { .. } | Request::Metrics(_) | Request::Ping | Request::SlowLog { .. } => 0,
    }
}

/// The key a slow-frame record carries: the op's target when the
/// request has one obvious key, else 0. A batch frame reports its first
/// op's key — enough to find the offending trace in a replay log.
fn slow_key(req: &Request) -> u64 {
    match req {
        Request::Get(k) | Request::Insert(k, _) | Request::Remove(k) => *k,
        Request::Batch(ops) => match ops.first() {
            Some(BatchOp::Get(k) | BatchOp::Insert(k, _) | BatchOp::Remove(k)) => *k,
            None => 0,
        },
        Request::Scan { lo, .. } => *lo,
        Request::Metrics(_) | Request::Ping | Request::SlowLog { .. } => 0,
    }
}

fn execute(
    req: &Request,
    handle: &mut ShardedMapHandle<'_, u64, u64, Ebr>,
    store: &Store,
    stats: &ServerStats,
) -> Response {
    match req {
        Request::Get(k) => Response::Get(handle.get(k)),
        Request::Insert(k, v) => Response::Insert(handle.insert(*k, *v)),
        Request::Remove(k) => Response::Remove(handle.remove(k)),
        Request::Batch(ops) => {
            // Not reached from the reactor: BATCH frames are
            // intercepted by first byte and served through the engine's
            // fused scratch path before a `Request` is built. Kept so
            // `execute` stays total over `Request` for any future
            // non-reactor caller; executes in request order.
            let replies = ops
                .iter()
                .map(|op| match op {
                    BatchOp::Get(k) => match handle.get(k) {
                        Some(v) => BatchReply::Found(v),
                        None => BatchReply::Missing,
                    },
                    BatchOp::Insert(k, v) => BatchReply::Added(handle.insert(*k, *v)),
                    BatchOp::Remove(k) => BatchReply::Removed(handle.remove(k)),
                })
                .collect();
            Response::Batch(replies)
        }
        Request::Scan { lo, hi, max } => {
            let mut entries = store.range_collect(*lo..=*hi);
            let cap = if *max == 0 { usize::MAX } else { *max as usize };
            let truncated = entries.len() > cap;
            entries.truncate(cap);
            Response::Scan { entries, truncated }
        }
        Request::Metrics(fmt) => Response::Metrics(metrics_text(store, stats, *fmt)),
        Request::Ping => Response::Pong,
        Request::SlowLog { max } => {
            // Merge the two capture layers: the server's slow-frame
            // ring (origin 1, whole frames) and the trees' slow-op
            // rings (origin 0, already merged slowest-first by the
            // store snapshot). Slowest first, like the snapshot.
            let mut records = stats.slow_frames();
            records.extend_from_slice(&store.metrics().slow_ops);
            records.sort_by_key(|r| std::cmp::Reverse(r.ns));
            if *max != 0 {
                records.truncate(*max as usize);
            }
            Response::SlowLog(records)
        }
    }
}

/// The METRICS verb's payload: the aggregated tree snapshot (with the
/// fleet's serve gauges folded in) plus the server counters, in the
/// requested exposition format.
fn metrics_text(store: &Store, stats: &ServerStats, fmt: MetricsFormat) -> String {
    let mut snap = store.metrics();
    snap.serve = stats.serve_gauges();
    match fmt {
        MetricsFormat::Json => {
            let ops: Vec<String> = stats.worker_ops().iter().map(u64::to_string).collect();
            let per_worker = stats.worker_serve();
            let col = |f: fn(&ServeGauges) -> u64| -> String {
                per_worker
                    .iter()
                    .map(|g| f(g).to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            // Request timing: only opcodes that served frames, each as
            // {"wire":{...},"decode":{...},"execute":{...},"encode":{...}}
            // of compact histogram summaries.
            let timing: Vec<String> = stats
                .request_timing()
                .iter()
                .filter(|(_, p)| !p.wire.is_empty())
                .map(|(op, p)| {
                    let phases: Vec<String> = p
                        .by_phase()
                        .iter()
                        .map(|(phase, h)| format!("\"{phase}\":{}", h.summary_json()))
                        .collect();
                    format!("\"{op}\":{{{}}}", phases.join(","))
                })
                .collect();
            // Encode-bytes gauges: only opcodes that encoded anything,
            // mirroring the timing filter.
            let encoded: Vec<String> = stats
                .encode_bytes()
                .iter()
                .filter(|(_, b)| *b != 0)
                .map(|(op, b)| format!("\"{op}\":{b}"))
                .collect();
            format!(
                "{{\"tree\":{},\"server\":{{\"connections\":{},\"frames\":{},\
                 \"wire_errors\":{},\"batch_fused_ops\":{},\"batch_single_ops\":{},\
                 \"worker_ops\":[{}],\"encode_bytes\":{{{}}},\"timing\":{{{}}},\
                 \"slow_frames\":{},\"serve\":{{\"open_connections\":[{}],\
                 \"read_paused_connections\":[{}],\"write_buffered_bytes\":[{}],\
                 \"backpressure_events\":[{}]}}}}}}",
                snap.to_json(),
                stats.connections(),
                stats.frames(),
                stats.wire_errors(),
                stats.batch_fused_ops(),
                stats.batch_single_ops(),
                ops.join(","),
                encoded.join(","),
                timing.join(","),
                stats.slow_frames_deposited(),
                col(|g| g.open_connections),
                col(|g| g.read_paused_connections),
                col(|g| g.write_buffered_bytes),
                col(|g| g.backpressure_events),
            )
        }
        MetricsFormat::Prometheus => {
            let mut out = snap.to_prometheus();
            out.push_str("# HELP nmbst_server_connections_total Connections accepted.\n");
            out.push_str("# TYPE nmbst_server_connections_total counter\n");
            out.push_str(&format!(
                "nmbst_server_connections_total {}\n",
                stats.connections()
            ));
            out.push_str("# HELP nmbst_server_frames_total Request frames served.\n");
            out.push_str("# TYPE nmbst_server_frames_total counter\n");
            out.push_str(&format!("nmbst_server_frames_total {}\n", stats.frames()));
            out.push_str("# HELP nmbst_server_wire_errors_total Malformed frames.\n");
            out.push_str("# TYPE nmbst_server_wire_errors_total counter\n");
            out.push_str(&format!(
                "nmbst_server_wire_errors_total {}\n",
                stats.wire_errors()
            ));
            out.push_str(
                "# HELP nmbst_server_batch_fused_ops_total BATCH ops executed shard-fused \
                 (partition, per-shard sorted run, scatter).\n",
            );
            out.push_str("# TYPE nmbst_server_batch_fused_ops_total counter\n");
            out.push_str(&format!(
                "nmbst_server_batch_fused_ops_total {}\n",
                stats.batch_fused_ops()
            ));
            out.push_str(
                "# HELP nmbst_server_batch_single_ops_total BATCH ops executed unrolled in \
                 request order (fusion disabled).\n",
            );
            out.push_str("# TYPE nmbst_server_batch_single_ops_total counter\n");
            out.push_str(&format!(
                "nmbst_server_batch_single_ops_total {}\n",
                stats.batch_single_ops()
            ));
            // Encode-bytes counters: one labelled series per opcode that
            // has encoded a response; header only when at least one
            // exists (a declared metric with no samples fails
            // exposition validation).
            let encoded: Vec<_> = stats
                .encode_bytes()
                .into_iter()
                .filter(|(_, b)| *b != 0)
                .collect();
            if !encoded.is_empty() {
                out.push_str(
                    "# HELP nmbst_server_encode_bytes_total Response frame bytes encoded per \
                     opcode (body plus length prefix).\n",
                );
                out.push_str("# TYPE nmbst_server_encode_bytes_total counter\n");
                for (op, b) in encoded {
                    out.push_str(&format!(
                        "nmbst_server_encode_bytes_total{{op=\"{op}\"}} {b}\n"
                    ));
                }
            }
            out.push_str(
                "# HELP nmbst_server_worker_ops_total Tree ops routed through each worker's pinned handle.\n",
            );
            out.push_str("# TYPE nmbst_server_worker_ops_total counter\n");
            for (w, n) in stats.worker_ops().iter().enumerate() {
                out.push_str(&format!(
                    "nmbst_server_worker_ops_total{{worker=\"{w}\"}} {n}\n"
                ));
            }
            // Per-reactor connection gauges, one labelled series per
            // worker (the aggregate rides in the snapshot's
            // nmbst_serve_* family above).
            let per_worker = stats.worker_serve();
            let mut series = |name: &str, kind: &str, help: &str, f: fn(&ServeGauges) -> u64| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                for (w, g) in per_worker.iter().enumerate() {
                    out.push_str(&format!("{name}{{worker=\"{w}\"}} {}\n", f(g)));
                }
            };
            series(
                "nmbst_server_open_connections",
                "gauge",
                "Connections registered with each reactor worker.",
                |g| g.open_connections,
            );
            series(
                "nmbst_server_read_paused_connections",
                "gauge",
                "Connections read-paused by backpressure, per worker.",
                |g| g.read_paused_connections,
            );
            series(
                "nmbst_server_write_buffered_bytes",
                "gauge",
                "Buffered response bytes per worker.",
                |g| g.write_buffered_bytes,
            );
            series(
                "nmbst_server_backpressure_events_total",
                "counter",
                "Read-pause transitions per worker.",
                |g| g.backpressure_events,
            );
            // Request timing histograms: one series per served opcode
            // per phase. The HELP/TYPE header is emitted only when at
            // least one series exists — a declared metric with no
            // samples fails exposition validation.
            let timing = stats.request_timing();
            let served: Vec<_> = timing.iter().filter(|(_, p)| !p.wire.is_empty()).collect();
            if !served.is_empty() {
                out.push_str(
                    "# HELP nmbst_server_request_ns Request latency by opcode and phase (ns); \
                     phase=\"wire\" is the whole frame, decode/execute/encode partition it.\n",
                );
                out.push_str("# TYPE nmbst_server_request_ns histogram\n");
                for (op, p) in served {
                    for (phase, h) in p.by_phase() {
                        h.fmt_prometheus_series(
                            &mut out,
                            "nmbst_server_request_ns",
                            &format!("op=\"{op}\",phase=\"{phase}\""),
                        );
                    }
                }
            }
            out.push_str("# HELP nmbst_server_slow_frames_total Frames over the slow threshold.\n");
            out.push_str("# TYPE nmbst_server_slow_frames_total counter\n");
            out.push_str(&format!(
                "nmbst_server_slow_frames_total {}\n",
                stats.slow_frames_deposited()
            ));
            out
        }
    }
}

/// In-process driver for the exact serving path the reactors run —
/// frame bytes in, frame bytes out, through the same `Engine` —
/// without sockets, epoll, or threads. Exists for tests that need the
/// serve path on the *current* thread: chaos hooks are thread-local,
/// and the zero-allocation gate must measure the engine without reactor
/// noise. Not a public API; hidden from docs and exempt from semver.
pub mod testing {
    use super::*;

    /// One worker's `Engine` over a private store, driven directly.
    pub struct LocalEngine<'a> {
        engine: Engine<'a>,
    }

    impl LocalEngine<'_> {
        /// Serves one request body (no length prefix), appending the
        /// length-prefixed response frame to `out` — exactly what the
        /// reactor queues on the connection. Returns false on a wire
        /// error (the reactor would close the connection after
        /// flushing the Err frame this queued).
        pub fn serve(&mut self, body: &[u8], out: &mut Vec<u8>) -> bool {
            self.engine.serve_frame(body, out)
        }

        /// The engine's server counters.
        pub fn stats(&self) -> &ServerStats {
            self.engine.stats
        }

        /// The backing store (for out-of-band verification).
        pub fn store(&self) -> &Store {
            self.engine.store
        }

        /// Flushes the handle's batched stats and snapshots the store's
        /// metrics — finger hits/misses included.
        pub fn metrics(&mut self) -> nmbst::obs::MetricsSnapshot {
            self.engine.flush_stats();
            self.engine.store.metrics()
        }
    }

    /// Runs `f` with a [`LocalEngine`] over a fresh `shards`-way store.
    /// Slow-frame capture is disabled (threshold 0) and the stats flush
    /// interval is effectively infinite, so `serve` does only what a
    /// steady-state reactor frame does.
    pub fn with_local_engine<T>(
        shards: usize,
        fuse_batches: bool,
        f: impl FnOnce(&mut LocalEngine<'_>) -> T,
    ) -> T {
        let store = Store::with_config(shards.max(1), TreeConfig::default());
        let stats = ServerStats::new(1, 0);
        let mut local = LocalEngine {
            engine: Engine::new(0, &store, &stats, fuse_batches, u32::MAX),
        };
        f(&mut local)
    }
}
