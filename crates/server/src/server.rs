//! The serving loop: a std `TcpListener` shared by thread-per-core
//! workers, each serving one connection at a time through a pinned
//! per-shard [`ShardedMapHandle`].
//!
//! Worker/handle pinning is the design's point: a worker thread owns
//! one `ShardedMapHandle` per *connection* — one pin-amortizing
//! [`nmbst::MapHandle`] per shard — so every descent that worker makes
//! into a given shard reuses that shard's guard, seek record, and node
//! cache, all resident in the worker's core cache. There is no
//! cross-worker handle sharing and therefore no handle synchronization.
//!
//! Concurrency model: `workers` threads block in `accept()` on one
//! shared listener (the kernel load-balances) and serve their accepted
//! connection to completion before accepting again. Clients beyond the
//! worker count wait in the accept backlog — the tier is sized for a
//! small fixed fleet of long-lived connections (the replay harness and
//! tests connect exactly `workers` clients), not for C10K fan-in.
//!
//! Shutdown: a stop flag plus self-connections to wake blocked
//! `accept()`s, and a 100 ms read timeout so workers parked in an idle
//! connection notice the flag. The read-timeout tick doubles as the
//! stats sampling tick: workers `flush_stats()` their handles there and
//! every `flush_every` ops, which is what keeps the METRICS verb's view
//! of in-flight workers honest (the `flush_stats` bugfix this PR ships).

use crate::wire::{
    op_name, read_frame, write_frame, BatchOp, BatchReply, MetricsFormat, Request, Response,
    OP_COUNT,
};
use nmbst::obs::slow::SlowRing;
use nmbst::obs::{Histogram, SlowOp, SLOW_EVENTS};
use nmbst::{Ebr, ShardedMap, ShardedMapHandle, TreeConfig};
use nmbst_sync::CachePadded;
use std::io::{self, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The store the tier serves: `u64 → u64` over epoch-reclaimed sharded
/// trees. Fixed-width keys keep the wire protocol trivial; richer
/// payloads belong in a layer above.
pub type Store = ShardedMap<u64, u64, Ebr>;

/// Everything tunable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads, each serving one connection at a time. Defaults
    /// to the machine's available parallelism (thread-per-core).
    pub workers: usize,
    /// Tree shards in the store; `0` (default) means one per worker.
    pub shards: usize,
    /// Configuration for every shard's tree.
    pub tree: TreeConfig,
    /// Ops between a worker's `flush_stats` sampling ticks.
    pub flush_every: u32,
    /// Frames whose full wire time (request read → response flushed)
    /// meets this threshold deposit a server-origin [`SlowOp`] into the
    /// server's slow ring (served by the SLOWLOG verb). `0` disables
    /// capture. Default 1 ms.
    pub slow_frame_ns: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards: 0,
            tree: TreeConfig::default(),
            flush_every: 1024,
            slow_frame_ns: 1_000_000,
        }
    }
}

/// Records the server-level slow-frame ring retains.
const SERVER_SLOW_CAP: usize = 128;

/// Per-phase latency histograms for one request opcode: where a frame's
/// wall time went. `wire` is the whole frame (request read → response
/// flushed); `decode`/`execute`/`encode` partition its interior (encode
/// includes the write and flush), so `wire ≈ decode + execute + encode`
/// per frame — the breakdown that tells a slow-frame investigation
/// whether the store or the socket is the problem.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseHists {
    /// Full frame: request read complete → response flushed.
    pub wire: Histogram,
    /// `Request::decode` time.
    pub decode: Histogram,
    /// Store execution time (the tree/batch/scan work).
    pub execute: Histogram,
    /// `Response::encode` + frame write + flush time.
    pub encode: Histogram,
}

impl PhaseHists {
    /// The phase histograms with their exposition labels, in fixed
    /// order.
    pub fn by_phase(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("wire", &self.wire),
            ("decode", &self.decode),
            ("execute", &self.execute),
            ("encode", &self.encode),
        ]
    }

    fn merge(&mut self, other: &PhaseHists) {
        self.wire.merge(&other.wire);
        self.decode.merge(&other.decode);
        self.execute.merge(&other.execute);
        self.encode.merge(&other.encode);
    }
}

/// One worker's request timing: a [`PhaseHists`] per opcode, indexed by
/// `opcode - 1`. Behind a per-worker mutex that only the owning worker
/// (per frame) and scrapes (rarely) take — never contended on the
/// serving path, so the lock costs an uncontended CAS per frame.
struct WorkerTiming {
    ops: [PhaseHists; OP_COUNT],
}

impl WorkerTiming {
    fn new() -> Self {
        WorkerTiming {
            ops: std::array::from_fn(|_| PhaseHists::default()),
        }
    }
}

/// Server-level counters, one step above the store's tree metrics.
/// Worker op counts are cache-padded like the tree's own counter shards
/// — workers must not ping-pong a stats line while serving.
#[derive(Debug)]
pub struct ServerStats {
    worker_ops: Box<[CachePadded<AtomicU64>]>,
    connections: AtomicU64,
    frames: AtomicU64,
    wire_errors: AtomicU64,
    timing: Box<[Mutex<WorkerTiming>]>,
    slow: SlowRing,
    slow_frame_ns: u64,
}

impl std::fmt::Debug for WorkerTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTiming").finish_non_exhaustive()
    }
}

impl ServerStats {
    fn new(workers: usize, slow_frame_ns: u64) -> Self {
        ServerStats {
            worker_ops: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            wire_errors: AtomicU64::new(0),
            timing: (0..workers)
                .map(|_| Mutex::new(WorkerTiming::new()))
                .collect(),
            slow: SlowRing::new(SERVER_SLOW_CAP),
            slow_frame_ns,
        }
    }

    /// One served frame's timing: records the four phase durations into
    /// the worker's per-opcode histograms and deposits a slow-frame
    /// record when the wire time crosses the configured threshold.
    fn record_frame(&self, worker: usize, opcode: u8, key: u64, ns: [u64; 4]) {
        let [wire, decode, execute, encode] = ns;
        {
            let mut t = self.timing[worker]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let p = &mut t.ops[usize::from(opcode - 1).min(OP_COUNT - 1)];
            p.wire.record(wire);
            p.decode.record(decode);
            p.execute.record(execute);
            p.encode.record(encode);
        }
        if self.slow_frame_ns != 0 && wire >= self.slow_frame_ns {
            self.slow.push(SlowOp {
                kind: opcode,
                origin: 1,
                n_events: 0,
                key,
                ns: wire,
                events: [0; SLOW_EVENTS],
            });
        }
    }

    /// Per-opcode request timing merged across workers, labelled with
    /// the opcode's exposition name, in opcode order. Opcodes that have
    /// served no frames are included (empty histograms).
    pub fn request_timing(&self) -> Vec<(&'static str, PhaseHists)> {
        let mut merged: Vec<PhaseHists> = (0..OP_COUNT).map(|_| PhaseHists::default()).collect();
        for w in self.timing.iter() {
            let t = w.lock().unwrap_or_else(|e| e.into_inner());
            for (dst, src) in merged.iter_mut().zip(t.ops.iter()) {
                dst.merge(src);
            }
        }
        merged
            .into_iter()
            .enumerate()
            .map(|(i, p)| (op_name(i as u8 + 1), p))
            .collect()
    }

    /// The full-frame (wire) latency histogram for one opcode, merged
    /// across workers — e.g. `wire::OP_BATCH` for the replay bench's
    /// server-vs-client percentile cross-check.
    pub fn wire_hist(&self, opcode: u8) -> Histogram {
        let mut h = Histogram::new();
        if opcode == 0 || usize::from(opcode) > OP_COUNT {
            return h;
        }
        for w in self.timing.iter() {
            let t = w.lock().unwrap_or_else(|e| e.into_inner());
            h.merge(&t.ops[usize::from(opcode - 1)].wire);
        }
        h
    }

    /// The server-origin slow-frame records currently retained, oldest
    /// first (the SLOWLOG verb merges these with the store's
    /// tree-origin records and sorts slowest-first).
    pub fn slow_frames(&self) -> Vec<SlowOp> {
        self.slow.snapshot()
    }

    /// Total slow frames ever deposited (including ones the ring has
    /// since overwritten).
    pub fn slow_frames_deposited(&self) -> u64 {
        self.slow.deposited()
    }

    /// Tree operations each worker has routed through its pinned
    /// handles, index-aligned with worker threads. The replay gate
    /// hard-fails if any entry is zero — a worker that served traffic
    /// without touching its handle means the pinning is broken.
    pub fn worker_ops(&self) -> Vec<u64> {
        self.worker_ops
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Connections accepted over the server's lifetime.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Request frames served.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Malformed frames (connection dropped after each).
    pub fn wire_errors(&self) -> u64 {
        self.wire_errors.load(Ordering::Relaxed)
    }
}

/// A running serving tier over one [`Store`].
///
/// # Examples
///
/// ```
/// use nmbst_server::{Client, Server, ServerConfig};
///
/// let server = Server::start(ServerConfig {
///     workers: 2,
///     ..ServerConfig::default()
/// })
/// .unwrap();
/// let mut client = Client::connect(server.addr()).unwrap();
/// assert!(client.insert(7, 70).unwrap());
/// assert_eq!(client.get(&7).unwrap(), Some(70));
/// drop(client);
/// server.shutdown();
/// ```
pub struct Server {
    addr: SocketAddr,
    store: Arc<Store>,
    stats: Arc<ServerStats>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and spawns the workers; serving begins before this returns.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let workers = config.workers.max(1);
        let shards = if config.shards == 0 {
            workers
        } else {
            config.shards
        };
        let listener = Arc::new(TcpListener::bind(&config.addr)?);
        let addr = listener.local_addr()?;
        let store = Arc::new(Store::with_config(shards, config.tree));
        let stats = Arc::new(ServerStats::new(workers, config.slow_frame_ns));
        let stop = Arc::new(AtomicBool::new(false));

        let handles = (0..workers)
            .map(|w| {
                let listener = Arc::clone(&listener);
                let store = Arc::clone(&store);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let flush_every = config.flush_every.max(1);
                std::thread::Builder::new()
                    .name(format!("nmbst-worker-{w}"))
                    .spawn(move || worker_loop(w, &listener, &store, &stats, &stop, flush_every))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(Server {
            addr,
            store,
            stats,
            stop,
            workers: handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store being served (e.g. for out-of-band verification).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Server-level counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// A shared handle to the counters that outlives the server — lets
    /// a bench snapshot request timing *after* `shutdown` has joined
    /// the workers, when every frame's record is certainly published.
    pub fn stats_arc(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Aggregated store metrics — the same snapshot the METRICS verb
    /// serves, minus the server counters.
    pub fn metrics(&self) -> nmbst::obs::MetricsSnapshot {
        self.store.metrics()
    }

    /// Stops accepting, wakes every worker, and joins them. Established
    /// connections are drained: a worker finishes its current request,
    /// then notices the flag on its next read tick and closes.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake workers blocked in accept(): each dummy connection
        // unblocks exactly one accept, which then observes the flag.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn worker_loop(
    idx: usize,
    listener: &TcpListener,
    store: &Store,
    stats: &ServerStats,
    stop: &AtomicBool,
    flush_every: u32,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return; // the wake-up dummy connection
                }
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // A broken connection only kills itself, not the worker.
                let _ = serve_conn(idx, stream, store, stats, stop, flush_every);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Listener failure: nothing to serve anymore.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn serve_conn(
    idx: usize,
    stream: TcpStream,
    store: &Store,
    stats: &ServerStats,
    stop: &AtomicBool,
    flush_every: u32,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let mut handle = store.handle();
    let mut in_body = Vec::new();
    let mut out_body = Vec::new();
    let mut ops_since_flush: u32 = 0;

    loop {
        match read_frame(&mut reader, &mut in_body) {
            Ok(true) => {}
            Ok(false) => break, // client closed
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle tick: publish batched stats, bail if shutting down.
                handle.flush_stats();
                ops_since_flush = 0;
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break, // desync/EOF mid-frame: drop the connection
        }
        stats.frames.fetch_add(1, Ordering::Relaxed);

        // Frame timing: t0 (request read) → decode → t1 → execute → t2
        // → encode/write/flush → t3. Four Instant reads per frame is
        // noise against a network round trip; recording happens once
        // per frame under the worker's own uncontended timing lock.
        let t0 = Instant::now();
        let decoded = Request::decode(&in_body);
        let t1 = Instant::now();
        match decoded {
            Ok(req) => {
                let ops = op_count(&req);
                stats.worker_ops[idx].fetch_add(ops, Ordering::Relaxed);
                ops_since_flush = ops_since_flush.saturating_add(ops as u32);
                let response = execute(&req, &mut handle, store, stats);
                let t2 = Instant::now();
                out_body.clear();
                response.encode(&mut out_body);
                write_frame(&mut writer, &out_body)?;
                writer.flush()?;
                let t3 = Instant::now();
                stats.record_frame(
                    idx,
                    req.opcode(),
                    slow_key(&req),
                    [
                        (t3 - t0).as_nanos() as u64,
                        (t1 - t0).as_nanos() as u64,
                        (t2 - t1).as_nanos() as u64,
                        (t3 - t2).as_nanos() as u64,
                    ],
                );
            }
            Err(e) => {
                stats.wire_errors.fetch_add(1, Ordering::Relaxed);
                // Answer, then drop the connection: after a framing
                // error the stream cannot be trusted.
                out_body.clear();
                Response::Err(e.to_string()).encode(&mut out_body);
                write_frame(&mut writer, &out_body)?;
                writer.flush()?;
                break;
            }
        }

        if ops_since_flush >= flush_every {
            handle.flush_stats();
            ops_since_flush = 0;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    handle.flush_stats();
    Ok(())
}

/// Tree operations a request will route through the worker's handle.
fn op_count(req: &Request) -> u64 {
    match req {
        Request::Get(_) | Request::Insert(..) | Request::Remove(_) => 1,
        Request::Batch(ops) => ops.len() as u64,
        // SCAN/METRICS/PING/SLOWLOG read through the store front end,
        // not the pinned handle; they don't count toward handle-routed
        // ops.
        Request::Scan { .. } | Request::Metrics(_) | Request::Ping | Request::SlowLog { .. } => 0,
    }
}

/// The key a slow-frame record carries: the op's target when the
/// request has one obvious key, else 0. A batch frame reports its first
/// op's key — enough to find the offending trace in a replay log.
fn slow_key(req: &Request) -> u64 {
    match req {
        Request::Get(k) | Request::Insert(k, _) | Request::Remove(k) => *k,
        Request::Batch(ops) => match ops.first() {
            Some(BatchOp::Get(k) | BatchOp::Insert(k, _) | BatchOp::Remove(k)) => *k,
            None => 0,
        },
        Request::Scan { lo, .. } => *lo,
        Request::Metrics(_) | Request::Ping | Request::SlowLog { .. } => 0,
    }
}

fn execute(
    req: &Request,
    handle: &mut ShardedMapHandle<'_, u64, u64, Ebr>,
    store: &Store,
    stats: &ServerStats,
) -> Response {
    match req {
        Request::Get(k) => Response::Get(handle.get(k)),
        Request::Insert(k, v) => Response::Insert(handle.insert(*k, *v)),
        Request::Remove(k) => Response::Remove(handle.remove(k)),
        Request::Batch(ops) => {
            // Executed in request order through the pinned handles —
            // no shard-partitioned reordering, because the reply array
            // must line up with the request and a client may care about
            // op order within a session.
            let replies = ops
                .iter()
                .map(|op| match op {
                    BatchOp::Get(k) => match handle.get(k) {
                        Some(v) => BatchReply::Found(v),
                        None => BatchReply::Missing,
                    },
                    BatchOp::Insert(k, v) => BatchReply::Added(handle.insert(*k, *v)),
                    BatchOp::Remove(k) => BatchReply::Removed(handle.remove(k)),
                })
                .collect();
            Response::Batch(replies)
        }
        Request::Scan { lo, hi, max } => {
            let mut entries = store.range_collect(*lo..=*hi);
            let cap = if *max == 0 { usize::MAX } else { *max as usize };
            let truncated = entries.len() > cap;
            entries.truncate(cap);
            Response::Scan { entries, truncated }
        }
        Request::Metrics(fmt) => Response::Metrics(metrics_text(store, stats, *fmt)),
        Request::Ping => Response::Pong,
        Request::SlowLog { max } => {
            // Merge the two capture layers: the server's slow-frame
            // ring (origin 1, whole frames) and the trees' slow-op
            // rings (origin 0, already merged slowest-first by the
            // store snapshot). Slowest first, like the snapshot.
            let mut records = stats.slow_frames();
            records.extend_from_slice(&store.metrics().slow_ops);
            records.sort_by_key(|r| std::cmp::Reverse(r.ns));
            if *max != 0 {
                records.truncate(*max as usize);
            }
            Response::SlowLog(records)
        }
    }
}

/// The METRICS verb's payload: the aggregated tree snapshot plus the
/// server counters, in the requested exposition format.
fn metrics_text(store: &Store, stats: &ServerStats, fmt: MetricsFormat) -> String {
    let snap = store.metrics();
    match fmt {
        MetricsFormat::Json => {
            let ops: Vec<String> = stats.worker_ops().iter().map(u64::to_string).collect();
            // Request timing: only opcodes that served frames, each as
            // {"wire":{...},"decode":{...},"execute":{...},"encode":{...}}
            // of compact histogram summaries.
            let timing: Vec<String> = stats
                .request_timing()
                .iter()
                .filter(|(_, p)| !p.wire.is_empty())
                .map(|(op, p)| {
                    let phases: Vec<String> = p
                        .by_phase()
                        .iter()
                        .map(|(phase, h)| format!("\"{phase}\":{}", h.summary_json()))
                        .collect();
                    format!("\"{op}\":{{{}}}", phases.join(","))
                })
                .collect();
            format!(
                "{{\"tree\":{},\"server\":{{\"connections\":{},\"frames\":{},\
                 \"wire_errors\":{},\"worker_ops\":[{}],\"timing\":{{{}}},\
                 \"slow_frames\":{}}}}}",
                snap.to_json(),
                stats.connections(),
                stats.frames(),
                stats.wire_errors(),
                ops.join(","),
                timing.join(","),
                stats.slow_frames_deposited(),
            )
        }
        MetricsFormat::Prometheus => {
            let mut out = snap.to_prometheus();
            out.push_str("# HELP nmbst_server_connections_total Connections accepted.\n");
            out.push_str("# TYPE nmbst_server_connections_total counter\n");
            out.push_str(&format!(
                "nmbst_server_connections_total {}\n",
                stats.connections()
            ));
            out.push_str("# HELP nmbst_server_frames_total Request frames served.\n");
            out.push_str("# TYPE nmbst_server_frames_total counter\n");
            out.push_str(&format!("nmbst_server_frames_total {}\n", stats.frames()));
            out.push_str("# HELP nmbst_server_wire_errors_total Malformed frames.\n");
            out.push_str("# TYPE nmbst_server_wire_errors_total counter\n");
            out.push_str(&format!(
                "nmbst_server_wire_errors_total {}\n",
                stats.wire_errors()
            ));
            out.push_str(
                "# HELP nmbst_server_worker_ops_total Tree ops routed through each worker's pinned handle.\n",
            );
            out.push_str("# TYPE nmbst_server_worker_ops_total counter\n");
            for (w, n) in stats.worker_ops().iter().enumerate() {
                out.push_str(&format!(
                    "nmbst_server_worker_ops_total{{worker=\"{w}\"}} {n}\n"
                ));
            }
            // Request timing histograms: one series per served opcode
            // per phase. The HELP/TYPE header is emitted only when at
            // least one series exists — a declared metric with no
            // samples fails exposition validation.
            let timing = stats.request_timing();
            let served: Vec<_> = timing.iter().filter(|(_, p)| !p.wire.is_empty()).collect();
            if !served.is_empty() {
                out.push_str(
                    "# HELP nmbst_server_request_ns Request latency by opcode and phase (ns); \
                     phase=\"wire\" is the whole frame, decode/execute/encode partition it.\n",
                );
                out.push_str("# TYPE nmbst_server_request_ns histogram\n");
                for (op, p) in served {
                    for (phase, h) in p.by_phase() {
                        h.fmt_prometheus_series(
                            &mut out,
                            "nmbst_server_request_ns",
                            &format!("op=\"{op}\",phase=\"{phase}\""),
                        );
                    }
                }
            }
            out.push_str("# HELP nmbst_server_slow_frames_total Frames over the slow threshold.\n");
            out.push_str("# TYPE nmbst_server_slow_frames_total counter\n");
            out.push_str(&format!(
                "nmbst_server_slow_frames_total {}\n",
                stats.slow_frames_deposited()
            ));
            out
        }
    }
}
