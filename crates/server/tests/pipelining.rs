//! End-to-end tests for the reactor serving model: pipelined requests,
//! partial frames dribbled across epoll wakeups, frames straddling the
//! size limit, fault isolation between interleaved connections, and
//! backpressure pause/recovery with its gauges.

use nmbst_server::wire::{write_frame, BatchOp, BatchReply, Request, Response, MAX_FRAME};
use nmbst_server::{Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(workers: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Reads one length-prefixed reply frame off a raw socket.
fn read_reply(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("reply length prefix");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body).expect("reply body");
    body
}

/// Polls `cond` for up to two seconds — gauges move on reactor loop
/// boundaries, not synchronously with client-side syscalls.
fn eventually(mut cond: impl FnMut() -> bool, what: &str) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(2), "timed out: {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A mixed pipelined burst comes back as exactly the right responses in
/// request order — the protocol has no request IDs, so order *is* the
/// correlation contract.
#[test]
fn pipeline_matches_responses_by_order() {
    let server = start(2);
    let mut c = Client::connect(server.addr()).unwrap();
    let reqs = vec![
        Request::Ping,
        Request::Insert(1, 10),
        Request::Insert(1, 11), // duplicate → rejected
        Request::Get(1),
        Request::Batch(vec![BatchOp::Insert(2, 20), BatchOp::Get(2)]),
        Request::Remove(1),
        Request::Get(1),
        Request::Scan {
            lo: 0,
            hi: u64::MAX,
            max: 0,
        },
    ];
    let responses = c.pipeline(&reqs).unwrap();
    assert_eq!(
        responses,
        vec![
            Response::Pong,
            Response::Insert(true),
            Response::Insert(false),
            Response::Get(Some(10)),
            Response::Batch(vec![BatchReply::Added(true), BatchReply::Found(20)]),
            Response::Remove(true),
            Response::Get(None),
            Response::Scan {
                entries: vec![(2, 20)],
                truncated: false,
            },
        ]
    );
    // A window of 1 degenerates to the blocking path; same answers.
    assert_eq!(
        c.pipeline_with_window(&[Request::Get(2), Request::Get(3)], 1)
            .unwrap(),
        vec![Response::Get(Some(20)), Response::Get(None)]
    );
    drop(c);
    server.shutdown();
}

/// A frame dribbled one byte at a time — each byte its own epoll wakeup
/// — must assemble and serve exactly like a whole one, including when
/// the *next* frame's first bytes ride in the same segment as the
/// previous frame's tail.
#[test]
fn frame_dribbled_byte_by_byte_is_served() {
    let server = start(1);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_nodelay(true).unwrap();

    // INSERT(7, 70) then GET(7), encoded as one byte stream, dribbled.
    let mut wire = Vec::new();
    for req in [Request::Insert(7, 70), Request::Get(7)] {
        let mut body = Vec::new();
        req.encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
    }
    for chunk in wire.chunks(1) {
        raw.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let insert_reply = read_reply(&mut raw);
    assert_eq!(insert_reply[0], 0x00, "status OK: {insert_reply:?}");
    let get_reply = read_reply(&mut raw);
    assert_eq!(get_reply[0], 0x00, "status OK: {get_reply:?}");
    drop(raw);

    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.get(&7).unwrap(), Some(70), "the dribbled insert landed");
    drop(c);
    server.shutdown();
}

/// Two connections pipelining concurrently against the same server
/// never see each other's responses (per-connection FIFO, not global).
#[test]
fn interleaved_pipelined_connections_stay_isolated() {
    const PER: u64 = 500;
    let server = start(2);
    std::thread::scope(|s| {
        for lane in 0..2u64 {
            let addr = server.addr();
            s.spawn(move || {
                let base = lane * 10_000;
                let mut c = Client::connect(addr).unwrap();
                let inserts: Vec<Request> = (0..PER)
                    .map(|i| Request::Insert(base + i, base + i))
                    .collect();
                for r in c.pipeline(&inserts).unwrap() {
                    assert_eq!(r, Response::Insert(true), "lane {lane}");
                }
                let gets: Vec<Request> = (0..PER).map(|i| Request::Get(base + i)).collect();
                for (i, r) in c.pipeline(&gets).unwrap().into_iter().enumerate() {
                    assert_eq!(r, Response::Get(Some(base + i as u64)), "lane {lane}");
                }
            });
        }
    });
    server.shutdown();
}

/// A length prefix announcing more than [`MAX_FRAME`], arriving split
/// across writes (the prefix itself straddles a read boundary), closes
/// the connection with no reply — and no wire-error count, because no
/// frame was ever decoded.
#[test]
fn oversized_prefix_straddling_reads_closes_silently() {
    let server = start(1);
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let prefix = ((MAX_FRAME as u32) + 1).to_le_bytes();
    raw.write_all(&prefix[..2]).unwrap();
    std::thread::sleep(Duration::from_millis(20)); // two epoll wakeups
    raw.write_all(&prefix[2..]).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert!(reply.is_empty(), "oversized frames get no reply: {reply:?}");
    drop(raw);

    // A frame of exactly MAX_FRAME announced is fine to *announce*; it
    // only has to arrive. (Decode then rejects the garbage body with an
    // ERR reply — the boundary is a frame-size limit, not a crash.)
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&(MAX_FRAME as u32).to_le_bytes()).unwrap();
    raw.write_all(&vec![0xAB; MAX_FRAME]).unwrap();
    let reply = read_reply(&mut raw);
    assert_eq!(
        reply[0],
        0x01,
        "status ERR: {:?}",
        &reply[..8.min(reply.len())]
    );
    drop(raw);

    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    assert_eq!(
        server.stats().wire_errors(),
        1,
        "only the decoded-garbage frame counts as a wire error"
    );
    drop(c);
    server.shutdown();
}

/// A connection that earns ERR-and-close mid-stream cannot desync its
/// neighbor: a concurrently pipelining connection still gets every
/// response, in order, with the right payloads.
#[test]
fn err_and_close_does_not_desync_neighbor() {
    let server = start(1); // one worker: both connections share a reactor
    let addr = server.addr();
    std::thread::scope(|s| {
        let victim = s.spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let reqs: Vec<Request> = (0..2_000).map(|i| Request::Insert(i, i)).collect();
            for r in c.pipeline(&reqs).unwrap() {
                assert_eq!(r, Response::Insert(true));
            }
            let gets: Vec<Request> = (0..2_000).map(Request::Get).collect();
            for (i, r) in c.pipeline(&gets).unwrap().into_iter().enumerate() {
                assert_eq!(r, Response::Get(Some(i as u64)));
            }
        });
        s.spawn(move || {
            // Valid PING, then a garbage opcode, then a frame the server
            // must never answer (the ERR closes the connection first).
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.set_nodelay(true).unwrap();
            let mut wire = Vec::new();
            let mut body = Vec::new();
            Request::Ping.encode(&mut body);
            write_frame(&mut wire, &body).unwrap();
            write_frame(&mut wire, &[0xFF, 0x00, 0x01]).unwrap();
            body.clear();
            Request::Get(1).encode(&mut body);
            write_frame(&mut wire, &body).unwrap();
            raw.write_all(&wire).unwrap();
            let pong = read_reply(&mut raw);
            assert_eq!(pong[0], 0x00, "the frame before the fault is served");
            let err = read_reply(&mut raw);
            assert_eq!(err[0], 0x01, "the fault gets an ERR");
            let mut rest = Vec::new();
            raw.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "nothing after ERR-and-close: {rest:?}");
        });
        victim.join().unwrap();
    });
    assert_eq!(server.stats().wire_errors(), 1);
    server.shutdown();
}

/// Filling a connection's write budget pauses its reads (gauges +
/// counter say so), and draining the responses un-pauses it with no
/// bytes lost — backpressure is flow control, not failure.
#[test]
fn backpressure_pauses_reads_and_recovers() {
    const KEYS: u64 = 4_000; // ≈64 KiB per SCAN response
    const SCANS: usize = 128; // ≈8 MiB total — far beyond socket buffers
    let server = Server::start(ServerConfig {
        workers: 1,
        write_budget: 8 * 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let ops: Vec<BatchOp> = (0..KEYS).map(|k| BatchOp::Insert(k, k)).collect();
    c.batch(&ops).unwrap();
    drop(c);

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    let mut body = Vec::new();
    for _ in 0..SCANS {
        body.clear();
        Request::Scan {
            lo: 0,
            hi: u64::MAX,
            max: 0,
        }
        .encode(&mut body);
        write_frame(&mut wire, &body).unwrap();
    }
    raw.write_all(&wire).unwrap();

    // Don't read: the server's write buffer must cross the budget and
    // pause the connection (socket buffers can't absorb 8 MiB).
    // Early pauses can be transient (a flush into still-empty socket
    // buffers un-pauses immediately); once the socket truly fills, the
    // connection sticks at paused-with-buffered-bytes until we read.
    let stats = server.stats();
    eventually(
        || {
            let g = stats.serve_gauges();
            g.read_paused_connections == 1 && g.write_buffered_bytes > 0
        },
        "connection never stuck read-paused under an unread 8 MiB backlog",
    );
    let mid = stats.serve_gauges();
    assert!(mid.backpressure_events >= 1, "{mid:?}");
    assert_eq!(mid.open_connections, 1, "{mid:?}");

    // Drain everything: every response intact, in order, status OK.
    for i in 0..SCANS {
        let reply = read_reply(&mut raw);
        assert_eq!(reply[0], 0x00, "scan {i} status");
        assert_eq!(
            u32::from_le_bytes(reply[1..5].try_into().unwrap()) as u64,
            KEYS,
            "scan {i} entry count"
        );
    }
    // With its backlog drained the connection un-pauses and its buffer
    // empties; closing it zeroes the open-connections gauge.
    eventually(
        || {
            let g = stats.serve_gauges();
            g.read_paused_connections == 0 && g.write_buffered_bytes == 0
        },
        "gauges never recovered after the drain",
    );
    drop(raw);
    eventually(
        || stats.serve_gauges().open_connections == 0,
        "open-connections gauge never saw the close",
    );
    server.shutdown();
}
