//! End-to-end tests over loopback: protocol semantics against a model,
//! concurrent clients, metrics exposition, malformed-frame handling,
//! and clean shutdown.

use nmbst_server::wire::{BatchOp, BatchReply, MetricsFormat};
use nmbst_server::{Client, Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

fn start(workers: usize) -> Server {
    Server::start(ServerConfig {
        workers,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// SplitMix64, the workspace's seeded-test idiom.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[test]
fn point_ops_match_model() {
    let server = start(1);
    let mut c = Client::connect(server.addr()).unwrap();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = Rng(0xE2E);
    c.ping().unwrap();
    for _ in 0..2_000 {
        let r = rng.next();
        let k = r % 256;
        match r % 3 {
            0 => {
                let added = c.insert(k, r).unwrap();
                assert_eq!(added, !model.contains_key(&k), "insert {k}");
                model.entry(k).or_insert(r);
            }
            1 => {
                let removed = c.remove(&k).unwrap();
                assert_eq!(removed, model.remove(&k).is_some(), "remove {k}");
            }
            _ => assert_eq!(c.get(&k).unwrap(), model.get(&k).copied(), "get {k}"),
        }
    }
    // SCAN agrees with the model, ascending.
    let (entries, truncated) = c.scan(0, u64::MAX, 0).unwrap();
    assert!(!truncated);
    assert_eq!(
        entries,
        model.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
    );
    drop(c);
    server.shutdown();
}

#[test]
fn batch_replies_line_up_with_requests() {
    let server = start(1);
    let mut c = Client::connect(server.addr()).unwrap();
    let replies = c
        .batch(&[
            BatchOp::Insert(1, 10),
            BatchOp::Insert(1, 11), // duplicate → rejected
            BatchOp::Get(1),
            BatchOp::Get(2),
            BatchOp::Remove(1),
            BatchOp::Remove(1),
        ])
        .unwrap();
    assert_eq!(
        replies,
        vec![
            BatchReply::Added(true),
            BatchReply::Added(false),
            BatchReply::Found(10),
            BatchReply::Missing,
            BatchReply::Removed(true),
            BatchReply::Removed(false),
        ]
    );
    assert_eq!(c.batch(&[]).unwrap(), vec![]);
    drop(c);
    server.shutdown();
}

#[test]
fn scan_bounds_and_truncation() {
    let server = start(1);
    let mut c = Client::connect(server.addr()).unwrap();
    let ops: Vec<BatchOp> = (0..100).map(|k| BatchOp::Insert(k, k * 2)).collect();
    c.batch(&ops).unwrap();
    let (entries, truncated) = c.scan(10, 19, 0).unwrap();
    assert!(!truncated);
    assert_eq!(entries, (10..=19).map(|k| (k, k * 2)).collect::<Vec<_>>());
    let (entries, truncated) = c.scan(0, u64::MAX, 7).unwrap();
    assert!(truncated);
    assert_eq!(entries.len(), 7);
    assert_eq!(entries[0], (0, 0), "cap keeps the ascending prefix");
    drop(c);
    server.shutdown();
}

/// `workers` clients hammer disjoint stripes concurrently; the final
/// state and the aggregated metrics must both be exact, and *every*
/// worker must have routed ops through its pinned handle.
#[test]
fn concurrent_clients_and_worker_stats() {
    const WORKERS: usize = 3;
    const PER: u64 = 1_500;
    let server = start(WORKERS);
    std::thread::scope(|s| {
        for w in 0..WORKERS as u64 {
            let addr = server.addr();
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..PER {
                    let k = w * PER + i;
                    assert!(c.insert(k, k).unwrap());
                }
                for i in 0..PER {
                    let k = w * PER + i;
                    assert_eq!(c.get(&k).unwrap(), Some(k));
                }
            });
        }
    });
    let total = WORKERS as u64 * PER;
    // The sampling tick + connection teardown flush every handle, so the
    // aggregated snapshot is exact once the clients are gone.
    let m = server.metrics();
    assert_eq!(m.inserted, total);
    assert_eq!(m.size_estimate, total as i64);
    let per_worker = server.stats().worker_ops();
    assert_eq!(per_worker.len(), WORKERS);
    assert_eq!(per_worker.iter().sum::<u64>(), 2 * total);
    for (w, &ops) in per_worker.iter().enumerate() {
        assert!(ops > 0, "worker {w} routed zero ops through its handle");
    }
    assert_eq!(server.stats().connections(), WORKERS as u64);
    server.shutdown();
}

/// A live, mid-connection METRICS scrape must see the ops the serving
/// worker has already executed — the `flush_stats` sampling tick at
/// `flush_every` ops is what makes this hold without waiting for the
/// connection to close.
#[test]
fn live_metrics_see_in_flight_worker() {
    let server = Server::start(ServerConfig {
        workers: 2,
        flush_every: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    // Two sampling windows of ops, then scrape *on the same live
    // connection* (the worker never unpinned or dropped its handle).
    let ops: Vec<BatchOp> = (0..128).map(|k| BatchOp::Insert(k, k)).collect();
    c.batch(&ops).unwrap();
    let json = c.metrics(MetricsFormat::Json).unwrap();
    assert!(
        json.contains("\"inserted\":128"),
        "live scrape must not undercount: {json}"
    );
    assert!(json.contains("\"worker_ops\""), "server counters present");

    let prom = c.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.contains("nmbst_inserted_total 128"), "{prom}");
    assert!(prom.contains("nmbst_server_worker_ops_total{worker=\"0\"}"));
    assert!(prom.contains("nmbst_server_connections_total 1"));
    drop(c);
    server.shutdown();
}

/// After exactly-known traffic on one worker, every server counter in
/// the METRICS payload is exact — connections, frames, wire errors,
/// per-worker ops — and the per-opcode timing histograms count each
/// served frame exactly once. The whole Prometheus payload (tree +
/// server sections) must pass the strict exposition validator.
#[test]
fn metrics_scrape_is_exact_and_exposition_valid() {
    let server = start(1);
    let mut c = Client::connect(server.addr()).unwrap();
    for k in 0..10u64 {
        assert!(c.insert(k, k * 7).unwrap());
    }
    for k in 0..5u64 {
        assert_eq!(c.get(&k).unwrap(), Some(k * 7));
    }
    assert!(c.remove(&9).unwrap());
    c.batch(&[
        BatchOp::Get(0),
        BatchOp::Insert(100, 1),
        BatchOp::Remove(100),
    ])
    .unwrap();

    // 17 frames served so far; the scrape below is frame 18 and counts
    // itself (the frame counter bumps before execution).
    let json = c.metrics(MetricsFormat::Json).unwrap();
    assert!(json.contains("\"connections\":1"), "{json}");
    assert!(json.contains("\"frames\":18"), "{json}");
    assert!(json.contains("\"wire_errors\":0"), "{json}");
    // 10 inserts + 5 gets + 1 remove + 3 batched ops, all through the
    // one worker's pinned handle.
    assert!(json.contains("\"worker_ops\":[19]"), "{json}");
    // Per-opcode timing: a frame is recorded after its response is
    // flushed and before the worker reads the next request, so on one
    // connection the scrape sees every earlier frame exactly once.
    for (op, frames) in [("get", 5), ("insert", 10), ("remove", 1), ("batch", 1)] {
        assert!(
            json.contains(&format!("\"{op}\":{{\"wire\":{{\"count\":{frames},")),
            "timing for {op} should count {frames} frames: {json}"
        );
    }
    assert!(json.contains("\"slow_frames\":"), "{json}");
    // The reactor's per-worker serve gauges: this scrape rides the one
    // open connection on the one worker.
    assert!(
        json.contains("\"serve\":{\"open_connections\":[1]"),
        "{json}"
    );
    assert!(json.contains("\"backpressure_events\":[0]"), "{json}");

    // The stats API agrees with the wire payload.
    let stats = server.stats();
    assert_eq!(stats.wire_hist(nmbst_server::wire::OP_INSERT).len(), 10);
    assert_eq!(stats.wire_hist(nmbst_server::wire::OP_BATCH).len(), 1);
    for (op, p) in stats.request_timing() {
        let n = p.wire.len();
        assert_eq!(p.decode.len(), n, "{op}: every phase counts every frame");
        assert_eq!(p.execute.len(), n, "{op}");
        assert_eq!(p.encode.len(), n, "{op}");
        let interior = p.decode.sum() + p.execute.sum() + p.encode.sum();
        assert!(
            interior <= p.wire.sum(),
            "{op}: phases partition the frame (interior {interior} > wire {})",
            p.wire.sum()
        );
    }

    let prom = c.metrics(MetricsFormat::Prometheus).unwrap();
    assert!(prom.contains("nmbst_server_frames_total 19"), "{prom}");
    assert!(
        prom.contains("nmbst_server_request_ns_count{op=\"insert\",phase=\"wire\"} 10"),
        "{prom}"
    );
    assert!(
        prom.contains(
            "nmbst_server_request_ns_bucket{op=\"batch\",phase=\"execute\",le=\"+Inf\"} 1"
        ),
        "{prom}"
    );
    assert!(prom.contains("nmbst_server_slow_frames_total"), "{prom}");
    assert!(
        prom.contains("nmbst_server_open_connections{worker=\"0\"} 1"),
        "{prom}"
    );
    assert!(
        prom.contains("nmbst_server_backpressure_events_total{worker=\"0\"} 0"),
        "{prom}"
    );
    nmbst::obs::validate_prometheus(&prom)
        .unwrap_or_else(|e| panic!("server scrape fails exposition validation: {e}\n{prom}"));
    drop(c);
    server.shutdown();
}

/// With a 1 ns slow-frame threshold every frame is "slow": SLOWLOG must
/// return server-origin records for each opcode served, slowest first,
/// and honor its cap. With the tree's slow-op threshold also floored,
/// tree-origin records (sampled point ops) show up in the same log.
#[test]
fn slowlog_serves_merged_slow_records() {
    let server = Server::start(ServerConfig {
        workers: 1,
        slow_frame_ns: 1,
        tree: nmbst::TreeConfig::default()
            .with_latency(nmbst::LatencyConfig::default().with_slow_op_ns(1)),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    for k in 0..64u64 {
        assert!(c.insert(k, k).unwrap());
    }
    let gets: Vec<BatchOp> = (0..64).map(BatchOp::Get).collect();
    c.batch(&gets).unwrap();

    let log = c.slowlog(0).unwrap();
    assert!(!log.is_empty());
    assert!(
        log.windows(2).all(|w| w[0].ns >= w[1].ns),
        "slowest first: {log:?}"
    );
    let server_kinds: Vec<u8> = log
        .iter()
        .filter(|r| r.origin == 1)
        .map(|r| r.kind)
        .collect();
    assert!(
        server_kinds.contains(&nmbst_server::wire::OP_INSERT),
        "{log:?}"
    );
    assert!(
        server_kinds.contains(&nmbst_server::wire::OP_BATCH),
        "{log:?}"
    );
    // Point-op frames carry their target key.
    assert!(
        log.iter()
            .any(|r| r.origin == 1 && r.kind == nmbst_server::wire::OP_INSERT && r.key == 63),
        "{log:?}"
    );
    // the unsampled whole-batch call timer guarantees tree-origin records
    // (their `kind` is an OpClass discriminant, not an opcode).
    assert!(log.iter().any(|r| r.origin == 0), "{log:?}");

    // The first SLOWLOG frame was itself slow (1 ns threshold), so the
    // set only grew between the calls; the capped head is the slowest.
    let capped = c.slowlog(3).unwrap();
    assert_eq!(capped.len(), 3);
    assert!(capped[0].ns >= log[0].ns, "cap keeps the slowest");
    drop(c);
    server.shutdown();
}

/// Malformed frames get an error response and a dropped connection;
/// the server survives and keeps serving new clients.
#[test]
fn malformed_frame_drops_connection_not_server() {
    let server = start(1);

    // Garbage opcode.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&3u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xFF, 0x00, 0x01]).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap(); // error frame, then EOF
    assert!(reply.len() > 5, "an error frame came back");
    assert_eq!(reply[4], 0x01, "status byte = ERR");
    drop(raw);

    // Oversized length prefix: dropped without a reply.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert!(reply.is_empty());
    drop(raw);

    // The server is still healthy.
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    assert!(c.insert(1, 1).unwrap());
    assert_eq!(server.stats().wire_errors(), 1);
    drop(c);
    server.shutdown();
}

/// One BATCH frame whose keys land on every shard, with the shards
/// deliberately interleaved in request order: the fused engine
/// partitions by shard, sorts each run by key, executes per shard, and
/// must scatter every reply back to its request slot — plus exact
/// fused-counter accounting (every batched op counted fused, none
/// unrolled).
#[test]
fn batch_spanning_all_shards_scatters_to_request_order() {
    const SHARDS: usize = 4;
    let server = Server::start(ServerConfig {
        workers: 1,
        shards: SHARDS,
        ..ServerConfig::default()
    })
    .unwrap();
    // Pick three keys per shard with the store's own router, so the
    // test tracks the hash function instead of hardcoding it.
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
    let mut k = 0u64;
    while per_shard.iter().any(|v| v.len() < 3) {
        let s = server.store().shard_of(&k);
        if per_shard[s].len() < 3 {
            per_shard[s].push(k);
        }
        k += 1;
    }
    // Request order cycles shard 0,1,2,3,0,1,… — maximally scattered,
    // so an engine that forgot to un-permute would fail loudly.
    let keys: Vec<u64> = (0..3)
        .flat_map(|i| per_shard.iter().map(move |v| v[i]))
        .collect();
    let n = keys.len();
    let mut ops: Vec<BatchOp> = keys.iter().map(|&k| BatchOp::Insert(k, k + 1000)).collect();
    ops.extend(keys.iter().map(|&k| BatchOp::Get(k)));
    ops.push(BatchOp::Get(u64::MAX)); // a miss, mid-frame
    ops.extend(keys.iter().map(|&k| BatchOp::Remove(k)));

    let mut c = Client::connect(server.addr()).unwrap();
    let replies = c.batch(&ops).unwrap();
    assert_eq!(replies.len(), ops.len());
    for i in 0..n {
        assert_eq!(replies[i], BatchReply::Added(true), "insert slot {i}");
        assert_eq!(
            replies[n + i],
            BatchReply::Found(keys[i] + 1000),
            "get slot {} must carry key {}'s value",
            n + i,
            keys[i]
        );
        assert_eq!(
            replies[2 * n + 1 + i],
            BatchReply::Removed(true),
            "remove slot {}",
            2 * n + 1 + i
        );
    }
    assert_eq!(replies[2 * n], BatchReply::Missing);

    let stats = server.stats();
    assert_eq!(
        stats.batch_fused_ops(),
        ops.len() as u64,
        "every batched op accounted to the fused path"
    );
    assert_eq!(stats.batch_single_ops(), 0);
    let encode = stats.encode_bytes();
    let batch_bytes = encode.iter().find(|(op, _)| *op == "batch").unwrap().1;
    // 1 status + 4 count + n inserts/removes at 1 byte + n gets at 9 +
    // 1 miss at 1, plus the 4-byte length prefix.
    assert_eq!(batch_bytes, (5 + 2 * n + (9 * n + 1) + 4) as u64);
    drop(c);
    server.shutdown();
}

/// `fuse_batches: false` — the A/B control arm — serves identical
/// replies through the unrolled request-order path and accounts them
/// to `batch_single_ops`.
#[test]
fn unfused_batches_account_single_ops() {
    let server = Server::start(ServerConfig {
        workers: 1,
        fuse_batches: false,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let replies = c
        .batch(&[
            BatchOp::Insert(1, 10),
            BatchOp::Get(1),
            BatchOp::Remove(1),
            BatchOp::Get(1),
        ])
        .unwrap();
    assert_eq!(
        replies,
        vec![
            BatchReply::Added(true),
            BatchReply::Found(10),
            BatchReply::Removed(true),
            BatchReply::Missing,
        ]
    );
    assert_eq!(server.stats().batch_single_ops(), 4);
    assert_eq!(server.stats().batch_fused_ops(), 0);
    drop(c);
    server.shutdown();
}

/// Shutdown with an idle connected client joins promptly (the read
/// timeout tick notices the stop flag) and leaves the store intact.
#[test]
fn shutdown_with_idle_connection_joins() {
    let server = start(2);
    let mut c = Client::connect(server.addr()).unwrap();
    assert!(c.insert(5, 50).unwrap());
    let store = std::sync::Arc::clone(server.store());
    let t0 = std::time::Instant::now();
    server.shutdown(); // client `c` still connected and idle
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown hung on the idle connection"
    );
    assert_eq!(store.get(&5), Some(50), "store survives the server");
}
