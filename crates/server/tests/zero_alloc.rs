//! Proves the PR 10 zero-copy claim at the allocator: a steady-state
//! BATCH (or point-op) round trip through the serving engine performs
//! **zero server-side heap allocations**. Ops decode into reusable
//! scratch, execute through the pinned handles, and encode straight
//! into the (warm) write buffer behind a reserved length prefix.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`, which must not taint other binaries'
//! measurements. The workload avoids structural tree mutation (get
//! hits/misses, duplicate inserts, removes of absent keys) so the
//! node pool cannot legitimately grow mid-measurement — what's being
//! measured is the serve path, not the tree's amortized pool growth.

use nmbst_server::testing::with_local_engine;
use nmbst_server::wire::{BatchOp, Request};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn encode_req(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    req.encode(&mut body);
    body
}

#[test]
fn steady_state_batch_round_trip_allocates_nothing() {
    with_local_engine(2, true, |eng| {
        // Populate even keys 0..512 — outside the measured window.
        let seed: Vec<BatchOp> = (0..256).map(|i| BatchOp::Insert(i * 2, i)).collect();
        let mut out = Vec::new();
        assert!(eng.serve(&encode_req(&Request::Batch(seed)), &mut out));

        // The steady-state frames, pre-encoded: a mixed batch that
        // mutates nothing (hits, misses, rejected duplicate inserts,
        // removes of absent keys) and two point ops.
        let mixed: Vec<BatchOp> = (0..128)
            .map(|i| match i % 4 {
                0 => BatchOp::Get(i * 2),           // hit
                1 => BatchOp::Get(i * 2 + 1),       // miss
                2 => BatchOp::Insert(i * 2, 9_999), // duplicate → rejected
                _ => BatchOp::Remove(i * 2 + 1),    // absent → false
            })
            .collect();
        let batch_frame = encode_req(&Request::Batch(mixed));
        let get_hit = encode_req(&Request::Get(0));
        let get_miss = encode_req(&Request::Get(1));

        // Warm-up: sizes every piece of reusable scratch (decode vec,
        // partition runs, verdict vec, write buffer) and any lazy
        // per-thread reclaimer state behind the first pins.
        for _ in 0..4 {
            out.clear();
            assert!(eng.serve(&batch_frame, &mut out));
            assert!(eng.serve(&get_hit, &mut out));
            assert!(eng.serve(&get_miss, &mut out));
        }

        let before = ALLOCS.load(Ordering::Relaxed);
        for _ in 0..32 {
            out.clear();
            assert!(eng.serve(&batch_frame, &mut out));
            assert!(eng.serve(&get_hit, &mut out));
            assert!(eng.serve(&get_miss, &mut out));
        }
        let after = ALLOCS.load(Ordering::Relaxed);

        assert_eq!(
            after - before,
            0,
            "steady-state serve must not heap-allocate \
             ({} allocations over 32 rounds)",
            after - before
        );
        assert!(!out.is_empty(), "responses were actually produced");
    });
}
