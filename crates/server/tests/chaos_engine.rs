//! Fault injection through the serving path. Chaos hooks are
//! thread-local (`nmbst::chaos::with_hook` installs into the calling
//! thread), so these tests drive the reactor's exact request engine
//! in-process via the hidden `testing` module instead of across reactor
//! threads — same decode → execute → encode path, no sockets.
//!
//! Requires the `chaos` feature on `nmbst`, which this crate's
//! dev-dependency enables for all test builds (feature unification).

use nmbst::chaos::{self, Action, Point};
use nmbst_server::testing::with_local_engine;
use nmbst_server::wire::{
    split_frame, BatchOp, BatchReply, FrameSplit, Request, Response, OP_BATCH,
};
use std::cell::Cell;
use std::rc::Rc;

fn encode_req(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    req.encode(&mut body);
    body
}

/// Splits exactly one frame out of `out` and decodes it as a response
/// to `for_op`.
fn decode_reply(frame: &[u8], for_op: u8) -> Response {
    match split_frame(frame) {
        FrameSplit::Frame { body_len } => {
            assert_eq!(4 + body_len, frame.len(), "exactly one frame queued");
            Response::decode(for_op, &frame[4..]).unwrap()
        }
        other => panic!("expected a complete frame, got {other:?}"),
    }
}

/// Forces **every** `Point::BatchFinger` anchor revalidation in a fused
/// BATCH to abandon (descend from the root — a deterministic finger
/// miss; a persistent hook, not `FaultPlan::abandon_at`, which is
/// one-shot). Replies must be unaffected, the hook must actually have
/// fired, and the misses must surface in the store's finger counters —
/// proving the server path both *uses* the finger and *survives*
/// losing it.
#[test]
fn forced_batch_finger_abandons_keep_replies_correct() {
    with_local_engine(2, true, |eng| {
        let inserts: Vec<BatchOp> = (0..64).map(|k| BatchOp::Insert(k, k * 3)).collect();
        let mut out = Vec::new();
        assert!(eng.serve(&encode_req(&Request::Batch(inserts)), &mut out));

        let baseline = eng.metrics();
        let gets: Vec<BatchOp> = (0..64).map(BatchOp::Get).collect();
        let body = encode_req(&Request::Batch(gets));
        let arrivals = Rc::new(Cell::new(0u32));
        let arrivals2 = Rc::clone(&arrivals);
        let reply_frame = chaos::with_hook(
            move |p| {
                if p == Point::BatchFinger {
                    arrivals2.set(arrivals2.get() + 1);
                    return Action::Abandon;
                }
                Action::Continue
            },
            || {
                let mut out = Vec::new();
                assert!(eng.serve(&body, &mut out));
                out
            },
        );
        assert!(
            arrivals.get() > 0,
            "the engine's fused gets must reach the finger point"
        );

        let Response::Batch(replies) = decode_reply(&reply_frame, OP_BATCH) else {
            panic!("expected a batch response");
        };
        assert_eq!(replies.len(), 64);
        for (k, r) in replies.iter().enumerate() {
            assert_eq!(*r, BatchReply::Found(k as u64 * 3), "get {k}");
        }

        let after = eng.metrics();
        assert_eq!(
            after.finger_hits, baseline.finger_hits,
            "no finger hits while every anchor is abandoned"
        );
        assert_eq!(
            after.finger_misses,
            baseline.finger_misses + 64,
            "all 64 forced root descents surface as finger misses"
        );
    });
}

/// The same engine without injection: a fused batch over sorted
/// same-shard runs must actually *hit* the finger — the property the
/// perf gate asserts end-to-end over TCP, pinned down here at the
/// engine layer where it is deterministic.
#[test]
fn fused_batches_hit_the_finger_without_injection() {
    with_local_engine(2, true, |eng| {
        let inserts: Vec<BatchOp> = (0..256).map(|k| BatchOp::Insert(k, k)).collect();
        let mut out = Vec::new();
        assert!(eng.serve(&encode_req(&Request::Batch(inserts)), &mut out));
        out.clear();
        let gets: Vec<BatchOp> = (0..256).map(BatchOp::Get).collect();
        assert!(eng.serve(&encode_req(&Request::Batch(gets)), &mut out));

        let m = eng.metrics();
        assert!(
            m.finger_hits > 0,
            "sorted per-shard runs through the fused engine must anchor \
             on the finger (hits={}, misses={})",
            m.finger_hits,
            m.finger_misses
        );
        assert_eq!(eng.stats().batch_fused_ops(), 512);
    });
}
