//! Bounded exponential backoff.

use std::hint;

/// Exponential backoff for contended retry loops.
///
/// Each call to [`spin`](Backoff::spin) busy-waits for an exponentially
/// growing number of `spin_loop` hints, capped so a single call never
/// spins for more than `1 << SPIN_LIMIT` iterations. Once the cap is
/// reached, [`snooze`](Backoff::snooze) starts yielding the thread to
/// the OS scheduler instead, which is the right behaviour on
/// oversubscribed machines (more threads than cores — exactly the upper
/// half of the paper's 1..256-thread sweeps).
///
/// # Examples
///
/// ```
/// use nmbst_sync::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let ready = AtomicBool::new(true);
/// let backoff = Backoff::new();
/// while !ready.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: std::cell::Cell<u32>,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Creates a backoff helper in its initial (no delay) state.
    #[inline]
    pub fn new() -> Self {
        Backoff {
            step: std::cell::Cell::new(0),
        }
    }

    /// Resets the backoff to its initial state.
    #[inline]
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Busy-waits for a short, exponentially growing duration.
    ///
    /// Use this between retries of an operation that is expected to
    /// succeed very soon (e.g. a failed CAS under light contention).
    #[inline]
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off, yielding to the OS scheduler once spinning has been
    /// exhausted.
    ///
    /// Use this when waiting on another thread to make progress (e.g. a
    /// lock holder). On a machine with fewer cores than threads this is
    /// essential: pure spinning would burn the quantum the lock holder
    /// needs to finish.
    #[inline]
    pub fn snooze(&self) {
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if step <= YIELD_LIMIT {
            self.step.set(step + 1);
        }
    }

    /// Returns `true` once backoff has escalated past busy-waiting;
    /// callers that can block (park, sleep) should do so at this point.
    #[inline]
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_incomplete() {
        let b = Backoff::new();
        assert!(!b.is_completed());
    }

    #[test]
    fn escalates_to_completed() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT + 1 {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn spin_never_completes() {
        // `spin` saturates at the spin limit and never reports completion:
        // completion is a property of snoozing (yield escalation) only.
        let b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_completed());
    }

    #[test]
    fn reset_restarts_escalation() {
        let b = Backoff::new();
        for _ in 0..=YIELD_LIMIT + 1 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn default_matches_new() {
        let b: Backoff = Default::default();
        assert!(!b.is_completed());
    }
}
