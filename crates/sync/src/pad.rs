//! Cache-line padding.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to (at least) one cache line to avoid false
/// sharing.
///
/// Two logically independent atomics that happen to share a cache line
/// serialize on the coherence protocol even though they never logically
/// conflict. Wrapping per-thread hot state (epoch slots, per-thread
/// counters, striped locks) in `CachePadded` removes that coupling.
///
/// The alignment is 128 bytes: modern Intel parts prefetch cache lines
/// in adjacent pairs, so 64-byte alignment still admits false sharing
/// between neighbouring pairs; 128 covers both x86_64 and the large-line
/// POWER parts.
///
/// # Examples
///
/// ```
/// use nmbst_sync::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// let counters: Vec<CachePadded<AtomicUsize>> =
///     (0..8).map(|_| CachePadded::new(AtomicUsize::new(0))).collect();
/// assert!(std::mem::align_of_val(&counters[0]) >= 128);
/// ```
#[derive(Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v: Vec<CachePadded<u64>> = vec![CachePadded::new(1), CachePadded::new(2)];
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut c = CachePadded::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn from_impl() {
        let c: CachePadded<&str> = "hello".into();
        assert_eq!(*c, "hello");
    }

    #[test]
    fn debug_formats_inner() {
        let c = CachePadded::new(7);
        assert_eq!(format!("{c:?}"), "CachePadded(7)");
    }
}
