//! Synchronization substrate for the NM-BST reproduction.
//!
//! This crate implements, from scratch, the low-level synchronization
//! primitives the rest of the workspace builds on:
//!
//! * [`Backoff`] — bounded exponential backoff for contended retry loops,
//! * [`CachePadded`] — false-sharing avoidance wrapper,
//! * [`SpinLock`] — a test-and-test-and-set spin lock with an RAII guard,
//! * [`RawSpinLock`] — the same lock without an attached value, for
//!   per-node locks in intrusive data structures (used by the BCCO
//!   baseline),
//! * [`SeqCount`] — a sequence counter for optimistic read validation.
//!
//! None of these depend on anything outside `core`/`std` atomics. The
//! designs follow the treatment in *Rust Atomics and Locks* (Mara Bos):
//! acquire/release orderings are chosen per access, never blanket
//! `SeqCst`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod backoff;
mod pad;
mod seqcount;
mod spin;

pub use backoff::Backoff;
pub use pad::CachePadded;
pub use seqcount::SeqCount;
pub use spin::{RawSpinLock, SpinLock, SpinLockGuard};
