//! Sequence counters for optimistic read validation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A sequence counter ("seqlock word") supporting optimistic reads.
///
/// Writers bracket their critical section with
/// [`write_begin`](SeqCount::write_begin) /
/// [`write_end`](SeqCount::write_end), which makes the counter odd for
/// the duration of the write. Readers snapshot the counter with
/// [`read_begin`](SeqCount::read_begin) (spinning past odd values), read
/// the protected fields, and then confirm with
/// [`validate`](SeqCount::validate) that no write overlapped.
///
/// This is the validation pattern at the heart of the BCCO baseline
/// (Bronson et al., PPoPP 2010): hand-over-hand *optimistic* traversal
/// revalidates the version of each node after reading the child link.
///
/// # Examples
///
/// ```
/// use nmbst_sync::SeqCount;
///
/// let seq = SeqCount::new();
/// let v = seq.read_begin();
/// // ... read protected fields ...
/// assert!(seq.validate(v)); // no concurrent writer: snapshot is consistent
/// ```
#[derive(Debug, Default)]
pub struct SeqCount {
    seq: AtomicU64,
}

impl SeqCount {
    /// Creates a counter in the "no write in progress" state (value 0).
    #[inline]
    pub const fn new() -> Self {
        SeqCount {
            seq: AtomicU64::new(0),
        }
    }

    /// Begins an optimistic read: returns an even snapshot of the
    /// counter, spinning while a write is in progress.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        loop {
            let v = self.seq.load(Ordering::Acquire);
            if v & 1 == 0 {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Returns `true` if no write overlapped a read that started at
    /// snapshot `v`.
    #[inline]
    pub fn validate(&self, v: u64) -> bool {
        // The fence-free formulation: an Acquire reload suffices because
        // the reads being validated happen-before this load in program
        // order, and any overlapping writer must have bumped the counter
        // with Release before touching the data.
        std::sync::atomic::fence(Ordering::Acquire);
        self.seq.load(Ordering::Acquire) == v
    }

    /// Begins a write section, making the counter odd.
    ///
    /// Callers must serialize writers externally (e.g. hold the node's
    /// lock); `SeqCount` only publishes write intervals to readers.
    #[inline]
    pub fn write_begin(&self) {
        let v = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 0, "nested write_begin");
        self.seq.store(v + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
    }

    /// Ends a write section, making the counter even again.
    #[inline]
    pub fn write_end(&self) {
        let v = self.seq.load(Ordering::Relaxed);
        debug_assert_eq!(v & 1, 1, "write_end without write_begin");
        self.seq.store(v + 1, Ordering::Release);
    }

    /// Returns the raw counter value (for diagnostics).
    #[inline]
    pub fn raw(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpinLock;
    use std::sync::atomic::{AtomicU64 as A64, Ordering as O};

    #[test]
    fn quiescent_read_validates() {
        let s = SeqCount::new();
        let v = s.read_begin();
        assert!(s.validate(v));
    }

    #[test]
    fn write_invalidates_overlapping_read() {
        let s = SeqCount::new();
        let v = s.read_begin();
        s.write_begin();
        s.write_end();
        assert!(!s.validate(v));
        let v2 = s.read_begin();
        assert!(s.validate(v2));
        assert_eq!(v2, v + 2);
    }

    #[test]
    fn read_begin_skips_odd() {
        let s = SeqCount::new();
        s.write_begin();
        // read_begin would spin; check raw oddness instead then finish.
        assert_eq!(s.raw() & 1, 1);
        s.write_end();
        assert_eq!(s.read_begin() & 1, 0);
    }

    #[test]
    fn torn_reads_never_validate() {
        // Writer repeatedly updates a two-word "pair" that must stay
        // consistent (b == 2*a). Readers that validate must never see a
        // torn pair.
        let s = SeqCount::new();
        let a = A64::new(0);
        let b = A64::new(0);
        let writer_lock = SpinLock::new(());
        std::thread::scope(|sc| {
            let s = &s;
            let a = &a;
            let b = &b;
            let writer_lock = &writer_lock;
            sc.spawn(move || {
                for i in 1..=20_000u64 {
                    let _g = writer_lock.lock();
                    s.write_begin();
                    a.store(i, O::Relaxed);
                    b.store(2 * i, O::Relaxed);
                    s.write_end();
                }
            });
            for _ in 0..2 {
                sc.spawn(move || {
                    let mut validated = 0u32;
                    while validated < 1_000 {
                        let v = s.read_begin();
                        let x = a.load(O::Relaxed);
                        let y = b.load(O::Relaxed);
                        if s.validate(v) {
                            assert_eq!(y, 2 * x, "validated torn read");
                            validated += 1;
                        }
                    }
                });
            }
        });
    }
}
