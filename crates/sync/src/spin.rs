//! Test-and-test-and-set spin locks.

use crate::Backoff;
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A raw test-and-test-and-set spin lock with no attached data.
///
/// This is the building block for intrusive per-node locks: the BCCO
/// baseline stores one `RawSpinLock` in every tree node and protects the
/// node's fields by convention (the fields themselves are atomics so
/// optimistic readers can observe them without holding the lock).
///
/// The lock loops on a plain load (`test`) before attempting the
/// `swap` (`and-set`), so waiters spin in their own cache without
/// generating coherence traffic, and backs off exponentially.
///
/// Prefer [`SpinLock`] when the protected data can be owned by the lock.
pub struct RawSpinLock {
    locked: AtomicBool,
}

impl RawSpinLock {
    /// Creates an unlocked lock.
    #[inline]
    pub const fn new() -> Self {
        RawSpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning (and eventually yielding) until it is
    /// available.
    #[inline]
    pub fn lock(&self) {
        let backoff = Backoff::new();
        loop {
            // Attempt the cheap path first; on failure spin on loads only.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    /// Tries to acquire the lock without spinning. Returns `true` on
    /// success.
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire)
    }

    /// Releases the lock.
    ///
    /// # Safety contract (debug-checked)
    ///
    /// Must only be called by the thread that currently holds the lock.
    /// This is a logical contract, not a memory-safety one — the lock
    /// carries no data — so the method is safe but misuse corrupts the
    /// caller's own locking protocol.
    #[inline]
    pub fn unlock(&self) {
        debug_assert!(
            self.locked.load(Ordering::Relaxed),
            "unlock of unlocked lock"
        );
        self.locked.store(false, Ordering::Release);
    }

    /// Returns `true` if the lock is currently held by some thread.
    ///
    /// Only meaningful as a heuristic (e.g. validation in optimistic
    /// concurrency control): the answer may be stale immediately.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl Default for RawSpinLock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RawSpinLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawSpinLock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

/// A spin lock owning a value of type `T`, unlocked through an RAII
/// guard.
///
/// # Examples
///
/// ```
/// use nmbst_sync::SpinLock;
///
/// let lock = SpinLock::new(vec![1, 2, 3]);
/// lock.lock().push(4);
/// assert_eq!(lock.lock().len(), 4);
/// ```
pub struct SpinLock<T: ?Sized> {
    raw: RawSpinLock,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the required mutual exclusion; `T: Send` is
// needed because the value moves between threads, and `Sync` is not
// required of `T` because only one thread observes `&mut T` at a time.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// Creates a new unlocked spin lock owning `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        SpinLock {
            raw: RawSpinLock::new(),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquires the lock, returning a guard that releases it on drop.
    #[inline]
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        self.raw.lock();
        SpinLockGuard { lock: self }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self.raw.try_lock() {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Returns a mutable reference to the underlying data without
    /// locking; safe because `&mut self` proves unique access.
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("SpinLock").field("value", &&*guard).finish(),
            None => f.write_str("SpinLock { <locked> }"),
        }
    }
}

/// RAII guard for [`SpinLock`]; releases the lock when dropped.
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves we hold the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard's existence proves we hold the lock.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.raw.unlock();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for SpinLockGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn raw_lock_unlock() {
        let l = RawSpinLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        assert!(!l.try_lock());
        l.unlock();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = SpinLock::new(0u32);
        {
            let mut g = l.lock();
            *g = 7;
        }
        assert_eq!(*l.lock(), 7);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn get_mut_without_locking() {
        let mut l = SpinLock::new(1);
        *l.get_mut() = 2;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn debug_output() {
        let l = SpinLock::new(5);
        assert_eq!(format!("{l:?}"), "SpinLock { value: 5 }");
        let g = l.lock();
        assert_eq!(format!("{l:?}"), "SpinLock { <locked> }");
        drop(g);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let lock = SpinLock::new(0usize);
        let in_section = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        let mut g = lock.lock();
                        let n = in_section.fetch_add(1, Ordering::AcqRel);
                        assert_eq!(n, 0, "two threads inside the critical section");
                        *g += 1;
                        in_section.fetch_sub(1, Ordering::AcqRel);
                    }
                });
            }
        });
        assert_eq!(*lock.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn raw_lock_counter_under_contention() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 20_000;
        let lock = RawSpinLock::new();
        let mut counter = 0usize;
        let counter_ptr = &mut counter as *mut usize as usize;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        lock.lock();
                        // SAFETY: the raw lock serializes access.
                        unsafe { *(counter_ptr as *mut usize) += 1 };
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(counter, THREADS * PER_THREAD);
    }
}
