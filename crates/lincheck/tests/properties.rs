//! Property-style tests for the linearizability checker itself, driven
//! by a fixed-seed SplitMix64 stream (no external property-testing
//! crate in this offline build).

use nmbst_lincheck::{check_linearizable, linearization_witness, Event, SetOp};

/// SplitMix64 (Steele et al.): tiny, full-period, well-mixed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_ops(rng: &mut Rng, max_len: u64) -> Vec<SetOp> {
    let len = 1 + rng.below(max_len);
    (0..len)
        .map(|_| {
            let k = rng.below(8);
            match rng.below(3) {
                0 => SetOp::Insert(k),
                1 => SetOp::Remove(k),
                _ => SetOp::Contains(k),
            }
        })
        .collect()
}

/// Builds a sequential (non-overlapping) history by running `ops`
/// against the abstract model.
fn sequential_history(ops: &[SetOp]) -> Vec<Event> {
    let mut state = 0u64;
    let mut clock = 0u64;
    ops.iter()
        .map(|&op| {
            let (result, next) = op.apply(state);
            state = next;
            let e = Event {
                op,
                result,
                invoke: clock,
                response: clock + 1,
            };
            clock += 2;
            e
        })
        .collect()
}

#[test]
fn sequential_histories_always_linearizable() {
    let mut rng = Rng(0x11C4_0001);
    for case in 0..200 {
        let ops = gen_ops(&mut rng, 23);
        let h = sequential_history(&ops);
        assert!(check_linearizable(&h), "case {case}: {ops:?}");
    }
}

#[test]
fn flipping_any_sequential_result_breaks_it() {
    // In a non-overlapping history every result is uniquely determined,
    // so corrupting one must be detected.
    let mut rng = Rng(0x11C4_0002);
    for case in 0..200 {
        let ops = gen_ops(&mut rng, 15);
        let mut h = sequential_history(&ops);
        let i = rng.below(h.len() as u64) as usize;
        h[i].result = !h[i].result;
        assert!(
            !check_linearizable(&h),
            "case {case}: flipped op {i} of {ops:?}"
        );
    }
}

#[test]
fn witness_replay_is_always_consistent() {
    // Stretch response times to create overlap windows, then verify any
    // witness found actually replays correctly.
    let mut rng = Rng(0x11C4_0003);
    for case in 0..200 {
        let ops = gen_ops(&mut rng, 15);
        let overlap = rng.below(4);
        let mut h = sequential_history(&ops);
        for e in h.iter_mut() {
            e.response += overlap * 3;
        }
        let Some(order) = linearization_witness(&h) else {
            // Stretching responses only ADDS legal orders; the original
            // sequential history was legal, so a witness must exist.
            panic!("case {case}: stretched legal history reported illegal ({ops:?})");
        };
        assert_eq!(order.len(), h.len());
        let mut state = 0u64;
        for (pos, &i) in order.iter().enumerate() {
            // Real-time: no earlier-linearized op may have begun after a
            // later one ended.
            for &j in &order[..pos] {
                assert!(h[j].invoke < h[i].response, "case {case}: real-time order");
            }
            let (r, s) = h[i].op.apply(state);
            assert_eq!(r, h[i].result, "case {case}: replay of op {i}");
            state = s;
        }
    }
}

#[test]
fn fully_overlapping_distinct_inserts_linearizable() {
    for n in 1usize..12 {
        let h: Vec<Event> = (0..n)
            .map(|i| Event {
                op: SetOp::Insert(i as u64 % 8),
                // Duplicate keys: only the first per key may succeed.
                result: i < 8,
                invoke: 0,
                response: 1000,
            })
            .collect();
        // All events overlap, inserts of 8 distinct keys succeed, the
        // rest (duplicates) fail — always linearizable.
        assert!(check_linearizable(&h), "n = {n}");
    }
}
