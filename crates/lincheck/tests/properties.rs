//! Property-based tests for the linearizability checker itself.

use nmbst_lincheck::{check_linearizable, linearization_witness, Event, SetOp};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0u64..8).prop_map(SetOp::Insert),
        (0u64..8).prop_map(SetOp::Remove),
        (0u64..8).prop_map(SetOp::Contains),
    ]
}

/// Builds a sequential (non-overlapping) history by running `ops`
/// against the abstract model.
fn sequential_history(ops: &[SetOp]) -> Vec<Event> {
    let mut state = 0u64;
    let mut clock = 0u64;
    ops.iter()
        .map(|&op| {
            let (result, next) = op.apply(state);
            state = next;
            let e = Event {
                op,
                result,
                invoke: clock,
                response: clock + 1,
            };
            clock += 2;
            e
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn sequential_histories_always_linearizable(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let h = sequential_history(&ops);
        prop_assert!(check_linearizable(&h));
    }

    #[test]
    fn flipping_any_sequential_result_breaks_it(
        ops in prop::collection::vec(op_strategy(), 1..16),
        idx in any::<prop::sample::Index>(),
    ) {
        // In a non-overlapping history every result is uniquely
        // determined, so corrupting one must be detected.
        let mut h = sequential_history(&ops);
        let i = idx.index(h.len());
        h[i].result = !h[i].result;
        prop_assert!(!check_linearizable(&h));
    }

    #[test]
    fn witness_replay_is_always_consistent(
        ops in prop::collection::vec(op_strategy(), 1..16),
        overlap in 0u64..4,
    ) {
        // Stretch response times to create overlap windows, then verify
        // any witness found actually replays correctly.
        let mut h = sequential_history(&ops);
        for e in h.iter_mut() {
            e.response += overlap * 3;
        }
        if let Some(order) = linearization_witness(&h) {
            prop_assert_eq!(order.len(), h.len());
            let mut state = 0u64;
            for (pos, &i) in order.iter().enumerate() {
                // Real-time: no earlier-linearized op may have begun
                // after a later one ended.
                for &j in &order[..pos] {
                    prop_assert!(h[j].invoke < h[i].response);
                }
                let (r, s) = h[i].op.apply(state);
                prop_assert_eq!(r, h[i].result);
                state = s;
            }
        } else {
            // Stretching responses only ADDS legal orders; the original
            // sequential history was legal, so a witness must exist.
            prop_assert!(false, "stretched legal history reported illegal");
        }
    }

    #[test]
    fn fully_overlapping_distinct_inserts_linearizable(n in 1usize..12) {
        let h: Vec<Event> = (0..n)
            .map(|i| Event {
                op: SetOp::Insert(i as u64 % 8),
                // Duplicate keys: only the first per key may succeed.
                result: i < 8,
                invoke: 0,
                response: 1000,
            })
            .collect();
        // All events overlap, inserts of 8 distinct keys succeed, the
        // rest (duplicates) fail — always linearizable.
        prop_assert!(check_linearizable(&h));
    }
}
