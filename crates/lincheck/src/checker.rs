//! The Wing & Gong exhaustive linearizability checker, with the
//! remaining-set × abstract-state memoization of Lowe's refinement.

use crate::Event;
use std::collections::HashSet;

/// Decides whether a complete history of set operations is
/// linearizable: is there a total order of the operations, consistent
/// with real-time (an op that responded before another was invoked must
/// come first), in which every result matches the sequential set
/// semantics?
///
/// Complexity is exponential in the worst case; the memo on
/// `(remaining-ops bitmask, abstract set bitmask)` makes histories of a
/// few dozen events over keys `0..64` check in microseconds to
/// milliseconds.
///
/// # Panics
///
/// Panics if the history has more than 64 events or touches keys ≥ 64
/// (recording should be sized accordingly).
pub fn check_linearizable(history: &[Event]) -> bool {
    linearization_witness(history).is_some()
}

/// Like [`check_linearizable`], but on success returns a *witness*: the
/// indices of `history` in one legal linearization order. Invaluable
/// when debugging a reported violation — rerun with the suspect event
/// removed to see which constraint broke.
///
/// Same preconditions as [`check_linearizable`].
pub fn linearization_witness(history: &[Event]) -> Option<Vec<usize>> {
    assert!(
        history.len() <= 64,
        "checker handles at most 64 events per history"
    );
    for e in history {
        assert!(e.op.key() < 64, "checker handles keys 0..64");
        assert!(e.invoke < e.response, "malformed event interval");
    }
    if history.is_empty() {
        return Some(Vec::new());
    }
    let full: u64 = if history.len() == 64 {
        u64::MAX
    } else {
        (1u64 << history.len()) - 1
    };
    let mut memo: HashSet<(u64, u64)> = HashSet::new();
    let mut order = Vec::with_capacity(history.len());
    if search(history, full, 0, &mut memo, &mut order) {
        Some(order)
    } else {
        None
    }
}

/// DFS: try every minimal remaining operation as the next linearized
/// one. `remaining` is a bitmask of un-linearized events; `state` the
/// abstract set contents.
fn search(
    history: &[Event],
    remaining: u64,
    state: u64,
    memo: &mut HashSet<(u64, u64)>,
    order: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        return true;
    }
    if !memo.insert((remaining, state)) {
        return false; // already explored this configuration: dead end
    }
    // The earliest response among remaining ops bounds which ops may be
    // linearized next: an op invoked after some other op responded
    // cannot precede it.
    let mut min_response = u64::MAX;
    let mut bits = remaining;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        min_response = min_response.min(history[i].response);
    }
    let mut bits = remaining;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let e = &history[i];
        if e.invoke > min_response {
            continue; // some remaining op responded before this began
        }
        let (expected, next_state) = e.op.apply(state);
        if expected != e.result {
            continue; // this op cannot be next: result contradicts model
        }
        order.push(i);
        if search(history, remaining & !(1u64 << i), next_state, memo, order) {
            return true;
        }
        order.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetOp;

    fn ev(op: SetOp, result: bool, invoke: u64, response: u64) -> Event {
        Event {
            op,
            result,
            invoke,
            response,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(&[]));
    }

    #[test]
    fn sequential_legal_history() {
        let h = vec![
            ev(SetOp::Insert(1), true, 0, 1),
            ev(SetOp::Contains(1), true, 2, 3),
            ev(SetOp::Remove(1), true, 4, 5),
            ev(SetOp::Contains(1), false, 6, 7),
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn sequential_illegal_history() {
        // contains(1) = false after insert(1) = true completed: illegal.
        let h = vec![
            ev(SetOp::Insert(1), true, 0, 1),
            ev(SetOp::Contains(1), false, 2, 3),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn overlap_allows_reordering() {
        // contains(1)=false overlaps insert(1)=true: legal, the search
        // can linearize before the insert.
        let h = vec![
            ev(SetOp::Insert(1), true, 0, 3),
            ev(SetOp::Contains(1), false, 1, 2),
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn double_successful_insert_is_illegal() {
        // Two inserts of the same key both claim to have changed the
        // set, with no interleaved remove: impossible.
        let h = vec![
            ev(SetOp::Insert(4), true, 0, 5),
            ev(SetOp::Insert(4), true, 1, 4),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn insert_remove_race_both_succeed() {
        // insert(2)=true and remove(2)=true overlapping: legal
        // (linearize insert first).
        let h = vec![
            ev(SetOp::Insert(2), true, 0, 5),
            ev(SetOp::Remove(2), true, 1, 4),
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn remove_before_insert_non_overlapping_is_illegal() {
        // remove(2)=true completed before insert(2) even began, on an
        // initially empty set: illegal.
        let h = vec![
            ev(SetOp::Remove(2), true, 0, 1),
            ev(SetOp::Insert(2), true, 2, 3),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn real_time_order_is_respected() {
        // insert(7)=true completes, THEN contains(7)=false runs alone,
        // THEN remove(7)=true. The contains cannot be reordered around
        // the non-overlapping insert: illegal.
        let h = vec![
            ev(SetOp::Insert(7), true, 0, 1),
            ev(SetOp::Contains(7), false, 2, 3),
            ev(SetOp::Remove(7), true, 4, 5),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn three_way_overlap_with_one_witness() {
        // insert(1), remove(1), contains(1) all overlap. contains=true
        // forces an order insert < contains < remove (or contains after
        // insert at least): still linearizable.
        let h = vec![
            ev(SetOp::Insert(1), true, 0, 10),
            ev(SetOp::Remove(1), true, 1, 9),
            ev(SetOp::Contains(1), true, 2, 8),
        ];
        assert!(check_linearizable(&h));
    }

    #[test]
    fn contradictory_witnesses_fail() {
        // Two sequential searches inside one insert/remove pair:
        // first sees present, second (later) sees present again AFTER a
        // non-overlapping successful remove completed: illegal.
        let h = vec![
            ev(SetOp::Insert(3), true, 0, 1),
            ev(SetOp::Remove(3), true, 2, 3),
            ev(SetOp::Contains(3), true, 4, 5),
        ];
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn random_sequential_histories_always_pass() {
        // Any history generated by *running* ops sequentially against a
        // model is linearizable by construction.
        let mut state = 0u64;
        let mut clock = 0u64;
        let mut h = Vec::new();
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        for _ in 0..40 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 8;
            let op = match x % 3 {
                0 => SetOp::Insert(k),
                1 => SetOp::Remove(k),
                _ => SetOp::Contains(k),
            };
            let (r, s) = op.apply(state);
            state = s;
            h.push(ev(op, r, clock, clock + 1));
            clock += 2;
        }
        assert!(check_linearizable(&h));
    }

    #[test]
    fn memo_handles_wide_overlap() {
        // 16 fully-overlapping inserts of distinct keys: hugely many
        // interleavings, all legal; must terminate fast thanks to memo.
        let h: Vec<Event> = (0..16)
            .map(|i| ev(SetOp::Insert(i), true, 0, 100))
            .collect();
        assert!(check_linearizable(&h));
    }

    #[test]
    fn wide_overlap_with_single_flaw_fails() {
        let mut h: Vec<Event> = (0..12)
            .map(|i| ev(SetOp::Insert(i), true, 0, 100))
            .collect();
        // A fully-overlapping failed insert of a key nobody else touches:
        // there is no state in which insert(40) returns false.
        h.push(ev(SetOp::Insert(40), false, 0, 100));
        assert!(!check_linearizable(&h));
    }

    #[test]
    fn witness_is_a_valid_linearization() {
        let h = vec![
            ev(SetOp::Insert(1), true, 0, 9),
            ev(SetOp::Remove(1), true, 1, 8),
            ev(SetOp::Contains(1), true, 2, 7),
            ev(SetOp::Contains(1), false, 10, 11),
        ];
        let order = super::linearization_witness(&h).expect("linearizable");
        assert_eq!(order.len(), h.len());
        // Replay the witness: every result must match the model, and
        // real-time order must hold.
        let mut state = 0u64;
        let mut done: Vec<usize> = Vec::new();
        for &i in &order {
            for &j in &done {
                assert!(
                    h[j].invoke < h[i].response,
                    "witness violates real time: {j} before {i}"
                );
            }
            let (r, s) = h[i].op.apply(state);
            assert_eq!(r, h[i].result, "witness result mismatch at {i}");
            state = s;
            done.push(i);
        }
    }

    #[test]
    fn witness_absent_for_violation() {
        let h = vec![
            ev(SetOp::Insert(1), true, 0, 1),
            ev(SetOp::Contains(1), false, 2, 3),
        ];
        assert!(super::linearization_witness(&h).is_none());
    }

    #[test]
    #[should_panic(expected = "keys 0..64")]
    fn rejects_large_keys() {
        let h = vec![ev(SetOp::Insert(64), true, 0, 1)];
        let _ = check_linearizable(&h);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn rejects_malformed_interval() {
        let h = vec![ev(SetOp::Insert(1), true, 5, 5)];
        let _ = check_linearizable(&h);
    }
}
