//! Generic linearizability checking against any sequential
//! specification.
//!
//! [`check_linearizable`](crate::check_linearizable) is the fast,
//! bitmask-memoized checker for the set ADT. This module provides the
//! same Wing & Gong search for *arbitrary* ADTs: implement [`Spec`]
//! (a deterministic sequential model) and record [`GenEvent`]s.

use std::collections::HashSet;
use std::hash::Hash;

/// A sequential specification: deterministic abstract state plus an
/// `apply` function producing the expected result of each operation.
pub trait Spec {
    /// Operation descriptor (what was invoked).
    type Op: Clone;
    /// Observed result type.
    type Ret: PartialEq + Clone;
    /// Abstract state; `Hash + Eq` enables memoization.
    type State: Clone + Hash + Eq;

    /// The initial abstract state.
    fn init(&self) -> Self::State;

    /// Applies `op` to `state`, returning the expected result and the
    /// successor state.
    fn apply(&self, op: &Self::Op, state: &Self::State) -> (Self::Ret, Self::State);
}

/// One completed operation in a history over spec `S`.
#[derive(Debug, Clone)]
pub struct GenEvent<S: Spec> {
    /// What was invoked.
    pub op: S::Op,
    /// What it returned.
    pub ret: S::Ret,
    /// Logical invocation timestamp.
    pub invoke: u64,
    /// Logical response timestamp (must exceed `invoke`).
    pub response: u64,
}

/// Checks a complete history against `spec`; on success returns a
/// witness linearization (indices into `history`).
///
/// Histories are limited to 64 events (a bitmask tracks the remaining
/// set); keep recorded windows small and check many of them.
pub fn check_history<S: Spec>(spec: &S, history: &[GenEvent<S>]) -> Option<Vec<usize>> {
    assert!(history.len() <= 64, "at most 64 events per history");
    for e in history {
        assert!(e.invoke < e.response, "malformed event interval");
    }
    if history.is_empty() {
        return Some(Vec::new());
    }
    let full: u64 = if history.len() == 64 {
        u64::MAX
    } else {
        (1u64 << history.len()) - 1
    };
    let mut memo: HashSet<(u64, S::State)> = HashSet::new();
    let mut order = Vec::with_capacity(history.len());
    if dfs(spec, history, full, spec.init(), &mut memo, &mut order) {
        Some(order)
    } else {
        None
    }
}

fn dfs<S: Spec>(
    spec: &S,
    history: &[GenEvent<S>],
    remaining: u64,
    state: S::State,
    memo: &mut HashSet<(u64, S::State)>,
    order: &mut Vec<usize>,
) -> bool {
    if remaining == 0 {
        return true;
    }
    if !memo.insert((remaining, state.clone())) {
        return false;
    }
    let mut min_response = u64::MAX;
    let mut bits = remaining;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        min_response = min_response.min(history[i].response);
    }
    let mut bits = remaining;
    while bits != 0 {
        let i = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        let e = &history[i];
        if e.invoke > min_response {
            continue;
        }
        let (expected, next) = spec.apply(&e.op, &state);
        if expected != e.ret {
            continue;
        }
        order.push(i);
        if dfs(spec, history, remaining & !(1u64 << i), next, memo, order) {
            return true;
        }
        order.pop();
    }
    false
}

/// The map ADT of [`NmTreeMap`](https://docs.rs/nmbst): insert-once
/// semantics with observable values (`get`, `remove_get`). Values are
/// `u64` stamps — give each insert a distinct stamp and the checker can
/// detect value mix-ups, not just membership errors.
#[derive(Debug, Default, Clone)]
pub struct MapSpec;

/// A map operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapOp {
    /// `insert(k, stamp)` — rejected if the key exists.
    Insert(u64, u64),
    /// `remove_get(k)`.
    Remove(u64),
    /// `get(k)`.
    Get(u64),
}

/// A map operation's observed result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapRet {
    /// Result of `insert`.
    Inserted(bool),
    /// Result of `remove_get`: the removed stamp, if any.
    Removed(Option<u64>),
    /// Result of `get`.
    Got(Option<u64>),
}

impl Spec for MapSpec {
    type Op = MapOp;
    type Ret = MapRet;
    // Sorted association list: cheap to hash, canonical by construction.
    type State = Vec<(u64, u64)>;

    fn init(&self) -> Self::State {
        Vec::new()
    }

    fn apply(&self, op: &MapOp, state: &Self::State) -> (MapRet, Self::State) {
        match *op {
            MapOp::Insert(k, stamp) => match state.binary_search_by_key(&k, |e| e.0) {
                Ok(_) => (MapRet::Inserted(false), state.clone()),
                Err(pos) => {
                    let mut next = state.clone();
                    next.insert(pos, (k, stamp));
                    (MapRet::Inserted(true), next)
                }
            },
            MapOp::Remove(k) => match state.binary_search_by_key(&k, |e| e.0) {
                Ok(pos) => {
                    let mut next = state.clone();
                    let (_, stamp) = next.remove(pos);
                    (MapRet::Removed(Some(stamp)), next)
                }
                Err(_) => (MapRet::Removed(None), state.clone()),
            },
            MapOp::Get(k) => {
                let got = state
                    .binary_search_by_key(&k, |e| e.0)
                    .ok()
                    .map(|pos| state[pos].1);
                (MapRet::Got(got), state.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: MapOp, ret: MapRet, invoke: u64, response: u64) -> GenEvent<MapSpec> {
        GenEvent {
            op,
            ret,
            invoke,
            response,
        }
    }

    #[test]
    fn sequential_map_history_passes() {
        let h = vec![
            ev(MapOp::Insert(1, 100), MapRet::Inserted(true), 0, 1),
            ev(MapOp::Get(1), MapRet::Got(Some(100)), 2, 3),
            ev(MapOp::Insert(1, 200), MapRet::Inserted(false), 4, 5),
            ev(MapOp::Remove(1), MapRet::Removed(Some(100)), 6, 7),
            ev(MapOp::Get(1), MapRet::Got(None), 8, 9),
        ];
        assert!(check_history(&MapSpec, &h).is_some());
    }

    #[test]
    fn wrong_value_is_detected() {
        // The stamp returned by remove must be the one inserted.
        let h = vec![
            ev(MapOp::Insert(1, 100), MapRet::Inserted(true), 0, 1),
            ev(MapOp::Remove(1), MapRet::Removed(Some(999)), 2, 3),
        ];
        assert!(check_history(&MapSpec, &h).is_none());
    }

    #[test]
    fn overlapping_insert_and_get_either_value_state() {
        // get overlaps the insert: both None and Some(100) are legal...
        for got in [None, Some(100)] {
            let h = vec![
                ev(MapOp::Insert(1, 100), MapRet::Inserted(true), 0, 5),
                ev(MapOp::Get(1), MapRet::Got(got), 1, 4),
            ];
            assert!(check_history(&MapSpec, &h).is_some(), "got = {got:?}");
        }
        // ...but a *third* value never is.
        let h = vec![
            ev(MapOp::Insert(1, 100), MapRet::Inserted(true), 0, 5),
            ev(MapOp::Get(1), MapRet::Got(Some(42)), 1, 4),
        ];
        assert!(check_history(&MapSpec, &h).is_none());
    }

    #[test]
    fn double_remove_of_one_insert_fails() {
        let h = vec![
            ev(MapOp::Insert(1, 7), MapRet::Inserted(true), 0, 9),
            ev(MapOp::Remove(1), MapRet::Removed(Some(7)), 1, 8),
            ev(MapOp::Remove(1), MapRet::Removed(Some(7)), 2, 7),
        ];
        assert!(check_history(&MapSpec, &h).is_none());
    }

    #[test]
    fn witness_replays() {
        let h = vec![
            ev(MapOp::Insert(3, 1), MapRet::Inserted(true), 0, 10),
            ev(MapOp::Insert(4, 2), MapRet::Inserted(true), 0, 10),
            ev(MapOp::Remove(3), MapRet::Removed(Some(1)), 0, 10),
            ev(MapOp::Get(4), MapRet::Got(Some(2)), 0, 10),
        ];
        let order = check_history(&MapSpec, &h).expect("linearizable");
        let spec = MapSpec;
        let mut state = spec.init();
        for &i in &order {
            let (r, s) = spec.apply(&h[i].op, &state);
            assert_eq!(r, h[i].ret);
            state = s;
        }
    }

    #[test]
    fn empty_history() {
        assert_eq!(check_history(&MapSpec, &[]), Some(vec![]));
    }
}
