//! Recording concurrent histories with a global logical clock.

use crate::{Event, SetOp};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stamps operations with invocation/response timestamps from a shared
/// logical clock.
///
/// Each worker thread keeps its own `Vec<Event>`; merge them afterwards
/// and feed the result to
/// [`check_linearizable`](crate::check_linearizable).
///
/// # Examples
///
/// ```
/// use nmbst_lincheck::{Recorder, SetOp, check_linearizable};
/// use std::collections::BTreeSet;
/// use std::sync::Mutex;
///
/// let set = Mutex::new(BTreeSet::new());
/// let rec = Recorder::new();
/// let mut events = Vec::new();
/// events.push(rec.measure(SetOp::Insert(5), || set.lock().unwrap().insert(5)));
/// events.push(rec.measure(SetOp::Contains(5), || set.lock().unwrap().contains(&5)));
/// assert!(check_linearizable(&events));
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// Creates a recorder with the clock at zero.
    pub fn new() -> Self {
        Recorder {
            clock: AtomicU64::new(0),
        }
    }

    /// Runs `action` (the real operation on the structure under test)
    /// bracketed by clock ticks, producing the stamped event.
    ///
    /// The timestamps deliberately bracket the *entire* operation: any
    /// linearization point the implementation chooses lies inside the
    /// recorded interval, so a history the checker rejects is a genuine
    /// linearizability violation.
    pub fn measure(&self, op: SetOp, action: impl FnOnce() -> bool) -> Event {
        let invoke = self.clock.fetch_add(1, Ordering::AcqRel);
        let result = action();
        let response = self.clock.fetch_add(1, Ordering::AcqRel);
        Event {
            op,
            result,
            invoke,
            response,
        }
    }

    /// Current clock value (diagnostics).
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Generic counterpart of [`measure`](Recorder::measure) for
    /// histories over any [`Spec`](crate::spec::Spec): runs `action`
    /// bracketed by clock ticks and stamps a
    /// [`GenEvent`](crate::spec::GenEvent).
    pub fn measure_spec<S: crate::spec::Spec>(
        &self,
        op: S::Op,
        action: impl FnOnce() -> S::Ret,
    ) -> crate::spec::GenEvent<S> {
        let invoke = self.clock.fetch_add(1, Ordering::AcqRel);
        let ret = action();
        let response = self.clock.fetch_add(1, Ordering::AcqRel);
        crate::spec::GenEvent {
            op,
            ret,
            invoke,
            response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_linearizable;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn timestamps_are_strictly_bracketing() {
        let rec = Recorder::new();
        let e1 = rec.measure(SetOp::Insert(1), || true);
        let e2 = rec.measure(SetOp::Remove(1), || true);
        assert!(e1.invoke < e1.response);
        assert!(e1.response < e2.invoke);
        assert_eq!(rec.now(), 4);
    }

    #[test]
    fn concurrent_recording_against_locked_model_is_linearizable() {
        // A mutex-protected BTreeSet is trivially linearizable; the
        // recorded history must always pass. This validates recorder +
        // checker end-to-end.
        for trial in 0..20 {
            let set = Mutex::new(BTreeSet::new());
            let rec = Recorder::new();
            let all = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for t in 0..3u64 {
                    let set = &set;
                    let rec = &rec;
                    let all = &all;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        let mut x = (trial + 1) * 1000 + t + 1;
                        for _ in 0..6 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let k = x % 4;
                            let op = match x % 3 {
                                0 => SetOp::Insert(k),
                                1 => SetOp::Remove(k),
                                _ => SetOp::Contains(k),
                            };
                            local.push(rec.measure(op, || {
                                let mut g = set.lock().unwrap();
                                match op {
                                    SetOp::Insert(k) => g.insert(k),
                                    SetOp::Remove(k) => g.remove(&k),
                                    SetOp::Contains(k) => g.contains(&k),
                                }
                            }));
                        }
                        all.lock().unwrap().extend(local);
                    });
                }
            });
            let events = all.into_inner().unwrap();
            assert!(
                check_linearizable(&events),
                "trial {trial} not linearizable"
            );
        }
    }

    #[test]
    fn measure_spec_records_map_events() {
        use crate::spec::{check_history, MapOp, MapRet, MapSpec};
        use std::collections::BTreeMap;
        let rec = Recorder::new();
        let map = Mutex::new(BTreeMap::new());
        let h = vec![
            rec.measure_spec::<MapSpec>(MapOp::Insert(1, 10), || {
                let mut g = map.lock().unwrap();
                MapRet::Inserted(g.insert(1, 10).is_none())
            }),
            rec.measure_spec::<MapSpec>(MapOp::Remove(1), || {
                MapRet::Removed(map.lock().unwrap().remove(&1))
            }),
        ];
        assert!(check_history(&MapSpec, &h).is_some());
    }

    #[test]
    fn recorder_catches_a_broken_structure() {
        // A "set" that always claims success is not linearizable once
        // two non-overlapping inserts of the same key both return true.
        let rec = Recorder::new();
        let e1 = rec.measure(SetOp::Insert(9), || true);
        let e2 = rec.measure(SetOp::Insert(9), || true);
        assert!(!check_linearizable(&[e1, e2]));
    }
}
