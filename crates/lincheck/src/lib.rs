//! Linearizability checking for set histories.
//!
//! The paper argues linearizability by identifying linearization points
//! (§3.3); this crate checks it *mechanically* on recorded executions: a
//! Wing & Gong-style exhaustive search over the partial order of a
//! concurrent history, memoized on (remaining-operations, abstract-set)
//! state.
//!
//! The abstract state is a bitmask, so checked histories must use keys
//! `0..64` — ideal anyway, since linearizability violations reproduce
//! best under maximal contention on tiny key spaces.
//!
//! ```
//! use nmbst_lincheck::{check_linearizable, Event, SetOp};
//!
//! // Two sequential ops: insert(3)=true then contains(3)=true. Legal.
//! let h = vec![
//!     Event { op: SetOp::Insert(3), result: true, invoke: 0, response: 1 },
//!     Event { op: SetOp::Contains(3), result: true, invoke: 2, response: 3 },
//! ];
//! assert!(check_linearizable(&h));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod checker;
#[cfg(feature = "explore")]
pub mod explore;
mod recorder;
pub mod spec;

pub use checker::{check_linearizable, linearization_witness};
pub use recorder::Recorder;
pub use spec::{check_history, GenEvent, MapOp, MapRet, MapSpec, Spec};

/// A set operation (the paper's dictionary ADT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// `insert(k)` — returns whether the set changed.
    Insert(u64),
    /// `delete(k)` — returns whether the set changed.
    Remove(u64),
    /// `search(k)` — returns membership.
    Contains(u64),
}

impl SetOp {
    /// The key the operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            SetOp::Insert(k) | SetOp::Remove(k) | SetOp::Contains(k) => k,
        }
    }

    /// Applies the operation to an abstract set (bitmask over keys
    /// `0..64`); returns `(result, new_state)`.
    pub fn apply(&self, state: u64) -> (bool, u64) {
        match *self {
            SetOp::Insert(k) => {
                let bit = 1u64 << k;
                (state & bit == 0, state | bit)
            }
            SetOp::Remove(k) => {
                let bit = 1u64 << k;
                (state & bit != 0, state & !bit)
            }
            SetOp::Contains(k) => (state & (1u64 << k) != 0, state),
        }
    }
}

/// One completed operation in a recorded history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What was invoked.
    pub op: SetOp,
    /// What it returned.
    pub result: bool,
    /// Logical timestamp at invocation.
    pub invoke: u64,
    /// Logical timestamp at response (must exceed `invoke`).
    pub response: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_insert_remove_contains() {
        let (r, s) = SetOp::Insert(3).apply(0);
        assert!(r);
        assert_eq!(s, 0b1000);
        let (r, s2) = SetOp::Insert(3).apply(s);
        assert!(!r);
        assert_eq!(s2, s);
        let (r, _) = SetOp::Contains(3).apply(s);
        assert!(r);
        let (r, s3) = SetOp::Remove(3).apply(s);
        assert!(r);
        assert_eq!(s3, 0);
        let (r, _) = SetOp::Remove(3).apply(0);
        assert!(!r);
    }

    #[test]
    fn key_accessor() {
        assert_eq!(SetOp::Insert(9).key(), 9);
        assert_eq!(SetOp::Remove(1).key(), 1);
        assert_eq!(SetOp::Contains(0).key(), 0);
    }
}
