//! Seeded schedule exploration (`feature = "explore"`).
//!
//! Drives a real [`NmTreeSet`] — compiled with its `chaos` feature —
//! through *deterministic* thread interleavings: worker threads hand a
//! single run token around at every chaos injection point (each atomic
//! step of the helping protocol) and at every operation boundary, and a
//! seeded SplitMix64 stream picks who runs next. Exactly one thread
//! makes progress at any instant, so a seed fully determines the
//! interleaving, the recorded history, and the final tree — a failing
//! seed replays forever.
//!
//! Each run is validated three ways:
//!
//! 1. the recorded concurrent history must be linearizable
//!    ([`check_linearizable`]),
//! 2. a sequential probe of every key is appended *after* the workers
//!    join, so the final physical contents must be consistent with some
//!    linearization (lost or resurrected keys cannot hide), and
//! 3. [`NmTreeSet::check_invariants`] must accept the final tree.
//!
//! The explorer exists to make helping-protocol regressions loud. The
//! acceptance test reintroduces a known bug — dropping the flag copy on
//! the splice (Algorithm 4, lines 107–108) via
//! [`chaos::Bug::DropFlagOnSplice`] — and demonstrates the explorer
//! finds a violating schedule within a bounded seed budget.

use crate::{check_linearizable, Event, Recorder, SetOp};
use nmbst::chaos::{self, Action};
use nmbst::obs::{FlightRecorder, TraceEvent};
use nmbst::{Ebr, Leaky, NmTreeSet, PoolConfig, Reclaim, RestartPolicy, TreeConfig};
use nmbst_sync::Backoff;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// SplitMix64 (Steele et al.): tiny, full-period, well-mixed.
#[derive(Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Bounds on the scenarios a seed expands to.
///
/// Defaults follow the sweet spot for linearizability hunting: tiny key
/// spaces and a handful of threads, so operations collide constantly and
/// the checker stays fast.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Fewest worker threads per scenario (≥ 2).
    pub min_threads: usize,
    /// Most worker threads per scenario.
    pub max_threads: usize,
    /// Smallest key-space size.
    pub min_keys: u64,
    /// Largest key-space size (keys are `0..keys`; must stay < 64 for
    /// the checker's bitmask state).
    pub max_keys: u64,
    /// Most operations per worker thread.
    pub max_ops_per_thread: usize,
    /// Re-introduce [`chaos::Bug::DropFlagOnSplice`] on every worker
    /// thread — used by tests proving the explorer catches the bug
    /// class. Never enable outside tests.
    pub inject_drop_flag_bug: bool,
    /// Retry-descent policy of the tree under test. The default
    /// ([`RestartPolicy::Local`]) exercises the local-restart seek; set
    /// [`RestartPolicy::Root`] to sweep the paper's root-restart retry
    /// loops with the same seeds.
    pub restart: RestartPolicy,
    /// Run the tree with its node-recycling pool on, so schedules also
    /// interleave through the retire → recycle → realloc path (the
    /// [`chaos::Point::Recycle`] injection point becomes a schedule
    /// point). Off by default to keep the historical seed corpus stable.
    pub pool: bool,
    /// Which reclamation scheme backs the tree under test. Recycling
    /// needs a scheme that actually runs deferrals, so pair `pool: true`
    /// with [`ReclaimKind::Ebr`] to sweep real reuse; under
    /// [`ReclaimKind::Leaky`] the pool only ever reuses discarded insert
    /// scratch.
    pub reclaim: ReclaimKind,
    /// Drive every worker through the finger-anchored batch API instead
    /// of the plain one: each tape op becomes a size-1
    /// `insert_batch`/`remove_batch`/`contains_batch` on a persistent
    /// [`SetHandle`](nmbst::SetHandle). Schedules then also interleave
    /// through [`chaos::Point::BatchFinger`] and the `seek_from` anchor
    /// revalidation, sweeping the finger path under the same seeds. Off
    /// by default to keep the historical seed corpus stable.
    pub batch: bool,
    /// Fat-leaf block capacity of the tree under test (clamped by the
    /// tree to `1..=LEAF_CAP`). Defaults to **1** — the paper's 1-key
    /// leaf shape — which keeps the historical seed corpus meaningful:
    /// at capacity 1 every remove is a structural flag/tag/splice, so
    /// the [`chaos::Bug::DropFlagOnSplice`] canary still fires. Sweep
    /// `{2, 8}` to drive the copy-on-write block publish paths instead
    /// (COW inserts/removes and block splits become the common case).
    pub leaf_cap: usize,
}

/// The reclamation scheme a seeded run instantiates the tree with.
///
/// Determinism holds for both: the token-passing scheduler serializes
/// the threads, so EBR's epoch advancement, bag sealing, and deferral
/// execution are pure functions of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclaimKind {
    /// Paper-faithful leaking mode (the historical explorer default).
    #[default]
    Leaky,
    /// Epoch-based reclamation: retired nodes really traverse the grace
    /// period — and, with the pool on, come back through fresh inserts.
    Ebr,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            min_threads: 2,
            max_threads: 4,
            min_keys: 4,
            max_keys: 16,
            max_ops_per_thread: 5,
            inject_drop_flag_bug: false,
            restart: RestartPolicy::default(),
            pool: false,
            reclaim: ReclaimKind::default(),
            batch: false,
            leaf_cap: 1,
        }
    }
}

/// Everything one seeded run did — enough to compare two runs for
/// determinism or to debug a violation by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The seed the scenario and schedule were derived from.
    pub seed: u64,
    /// Worker threads in the scenario.
    pub threads: usize,
    /// Key-space size (operations draw keys from `0..keys`).
    pub keys: u64,
    /// The scheduler's pick sequence: which thread received the token,
    /// in order.
    pub schedule: Vec<usize>,
    /// The recorded history: seeded prepopulation, concurrent phase,
    /// then the sequential probe of every key.
    pub history: Vec<Event>,
    /// The merged flight-recorder trace of the run: every structural
    /// event (flag injections, tags, splices, helps, …) each thread
    /// executed, in global sequence order. Workers record under their
    /// thread id; the driver's sequential prepopulation and probe phases
    /// record under label `threads`. Deterministic per seed: the
    /// cooperative scheduler serializes the threads, so the same seed
    /// yields a byte-identical rendered trace.
    pub trace: Vec<TraceEvent>,
}

/// A schedule on which the structure misbehaved.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What check failed.
    pub reason: String,
    /// The full run, replayable via [`explore_seed`] with the same
    /// config and [`RunReport::seed`].
    pub report: RunReport,
}

impl Violation {
    /// The violation rendered as a postmortem artifact: the scenario,
    /// the failed check, and the merged flight-recorder trace in
    /// sequence order — the interleaving that broke the structure,
    /// readable without re-running the explorer. Byte-identical for the
    /// same config and seed.
    pub fn postmortem(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "nmbst explorer postmortem");
        let _ = writeln!(out, "seed: {:#x}", self.report.seed);
        let _ = writeln!(
            out,
            "scenario: {} worker threads, keys 0..{}",
            self.report.threads, self.report.keys
        );
        let _ = writeln!(out, "failed check: {}", self.reason);
        let _ = writeln!(
            out,
            "trace ({} structural events; t{} is the sequential driver):",
            self.report.trace.len(),
            self.report.threads
        );
        for event in &self.report.trace {
            let _ = writeln!(out, "{event}");
        }
        out
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {:#x} ({} threads, {} keys, {} events): {}",
            self.report.seed,
            self.report.threads,
            self.report.keys,
            self.report.history.len(),
            self.reason
        )
    }
}

/// Aggregate result of a seed sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Schedules run.
    pub schedules: usize,
    /// History events checked across all schedules.
    pub events: usize,
}

/// The cooperative scheduler: a single run token handed around at every
/// chaos point and operation boundary, next holder chosen by the seeded
/// stream. All workers park on a condvar; the pick among *parked, live*
/// threads is a pure function of the schedule so far, which makes the
/// whole run deterministic.
struct Scheduler {
    n: usize,
    /// Mirror of the current turn for the spin phase (`usize::MAX` =
    /// no one); the mutex-guarded `turn` stays authoritative.
    turn_hint: AtomicUsize,
    state: Mutex<SchedState>,
    cv: Condvar,
}

struct SchedState {
    turn: Option<usize>,
    parked: Vec<bool>,
    done: Vec<bool>,
    registered: usize,
    rng: Rng,
    schedule: Vec<usize>,
}

impl Scheduler {
    fn new(n: usize, seed: u64) -> Arc<Self> {
        Arc::new(Scheduler {
            n,
            turn_hint: AtomicUsize::new(usize::MAX),
            state: Mutex::new(SchedState {
                turn: None,
                parked: vec![false; n],
                done: vec![false; n],
                registered: 0,
                rng: Rng(seed),
                schedule: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Worker `tid` registers and blocks until its first turn. The first
    /// pick happens only once all workers are parked, so OS spawn order
    /// cannot leak into the schedule.
    fn start(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        st.parked[tid] = true;
        st.registered += 1;
        if st.registered == self.n {
            self.pick(&mut st);
            self.cv.notify_all();
        }
        self.wait_for_turn(st, tid);
    }

    /// The running worker yields the token and blocks until it gets it
    /// back (possibly immediately, if it is the only live thread).
    fn gate(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        st.parked[tid] = true;
        self.pick(&mut st);
        self.cv.notify_all();
        self.wait_for_turn(st, tid);
    }

    /// Worker `tid` leaves the scenario and passes the token on.
    fn finish(&self, tid: usize) {
        let mut st = self.state.lock().unwrap();
        st.done[tid] = true;
        st.parked[tid] = false;
        self.pick(&mut st);
        self.cv.notify_all();
    }

    fn wait_for_turn<'a>(&'a self, mut st: MutexGuard<'a, SchedState>, tid: usize) {
        while st.turn != Some(tid) {
            // Spin-then-park pacer: poll the turn hint briefly outside
            // the lock (token handoffs are fast), then sleep.
            drop(st);
            let backoff = Backoff::new();
            while self.turn_hint.load(Ordering::Acquire) != tid && !backoff.is_completed() {
                backoff.spin();
            }
            st = self.state.lock().unwrap();
            if st.turn != Some(tid) {
                st = self.cv.wait(st).unwrap();
            }
        }
        st.parked[tid] = false;
    }

    fn pick(&self, st: &mut SchedState) {
        let candidates: Vec<usize> = (0..self.n)
            .filter(|&i| st.parked[i] && !st.done[i])
            .collect();
        match candidates.as_slice() {
            [] => {
                st.turn = None;
                self.turn_hint.store(usize::MAX, Ordering::Release);
            }
            c => {
                let next = c[(st.rng.next() % c.len() as u64) as usize];
                st.turn = Some(next);
                st.schedule.push(next);
                self.turn_hint.store(next, Ordering::Release);
            }
        }
    }

    fn schedule(&self) -> Vec<usize> {
        self.state.lock().unwrap().schedule.clone()
    }
}

/// Passes the token on even if the worker panics, so a failed assertion
/// inside an operation surfaces as a test failure instead of a hang.
struct FinishGuard<'a> {
    sched: &'a Scheduler,
    tid: usize,
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.sched.finish(self.tid);
    }
}

fn apply<R: Reclaim>(set: &NmTreeSet<u64, R>, op: SetOp) -> bool {
    match op {
        SetOp::Insert(k) => set.insert(k),
        SetOp::Remove(k) => set.remove(&k),
        SetOp::Contains(k) => set.contains(&k),
    }
}

/// Batch-mode twin of [`apply`]: one tape op = one size-1 batch on the
/// worker's persistent handle, so every op crosses the finger path.
fn apply_batch<R: Reclaim>(handle: &mut nmbst::SetHandle<'_, u64, R>, op: SetOp) -> bool {
    match op {
        SetOp::Insert(k) => handle.insert_batch([k]) == 1,
        SetOp::Remove(k) => handle.remove_batch([k]) == 1,
        SetOp::Contains(k) => handle.contains_batch([k])[0],
    }
}

/// Runs the scenario and schedule derived from `seed` and validates it.
/// The `Ok` report (schedule + history) is bit-for-bit reproducible:
/// calling again with the same config and seed returns an equal report.
pub fn explore_seed(cfg: &ExploreConfig, seed: u64) -> Result<RunReport, Box<Violation>> {
    match cfg.reclaim {
        ReclaimKind::Leaky => run_seed::<Leaky>(cfg, seed),
        ReclaimKind::Ebr => run_seed::<Ebr>(cfg, seed),
    }
}

fn run_seed<R: Reclaim>(cfg: &ExploreConfig, seed: u64) -> Result<RunReport, Box<Violation>> {
    assert!(cfg.min_threads >= 2 && cfg.max_threads >= cfg.min_threads);
    assert!(cfg.min_keys >= 2 && cfg.max_keys >= cfg.min_keys && cfg.max_keys < 64);
    // The checker's memoization works on u64 bitmasks and histories are
    // exhaustively ordered; keep every phase small enough that the whole
    // history stays within its 64-event budget.
    assert!(
        cfg.max_keys as usize * 2 + cfg.max_threads * cfg.max_ops_per_thread <= 64,
        "scenario bounds overflow the checker's 64-event budget"
    );

    let mut rng = Rng(seed ^ 0xA5A5_5A5A_C0FF_EE00);
    let threads = rng.in_range(cfg.min_threads as u64, cfg.max_threads as u64) as usize;
    let keys = rng.in_range(cfg.min_keys, cfg.max_keys);
    let inject_bug = cfg.inject_drop_flag_bug;
    let batch = cfg.batch;

    let set: NmTreeSet<u64, R> = NmTreeSet::with_config(
        TreeConfig::default()
            .with_restart(cfg.restart)
            .with_leaf_cap(cfg.leaf_cap)
            .with_pool(if cfg.pool {
                PoolConfig::default()
            } else {
                PoolConfig::disabled()
            }),
    );
    let rec = Recorder::new();
    // Capture-scoped flight recorder: sequence numbers start at 0 for
    // every run, and the token-passing scheduler serializes all recording
    // threads, so the trace is deterministic per seed. The driver records
    // its sequential phases under label `threads`.
    let flight = FlightRecorder::new();
    let _driver_attached = flight.attach(threads as u32);
    let mut history: Vec<Event> = Vec::new();

    // Seeded prepopulation, recorded sequentially so the checker sees
    // the true initial state.
    for k in 0..keys {
        if rng.next() & 1 == 1 {
            history.push(rec.measure(SetOp::Insert(k), || set.insert(k)));
        }
    }

    // Per-thread operation tapes, deletion-heavy: the helping protocol
    // only activates on deletes.
    let tapes: Vec<Vec<SetOp>> = (0..threads)
        .map(|_| {
            let ops = rng.in_range(1, cfg.max_ops_per_thread as u64);
            (0..ops)
                .map(|_| {
                    let k = rng.next() % keys;
                    match rng.next() % 4 {
                        0 => SetOp::Insert(k),
                        1 | 2 => SetOp::Remove(k),
                        _ => SetOp::Contains(k),
                    }
                })
                .collect()
        })
        .collect();

    let sched = Scheduler::new(threads, rng.next());
    let collected: Mutex<Vec<Event>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for (tid, tape) in tapes.iter().enumerate() {
            let sched = Arc::clone(&sched);
            let set = &set;
            let rec = &rec;
            let collected = &collected;
            let flight = flight.clone();
            s.spawn(move || {
                // Attach before taking the token: ring creation happens
                // outside the schedule, recording happens only while this
                // thread holds the token.
                let _attached = flight.attach(tid as u32);
                sched.start(tid);
                let _token = FinishGuard { sched: &sched, tid };
                if inject_bug {
                    chaos::set_bug(chaos::Bug::DropFlagOnSplice, true);
                }
                let mut local = Vec::with_capacity(tape.len());
                let hook_sched = Arc::clone(&sched);
                // Batch mode keeps one handle for the whole tape so each
                // op's seek record is the next op's finger anchor.
                let mut handle = batch.then(|| set.handle());
                chaos::with_hook(
                    move |_point| {
                        hook_sched.gate(tid);
                        Action::Continue
                    },
                    || {
                        for &op in tape {
                            // Schedule point at the op boundary; the hook
                            // adds one at every atomic step inside.
                            sched.gate(tid);
                            local.push(rec.measure(op, || match &mut handle {
                                Some(h) => apply_batch(h, op),
                                None => apply(set, op),
                            }));
                        }
                    },
                );
                collected.lock().unwrap().extend(local);
            });
        }
    });
    history.extend(collected.into_inner().unwrap());

    // Sequential probe phase: the final physical contents become part of
    // the checked history, so a lost or resurrected key is a guaranteed
    // linearizability failure even if no mid-run result exposed it.
    for k in 0..keys {
        history.push(rec.measure(SetOp::Contains(k), || set.contains(&k)));
    }

    let report = RunReport {
        seed,
        threads,
        keys,
        schedule: sched.schedule(),
        history,
        trace: flight.merged(),
    };

    let mut set = set;
    if let Err(e) = set.check_invariants() {
        return Err(Box::new(Violation {
            reason: format!("structural invariants violated: {e}"),
            report,
        }));
    }
    if !check_linearizable(&report.history) {
        return Err(Box::new(Violation {
            reason: "history (with final sequential probes) is not linearizable".to_string(),
            report,
        }));
    }
    Ok(report)
}

/// Sweeps `seeds`, stopping at the first violating schedule.
pub fn explore_many(
    cfg: &ExploreConfig,
    seeds: impl IntoIterator<Item = u64>,
) -> Result<ExploreStats, Box<Violation>> {
    let mut stats = ExploreStats::default();
    for seed in seeds {
        let report = explore_seed(cfg, seed)?;
        stats.schedules += 1;
        stats.events += report.history.len();
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_run() {
        let cfg = ExploreConfig::default();
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = explore_seed(&cfg, seed).expect("correct tree passes");
            let b = explore_seed(&cfg, seed).expect("correct tree passes");
            assert_eq!(a, b, "seed {seed:#x} did not replay identically");
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let cfg = ExploreConfig::default();
        let runs: Vec<RunReport> = (0..8)
            .map(|s| explore_seed(&cfg, s).expect("correct tree passes"))
            .collect();
        let distinct = runs
            .iter()
            .map(|r| (r.threads, r.keys, r.schedule.clone()))
            .collect::<std::collections::BTreeSet<_>>();
        assert!(
            distinct.len() > 4,
            "seeds barely vary the scenario/schedule: {} distinct of 8",
            distinct.len()
        );
    }

    #[test]
    fn bounded_sweep_is_clean_on_the_real_tree() {
        let cfg = ExploreConfig::default();
        let stats = explore_many(&cfg, 0..64).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.schedules, 64);
        assert!(stats.events > 0);
    }

    #[test]
    fn batch_mode_same_seed_same_run() {
        let cfg = ExploreConfig {
            batch: true,
            ..ExploreConfig::default()
        };
        for seed in [0u64, 7, 0xBA7C_4ED5] {
            let a = explore_seed(&cfg, seed).expect("correct tree passes");
            let b = explore_seed(&cfg, seed).expect("correct tree passes");
            assert_eq!(a, b, "batch seed {seed:#x} did not replay identically");
        }
    }

    #[test]
    fn batch_mode_bounded_sweep_is_clean() {
        // Every op crosses Point::BatchFinger and the seek_from anchor
        // revalidation; linearizability + probe + invariants must still
        // hold on every schedule.
        let cfg = ExploreConfig {
            batch: true,
            ..ExploreConfig::default()
        };
        let stats = explore_many(&cfg, 0..48).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.schedules, 48);
    }

    #[test]
    fn batch_mode_sweeps_ebr_with_pool() {
        // Finger anchors + node recycling + real reclamation in one
        // sweep: anchors must revalidate correctly even as retired nodes
        // return through the pool.
        let cfg = ExploreConfig {
            batch: true,
            pool: true,
            reclaim: ReclaimKind::Ebr,
            ..ExploreConfig::default()
        };
        let stats = explore_many(&cfg, 0..24).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.schedules, 24);
    }
}
