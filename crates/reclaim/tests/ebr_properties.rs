//! Property-style tests for the epoch-based reclaimer: under
//! pseudo-random single-threaded pin/retire/flush sequences, every
//! retired allocation is freed exactly once, and never while a guard
//! that could reach it is live. Sequences come from a fixed-seed
//! SplitMix64 stream (no external property-testing crate in this
//! offline build).

use nmbst_reclaim::{Ebr, Reclaim, RetireGuard};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// SplitMix64 (Steele et al.): tiny, full-period, well-mixed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Pin,
    Unpin,
    Retire,
    Flush,
}

fn gen_steps(rng: &mut Rng, max_len: u64) -> Vec<Step> {
    let len = 1 + rng.below(max_len);
    (0..len)
        .map(|_| match rng.below(8) {
            // Weights mirror the original distribution 2:2:3:1.
            0 | 1 => Step::Pin,
            2 | 3 => Step::Unpin,
            4..=6 => Step::Retire,
            _ => Step::Flush,
        })
        .collect()
}

struct Tracked(Arc<AtomicUsize>);
impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn every_retired_allocation_freed_exactly_once() {
    let mut rng = Rng(0xEB40_0001);
    for case in 0..64 {
        let steps = gen_steps(&mut rng, 120);
        let drops = Arc::new(AtomicUsize::new(0));
        let mut retired = 0usize;
        {
            let ebr = Ebr::new();
            // A stack of live guards; `Retire` uses the innermost one or
            // a transient guard when none is held.
            let mut guards = Vec::new();
            for step in &steps {
                match step {
                    Step::Pin => {
                        if guards.len() < 8 {
                            guards.push(ebr.pin());
                        }
                    }
                    Step::Unpin => {
                        guards.pop();
                    }
                    Step::Retire => {
                        let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
                        retired += 1;
                        match guards.last() {
                            Some(g) => unsafe { g.retire(ptr) },
                            None => unsafe { ebr.pin().retire(ptr) },
                        }
                    }
                    Step::Flush => {
                        // Flushing while pinned is legal; it just can't
                        // free anything our own pin still protects.
                        ebr.flush();
                    }
                }
                // Whatever was freed so far must not exceed what was
                // retired.
                assert!(
                    drops.load(Ordering::Relaxed) <= retired,
                    "case {case}: freed more than retired ({steps:?})"
                );
            }
            drop(guards);
        }
        // Collector dropped: everything must be freed, exactly once each.
        assert_eq!(
            drops.load(Ordering::Relaxed),
            retired,
            "case {case}: drop count diverged ({steps:?})"
        );
    }
}

#[test]
fn nothing_frees_while_continuously_pinned() {
    let mut rng = Rng(0xEB40_0002);
    for case in 0..16 {
        let retires = 1 + rng.below(200) as usize;
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        let outer = ebr.pin();
        for _ in 0..retires {
            let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
            unsafe { outer.retire(ptr) };
            ebr.flush(); // must be unable to free anything we can reach
        }
        // We pinned before any retire and never unpinned: since all
        // retirements happened at-or-after our epoch, none may be freed.
        assert_eq!(
            drops.load(Ordering::Relaxed),
            0,
            "case {case} ({retires} retires)"
        );
        drop(outer);
        drop(ebr);
        assert_eq!(drops.load(Ordering::Relaxed), retires, "case {case}");
    }
}

#[test]
fn interleaved_guards_from_two_collectors() {
    let drops_a = Arc::new(AtomicUsize::new(0));
    let drops_b = Arc::new(AtomicUsize::new(0));
    let a = Ebr::new();
    let b = Ebr::new();
    let ga = a.pin();
    for _ in 0..10 {
        let gb = b.pin();
        let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops_b))));
        unsafe { gb.retire(ptr) };
    }
    let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops_a))));
    unsafe { ga.retire(ptr) };
    drop(ga);
    // B's garbage is independent of A's pin.
    drop(b);
    assert_eq!(drops_b.load(Ordering::Relaxed), 10);
    assert_eq!(drops_a.load(Ordering::Relaxed), 0);
    drop(a);
    assert_eq!(drops_a.load(Ordering::Relaxed), 1);
}
