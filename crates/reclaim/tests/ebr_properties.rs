//! Property-based tests for the epoch-based reclaimer: under arbitrary
//! single-threaded pin/retire/flush sequences, every retired allocation
//! is freed exactly once, and never while a guard that could reach it is
//! live.

use nmbst_reclaim::{Ebr, Reclaim, RetireGuard};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Step {
    Pin,
    Unpin,
    Retire,
    Flush,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        2 => Just(Step::Pin),
        2 => Just(Step::Unpin),
        3 => Just(Step::Retire),
        1 => Just(Step::Flush),
    ]
}

struct Tracked(Arc<AtomicUsize>);
impl Drop for Tracked {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_retired_allocation_freed_exactly_once(steps in prop::collection::vec(step_strategy(), 1..120)) {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut retired = 0usize;
        {
            let ebr = Ebr::new();
            // A stack of live guards; `Retire` uses the innermost one or
            // a transient guard when none is held.
            let mut guards = Vec::new();
            for step in &steps {
                match step {
                    Step::Pin => {
                        if guards.len() < 8 {
                            guards.push(ebr.pin());
                        }
                    }
                    Step::Unpin => {
                        guards.pop();
                    }
                    Step::Retire => {
                        let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
                        retired += 1;
                        match guards.last() {
                            Some(g) => unsafe { g.retire(ptr) },
                            None => unsafe { ebr.pin().retire(ptr) },
                        }
                    }
                    Step::Flush => {
                        // Flushing while pinned is legal; it just can't
                        // free anything our own pin still protects.
                        ebr.flush();
                    }
                }
                // Whatever was freed so far must not exceed what was retired.
                prop_assert!(drops.load(Ordering::Relaxed) <= retired);
            }
            drop(guards);
        }
        // Collector dropped: everything must be freed, exactly once each.
        prop_assert_eq!(drops.load(Ordering::Relaxed), retired);
    }

    #[test]
    fn nothing_frees_while_continuously_pinned(retires in 1usize..200) {
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        let outer = ebr.pin();
        for _ in 0..retires {
            let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops))));
            unsafe { outer.retire(ptr) };
            ebr.flush(); // must be unable to free anything we can reach
        }
        // We pinned before any retire and never unpinned: since all
        // retirements happened at-or-after our epoch, none may be freed.
        prop_assert_eq!(drops.load(Ordering::Relaxed), 0);
        drop(outer);
        drop(ebr);
        prop_assert_eq!(drops.load(Ordering::Relaxed), retires);
    }
}

#[test]
fn interleaved_guards_from_two_collectors() {
    let drops_a = Arc::new(AtomicUsize::new(0));
    let drops_b = Arc::new(AtomicUsize::new(0));
    let a = Ebr::new();
    let b = Ebr::new();
    let ga = a.pin();
    for _ in 0..10 {
        let gb = b.pin();
        let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops_b))));
        unsafe { gb.retire(ptr) };
    }
    let ptr = Box::into_raw(Box::new(Tracked(Arc::clone(&drops_a))));
    unsafe { ga.retire(ptr) };
    drop(ga);
    // B's garbage is independent of A's pin.
    drop(b);
    assert_eq!(drops_b.load(Ordering::Relaxed), 10);
    assert_eq!(drops_a.load(Ordering::Relaxed), 0);
    drop(a);
    assert_eq!(drops_a.load(Ordering::Relaxed), 1);
}
