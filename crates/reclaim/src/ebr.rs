//! Epoch-based reclamation (EBR), built from scratch.
//!
//! # Scheme
//!
//! A global epoch counter advances through an unbounded sequence
//! `0, 1, 2, …`. Every participating thread owns a *slot* holding its
//! local view: a word whose bit 0 says "pinned" and whose upper bits hold
//! the epoch the thread pinned at. Retired allocations are batched into
//! bags stamped with the global epoch at seal time; a bag may be freed
//! once the global epoch is at least **two** ahead of its stamp, because:
//!
//! * the epoch can only advance when every pinned slot shows the current
//!   epoch, so a thread pinned at `e` blocks any advance beyond `e + 1`;
//! * an allocation sealed at stamp `s` was unlinked before sealing, so a
//!   thread pinned at `s + 1` or later can never have read a pointer to
//!   it. The only threads that might still hold one were pinned at `≤ s`,
//!   and those block the epoch below `s + 2`.
//!
//! # Structure
//!
//! * [`Ebr`] — the collector; one per data structure. Dropping it frees
//!   all pending garbage (guards borrow the collector, so none can be
//!   outstanding).
//! * Per-thread `Local`s are created lazily through a thread-local
//!   registry keyed by collector id, so `pin` needs no explicit handle.
//! * [`EbrGuard`] — the pinned critical section; re-entrant on the same
//!   thread (inner pins reuse the outer epoch).
//!
//! `pin`/`unpin` are wait-free (one store + one fence). Sealing a bag
//! takes a short spin-locked push to the global queue; collection is
//! opportunistic (`try_lock`) so it never blocks an operation.

use crate::{Deferred, Reclaim, ReclaimGauges, RetireGuard};
use nmbst_sync::{CachePadded, SpinLock};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How many retired objects accumulate in a thread-local bag before it is
/// sealed and handed to the global queue. Chosen small enough that memory
/// bounds stay tight in delete-heavy workloads, large enough that the
/// spin-locked queue push amortizes away.
const BAG_SEAL_THRESHOLD: usize = 32;

/// A participant's shared state: one word (pinned bit + epoch) plus an
/// activity flag allowing slot reuse after a thread exits. Slots are
/// never deallocated while the collector lives, so scanning them is safe.
struct Slot {
    /// Bit 0: pinned. Bits 1..: the epoch pinned at.
    state: CachePadded<AtomicU64>,
    /// Whether a live thread currently owns this slot.
    active: AtomicBool,
    /// Length of the owner's *unsealed* local retire bag. Written only by
    /// the owning thread (bump on retire, zero on seal); read racily by
    /// [`Ebr::gauges`] / [`Ebr::per_thread_backlog`]. Diagnostics only —
    /// never consulted by the reclamation protocol itself.
    retired: AtomicU64,
}

const PINNED: u64 = 1;

/// A bag of deferred destructions stamped with the epoch it was sealed at.
struct SealedBag {
    epoch: u64,
    items: Vec<Deferred>,
}

struct Global {
    /// Unique id used to key the thread-local registry.
    id: u64,
    epoch: CachePadded<AtomicU64>,
    /// Participant registry. Locked only on registration (first pin of a
    /// thread), slot release, and epoch-advance scans.
    slots: SpinLock<Vec<Arc<Slot>>>,
    /// Sealed bags awaiting the epoch distance that makes them free-able.
    pending: SpinLock<Vec<SealedBag>>,
    /// Set when the owning `Ebr` is dropped: no guards can exist any
    /// more, so straggler `Local`s may free garbage immediately.
    orphaned: AtomicBool,
    /// Tokens parked by [`Reclaim::hold`]. Every deferral execution site
    /// (`collect`, `drain_all`) runs under a live `Global` — reached via
    /// the owning `Ebr` or a straggler `Local`'s `Arc` — and struct
    /// fields drop after `Global::drop` has drained the last bag, so a
    /// parked token provably outlives every deferral call.
    keepalive: SpinLock<Vec<Box<dyn std::any::Any + Send>>>,
}

impl Global {
    /// Advances the global epoch if every pinned participant has caught
    /// up with it. Returns the (possibly just advanced) epoch.
    fn try_advance(&self) -> u64 {
        let epoch = self.epoch.load(Ordering::Relaxed);
        // Synchronize with the `fence(SeqCst)` in `Local::pin`: after
        // this fence, any pin whose store we fail to observe started
        // after our epoch load, and will have stored `epoch` or later.
        fence(Ordering::SeqCst);
        let Some(slots) = self.slots.try_lock() else {
            return epoch;
        };
        for slot in slots.iter() {
            let state = slot.state.load(Ordering::Relaxed);
            if state & PINNED == PINNED && state >> 1 != epoch {
                return epoch;
            }
        }
        drop(slots);
        match self
            .epoch
            .compare_exchange(epoch, epoch + 1, Ordering::Release, Ordering::Relaxed)
        {
            Ok(_) => epoch + 1,
            Err(current) => current,
        }
    }

    /// Frees every pending bag at least two epochs old. Opportunistic:
    /// skips entirely if another thread holds the queue.
    fn collect(&self) {
        let epoch = self.try_advance();
        let mut ready = Vec::new();
        if let Some(mut pending) = self.pending.try_lock() {
            let mut i = 0;
            while i < pending.len() {
                if epoch.wrapping_sub(pending[i].epoch) >= 2 {
                    ready.push(pending.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        // Destructors run outside the lock.
        for bag in ready {
            for item in bag.items {
                item.call();
            }
        }
    }

    /// Frees *everything* pending, regardless of epoch. Only sound when
    /// no guard can exist (collector orphaned or being dropped).
    fn drain_all(&self) {
        let bags = std::mem::take(&mut *self.pending.lock());
        for bag in bags {
            for item in bag.items {
                item.call();
            }
        }
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // Last owner: no locals, no guards. Free whatever is left.
        self.drain_all();
    }
}

/// Per-thread participant state, owned by the thread-local registry.
struct Local {
    global: Arc<Global>,
    slot: Arc<Slot>,
    guard_count: Cell<usize>,
    bag: RefCell<Vec<Deferred>>,
}

impl Local {
    fn register(global: Arc<Global>) -> Local {
        let mut slots = global.slots.lock();
        let slot = match slots.iter().find(|s| {
            !s.active.load(Ordering::Relaxed)
                && s.active
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
        }) {
            Some(s) => Arc::clone(s),
            None => {
                let s = Arc::new(Slot {
                    state: CachePadded::new(AtomicU64::new(0)),
                    active: AtomicBool::new(true),
                    retired: AtomicU64::new(0),
                });
                slots.push(Arc::clone(&s));
                s
            }
        };
        drop(slots);
        Local {
            global,
            slot,
            guard_count: Cell::new(0),
            bag: RefCell::new(Vec::new()),
        }
    }

    #[inline]
    fn pin(&self) {
        let count = self.guard_count.get();
        if count == 0 {
            let epoch = self.global.epoch.load(Ordering::Relaxed);
            self.slot
                .state
                .store(epoch << 1 | PINNED, Ordering::Relaxed);
            // Make the pin visible before any shared read: pairs with the
            // SeqCst fence in `try_advance`.
            fence(Ordering::SeqCst);
        }
        self.guard_count.set(count + 1);
    }

    #[inline]
    fn unpin(&self) {
        let count = self.guard_count.get() - 1;
        self.guard_count.set(count);
        if count == 0 {
            self.slot.state.store(0, Ordering::Release);
            if self.bag.borrow().len() >= BAG_SEAL_THRESHOLD {
                self.seal();
                self.global.collect();
            }
        }
    }

    /// Moves the local bag to the global queue, stamped with the current
    /// epoch.
    fn seal(&self) {
        let items = std::mem::take(&mut *self.bag.borrow_mut());
        self.slot.retired.store(0, Ordering::Relaxed);
        if items.is_empty() {
            return;
        }
        let epoch = self.global.epoch.load(Ordering::Relaxed);
        self.global.pending.lock().push(SealedBag { epoch, items });
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        debug_assert_eq!(self.guard_count.get(), 0, "thread exited while pinned");
        self.slot.state.store(0, Ordering::Release);
        self.seal();
        self.slot.active.store(false, Ordering::Release);
        // If the collector is gone, nobody is left to collect for us —
        // and nobody can be pinned, so everything is immediately free-able.
        if self.global.orphaned.load(Ordering::Acquire) {
            self.global.drain_all();
        }
    }
}

thread_local! {
    /// Registry of this thread's `Local`s, keyed by collector id. Scanned
    /// linearly: a thread participates in very few collectors at a time,
    /// and entries for dropped collectors are evicted on the next pin.
    static LOCALS: RefCell<Vec<(u64, Rc<Local>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(0);

/// An epoch-based garbage collector.
///
/// Typically owned by the concurrent data structure it protects. Threads
/// participate implicitly: the first [`pin`](Ebr::pin) on a thread
/// registers it; registration is dropped when the thread exits (or when
/// the collector is dropped).
///
/// # Examples
///
/// ```
/// use nmbst_reclaim::{Ebr, Reclaim, RetireGuard};
///
/// let ebr = Ebr::new();
/// let guard = ebr.pin();
/// let ptr = Box::into_raw(Box::new(42));
/// // ... unlink `ptr` from the shared structure, then:
/// unsafe { guard.retire(ptr) };
/// drop(guard);
/// // `ptr` is freed once no pinned thread can still reach it —
/// // at the latest when `ebr` is dropped.
/// ```
pub struct Ebr {
    global: Arc<Global>,
}

impl Ebr {
    /// Returns this thread's `Local` for this collector, registering on
    /// first use and evicting registry entries of dropped collectors.
    fn local(&self) -> Rc<Local> {
        LOCALS.with(|registry| {
            let mut registry = registry.borrow_mut();
            registry.retain(|(_, local)| !local.global.orphaned.load(Ordering::Acquire));
            if let Some((_, local)) = registry.iter().find(|(id, _)| *id == self.global.id) {
                return Rc::clone(local);
            }
            let local = Rc::new(Local::register(Arc::clone(&self.global)));
            registry.push((self.global.id, Rc::clone(&local)));
            local
        })
    }

    /// Current value of the global epoch (diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.global.epoch.load(Ordering::Acquire)
    }

    /// Unsealed retire-queue length of every *active* participant slot,
    /// in registry order. Diagnostics: the values are racy snapshots, but
    /// each is exact if its owning thread is quiescent. Sealed bags (on
    /// the global queue) are not attributed to a thread; they show up
    /// only in [`ReclaimGauges::retired_backlog`].
    pub fn per_thread_backlog(&self) -> Vec<u64> {
        self.global
            .slots
            .lock()
            .iter()
            .filter(|s| s.active.load(Ordering::Relaxed))
            .map(|s| s.retired.load(Ordering::Relaxed))
            .collect()
    }
}

impl Reclaim for Ebr {
    type Guard<'a> = EbrGuard<'a>;

    fn new() -> Self {
        Ebr {
            global: Arc::new(Global {
                id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
                epoch: CachePadded::new(AtomicU64::new(0)),
                slots: SpinLock::new(Vec::new()),
                pending: SpinLock::new(Vec::new()),
                orphaned: AtomicBool::new(false),
                keepalive: SpinLock::new(Vec::new()),
            }),
        }
    }

    #[inline]
    fn pin(&self) -> EbrGuard<'_> {
        let local = self.local();
        local.pin();
        EbrGuard {
            local,
            _collector: PhantomData,
        }
    }

    /// Seals this thread's bag and collects, making this thread's
    /// retired garbage eligible without waiting for thread exit.
    fn flush(&self) {
        let local = self.local();
        local.seal();
        self.global.collect();
    }

    /// Epoch, epoch lag behind the oldest pinned thread, pinned-thread
    /// count, and total retired-but-unreclaimed backlog (local bags plus
    /// sealed bags). Takes the registry and queue spin locks briefly;
    /// safe to call from any thread at any time, including while pinned.
    /// Parks `token` in the global state, which outlives every deferral
    /// call: stragglers reach `drain_all` through their own `Arc` to it.
    fn hold(&self, token: Box<dyn std::any::Any + Send>) {
        self.global.keepalive.lock().push(token);
    }

    fn gauges(&self) -> ReclaimGauges {
        let epoch = self.global.epoch.load(Ordering::Acquire);
        let mut pinned_threads = 0u64;
        let mut min_pinned_epoch = None;
        let mut local_backlog = 0u64;
        for slot in self.global.slots.lock().iter() {
            let state = slot.state.load(Ordering::Relaxed);
            if state & PINNED == PINNED {
                pinned_threads += 1;
                let e = state >> 1;
                min_pinned_epoch = Some(min_pinned_epoch.map_or(e, |m: u64| m.min(e)));
            }
            if slot.active.load(Ordering::Relaxed) {
                local_backlog += slot.retired.load(Ordering::Relaxed);
            }
        }
        let sealed_backlog: u64 = self
            .global
            .pending
            .lock()
            .iter()
            .map(|bag| bag.items.len() as u64)
            .sum();
        ReclaimGauges {
            epoch,
            // A thread pinned at `e` caps the epoch at `e + 1`, so the lag
            // is normally 0 or 1; saturate against the benign race where a
            // pin lands between our epoch load and the slot scan.
            epoch_lag: min_pinned_epoch.map_or(0, |m| epoch.saturating_sub(m)),
            pinned_threads,
            retired_backlog: local_backlog + sealed_backlog,
        }
    }
}

impl Default for Ebr {
    fn default() -> Self {
        Reclaim::new()
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // Guards borrow `&self`, so none exist anywhere. Publish
        // orphan-hood first, then drain: a straggler `Local::drop` either
        // pushes before our drain (we free it) or observes `orphaned`
        // and drains its own push.
        self.global.orphaned.store(true, Ordering::SeqCst);
        // Evict this thread's own Local now (sealing its bag) instead of
        // waiting for thread exit; other threads' bags were sealed when
        // those threads exited, or will drain themselves via the
        // orphaned flag.
        let _ = LOCALS.try_with(|registry| {
            registry
                .borrow_mut()
                .retain(|(id, _)| *id != self.global.id);
        });
        self.global.drain_all();
    }
}

impl std::fmt::Debug for Ebr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ebr")
            .field("id", &self.global.id)
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// The pinned critical section of an [`Ebr`] collector.
///
/// Re-entrant: nested pins on the same thread share the outermost epoch.
/// `!Send`: a guard must be dropped on the thread that created it.
pub struct EbrGuard<'a> {
    local: Rc<Local>,
    _collector: PhantomData<&'a Ebr>,
}

impl RetireGuard for EbrGuard<'_> {
    #[inline]
    unsafe fn retire_deferred(&self, deferred: Deferred) {
        // Recycle deferrals ride the same bags as plain drops: the bag's
        // epoch stamp is the grace-period proof either way.
        self.local.bag.borrow_mut().push(deferred);
        self.local.slot.retired.fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for EbrGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.local.unpin();
    }
}

impl std::fmt::Debug for EbrGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EbrGuard { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn retire_counter(ebr: &Ebr, drops: &Arc<AtomicUsize>) {
        let guard = ebr.pin();
        let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(drops))));
        unsafe { guard.retire(ptr) };
    }

    #[test]
    fn garbage_freed_by_collector_drop() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        for _ in 0..10 {
            retire_counter(&ebr, &drops);
        }
        drop(ebr);
        assert_eq!(drops.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn flush_then_quiescence_frees_without_drop() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        for _ in 0..5 {
            retire_counter(&ebr, &drops);
        }
        ebr.flush();
        // Nothing is pinned; a few flushes advance the epoch far enough.
        ebr.flush();
        ebr.flush();
        assert_eq!(drops.load(Ordering::Relaxed), 5);
        drop(ebr);
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pinned_thread_blocks_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        let outer = ebr.pin();
        let epoch_at_pin = ebr.epoch();
        // Retire from another thread; it flushes and tries to collect.
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..3 {
                    retire_counter(&ebr, &drops);
                }
                ebr.flush();
                ebr.flush();
                ebr.flush();
            });
        });
        // Our pin caps the epoch at +1, so nothing can have been freed...
        assert!(ebr.epoch() <= epoch_at_pin + 1);
        assert_eq!(drops.load(Ordering::Relaxed), 0, "freed under a pin");
        drop(outer);
        ebr.flush();
        ebr.flush();
        ebr.flush();
        assert_eq!(drops.load(Ordering::Relaxed), 3);
        drop(ebr);
    }

    #[test]
    fn nested_pins_share_epoch() {
        let ebr = Ebr::new();
        let g1 = ebr.pin();
        let e1 = ebr.epoch();
        let g2 = ebr.pin();
        drop(g2);
        // Still pinned: epoch can advance at most once past our pin.
        for _ in 0..5 {
            ebr.flush();
        }
        assert!(ebr.epoch() <= e1 + 1);
        drop(g1);
    }

    #[test]
    fn many_threads_retire_everything_freed() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        retire_counter(&ebr, &drops);
                    }
                    // `thread::scope` returns when the closure does, which
                    // can be before this thread's TLS destructors seal its
                    // bag; flush explicitly so the count below is
                    // deterministic.
                    ebr.flush();
                });
            }
        });
        drop(ebr);
        assert_eq!(drops.load(Ordering::Relaxed), THREADS * PER_THREAD);
    }

    #[test]
    fn two_collectors_are_independent() {
        let drops_a = Arc::new(AtomicUsize::new(0));
        let drops_b = Arc::new(AtomicUsize::new(0));
        let a = Ebr::new();
        let b = Ebr::new();
        retire_counter(&a, &drops_a);
        retire_counter(&b, &drops_b);
        drop(a);
        assert_eq!(drops_a.load(Ordering::Relaxed), 1);
        assert_eq!(drops_b.load(Ordering::Relaxed), 0);
        drop(b);
        assert_eq!(drops_b.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn epoch_advances_when_unpinned() {
        let ebr = Ebr::new();
        let e0 = ebr.epoch();
        // Touch the collector so this thread is registered but unpinned.
        drop(ebr.pin());
        for _ in 0..4 {
            ebr.flush();
        }
        assert!(ebr.epoch() > e0);
    }

    #[test]
    fn slot_reuse_after_thread_exit() {
        let ebr = Ebr::new();
        for _ in 0..4 {
            std::thread::scope(|s| {
                s.spawn(|| {
                    drop(ebr.pin());
                });
            });
        }
        // All four threads reused the same slot (plus possibly the main
        // thread's): the registry stays small.
        assert!(ebr.global.slots.lock().len() <= 2);
    }

    #[test]
    fn gauges_track_pin_retire_seal_and_drain() {
        let drops = Arc::new(AtomicUsize::new(0));
        let ebr = Ebr::new();
        assert_eq!(ebr.gauges(), ReclaimGauges::default());

        let guard = ebr.pin();
        let g = ebr.gauges();
        assert_eq!(g.pinned_threads, 1);
        assert_eq!(g.retired_backlog, 0);

        for _ in 0..3 {
            let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { guard.retire(ptr) };
        }
        let g = ebr.gauges();
        assert_eq!(g.retired_backlog, 3, "local bag counted before sealing");
        assert_eq!(ebr.per_thread_backlog(), vec![3]);

        drop(guard);
        ebr.flush(); // seal: backlog moves from the slot to the queue
        let g = ebr.gauges();
        assert_eq!(g.pinned_threads, 0);
        assert!(
            g.retired_backlog <= 3,
            "sealed items still count until freed"
        );
        assert_eq!(ebr.per_thread_backlog(), vec![0]);

        ebr.flush();
        ebr.flush(); // two epoch advances free the sealed bag
        let g = ebr.gauges();
        assert_eq!(g.retired_backlog, 0, "drained after quiescence");
        assert_eq!(drops.load(Ordering::Relaxed), 3);
        drop(ebr);
    }

    #[test]
    fn gauges_see_epoch_lag_under_a_parked_pin() {
        let ebr = Ebr::new();
        let parked = ebr.pin();
        // Another thread retires and flushes enough to advance the epoch
        // once; our pin caps it there, which the lag gauge must expose.
        std::thread::scope(|s| {
            s.spawn(|| {
                let drops = Arc::new(AtomicUsize::new(0));
                retire_counter(&ebr, &drops);
                ebr.flush();
                ebr.flush();
                ebr.flush();
            });
        });
        let g = ebr.gauges();
        assert_eq!(g.pinned_threads, 1);
        assert_eq!(g.epoch_lag, 1, "parked pin holds the epoch one behind");
        assert!(g.retired_backlog >= 1, "garbage held hostage by the pin");
        drop(parked);
        drop(ebr);
    }

    #[test]
    fn guard_count_survives_interleaved_collectors() {
        let a = Ebr::new();
        let b = Ebr::new();
        let ga = a.pin();
        let gb = b.pin();
        let ga2 = a.pin();
        drop(ga);
        drop(gb);
        drop(ga2);
        drop(a);
        drop(b);
    }
}
