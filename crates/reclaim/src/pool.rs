//! Bounded free lists that recycle retired blocks back into allocations.
//!
//! The paper's delete is allocation-free, but every insert pays the
//! global allocator for two fresh nodes, and this crate's reclaimers
//! historically handed grace-period-expired memory straight back to that
//! allocator. A [`NodePool`] closes the loop: once a reclaimer proves a
//! retired block unreachable, the block's deferral pushes it onto the
//! pool instead of freeing it, and the next insert pops it back off —
//! retire → grace period → recycle → realloc, no `malloc`/`free` pair.
//!
//! # Safety model
//!
//! The pool itself never decides *when* a block may be reused — that is
//! the reclaimer's job, and it is exactly the guarantee reclamation
//! already provides: a deferral fires only after the grace period, i.e.
//! after no live reference to the block can exist. Reuse after that point
//! is therefore ABA-safe by construction (DESIGN.md §11). The pool's own
//! contract is purely about memory provenance: every block pushed must be
//! a global-allocator allocation of exactly [`layout`](NodePool::layout),
//! with its contents already dropped, so a block popped from the pool is
//! indistinguishable from one returned by `std::alloc::alloc` — and on
//! overflow (or contention, or pool drop) the pool can hand it to
//! `std::alloc::dealloc` directly.
//!
//! # Concurrency
//!
//! The free list is a bounded LIFO `Vec` under a spin lock, accessed with
//! `try_lock` only: a contended pop reports "empty" (caller falls through
//! to the real allocator) and a contended push frees the block instead of
//! waiting. The pool can therefore never block an operation or degrade
//! below plain-malloc behaviour; the lock is a fast path, not a
//! serialization point. Callers batch (see the per-handle caches in
//! `nmbst`) so the common case touches no shared state at all.

use nmbst_sync::SpinLock;
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Point-in-time counters of one [`NodePool`]; see [`NodePool::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from the pool (recycled or cached memory)
    /// instead of the global allocator.
    pub hits: u64,
    /// Allocation attempts the pool could not serve (empty or contended);
    /// the caller paid the global allocator.
    pub misses: u64,
    /// Blocks accepted into the free list (from recycling deferrals and
    /// cache give-backs).
    pub recycled: u64,
    /// Blocks the pool declined (full or contended) and freed to the
    /// global allocator instead.
    pub dropped: u64,
    /// Current free-list length (racy snapshot).
    pub len: u64,
    /// Maximum free-list length.
    pub capacity: u64,
}

/// A bounded LIFO free list of fixed-layout memory blocks.
///
/// One pool serves one block layout (one `Node<K, V>` type); pushing any
/// other layout is a contract violation. LIFO because the most recently
/// retired block is the most likely to still be cache-hot when the next
/// insert reuses it.
///
/// Shared by `Arc`: the owning tree holds one reference and parks a
/// second inside the reclaimer via [`Reclaim::hold`](crate::Reclaim::hold),
/// so recycling deferrals can carry a plain raw pointer — the reclaimer
/// guarantees the pool outlives every deferral it ever runs, including
/// on straggling collector threads.
pub struct NodePool {
    layout: Layout,
    capacity: usize,
    free: SpinLock<FreeList>,
    /// Mirror of the free-list length, maintained inside the lock, so
    /// gauges and the empty-pool fast path need no lock at all.
    len: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    dropped: AtomicU64,
}

/// The lock-protected half of the pool. `recycled` lives here (not as an
/// atomic) because it is only ever bumped while the push already holds
/// the lock — keeping the per-block release path at a single RMW (the
/// lock acquisition itself), which is what lets recycling beat a
/// `free`/`malloc` round trip.
struct FreeList {
    blocks: Vec<*mut u8>,
    recycled: u64,
}

// SAFETY: the raw pointers in the free list are owned blocks (no aliases
// exist once a block is pushed — the pusher proved it dead), and all
// access to the list is synchronized by the spin lock.
unsafe impl Send for NodePool {}
unsafe impl Sync for NodePool {}

impl NodePool {
    /// Creates an empty pool for blocks of `layout`, holding at most
    /// `capacity` free blocks. Zero-size layouts are rejected — there is
    /// nothing to recycle.
    pub fn new(layout: Layout, capacity: usize) -> Self {
        assert!(layout.size() > 0, "cannot pool zero-sized blocks");
        NodePool {
            layout,
            capacity,
            free: SpinLock::new(FreeList {
                // Reserve up front (bounded for pathological capacities)
                // so steady-state pushes never grow the Vec.
                blocks: Vec::with_capacity(capacity.min(4096)),
                recycled: 0,
            }),
            len: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The one block layout this pool serves.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Maximum number of free blocks held.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current free-list length (racy snapshot; exact at quiescence).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if no free block is currently pooled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pops one free block, or `None` if the pool is empty or contended
    /// (the caller then uses the global allocator). The returned block is
    /// uninitialized memory of [`layout`](Self::layout), exclusively
    /// owned by the caller.
    ///
    /// Does not count a hit or miss — callers batch accounting through
    /// [`note_usage`](Self::note_usage).
    #[inline]
    pub fn acquire(&self) -> Option<NonNull<u8>> {
        let mut out: Option<NonNull<u8>> = None;
        self.acquire_batch(1, |p| out = NonNull::new(p));
        out
    }

    /// Pops up to `max` free blocks, passing each to `sink`; returns the
    /// number popped. One lock acquisition for the whole batch — this is
    /// what per-thread caches refill through.
    pub fn acquire_batch(&self, max: usize, mut sink: impl FnMut(*mut u8)) -> usize {
        // Lock-free fast path: an empty pool is the common case in grow-
        // only phases, and it must not pay even an uncontended lock CAS.
        if max == 0 || self.len.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let Some(mut free) = self.free.try_lock() else {
            return 0;
        };
        let take = free.blocks.len().min(max);
        for _ in 0..take {
            let p = free.blocks.pop().expect("len checked");
            sink(p);
        }
        self.len.store(free.blocks.len(), Ordering::Relaxed);
        take
    }

    /// Gives a dead block back to the pool. If the pool is full (or the
    /// lock contended), the block is freed to the global allocator
    /// instead — release never blocks and never leaks.
    ///
    /// # Safety
    ///
    /// `ptr` must be a global-allocator allocation of exactly
    /// [`layout`](Self::layout) (e.g. `Box::into_raw` of the pooled node
    /// type), exclusively owned by the caller, with its contents already
    /// dropped. Ownership transfers to the pool.
    #[inline]
    pub unsafe fn release(&self, ptr: *mut u8) {
        if let Some(mut free) = self.free.try_lock() {
            if free.blocks.len() < self.capacity {
                free.blocks.push(ptr);
                free.recycled += 1;
                self.len.store(free.blocks.len(), Ordering::Relaxed);
                return;
            }
        }
        // Full or contended: fall through to the real allocator.
        // SAFETY: release contract — global-allocator block of
        // `self.layout`.
        unsafe { std::alloc::dealloc(ptr, self.layout) };
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Gives many dead blocks back in one lock acquisition, draining
    /// `blocks`. Blocks that do not fit (full or contended) are freed to
    /// the global allocator. This is what per-thread caches flush
    /// through.
    ///
    /// # Safety
    ///
    /// Every block in `blocks` must satisfy the
    /// [`release`](Self::release) contract.
    pub unsafe fn release_batch(&self, blocks: &mut Vec<*mut u8>) {
        if blocks.is_empty() {
            return;
        }
        if let Some(mut free) = self.free.try_lock() {
            while free.blocks.len() < self.capacity {
                let Some(ptr) = blocks.pop() else { break };
                free.blocks.push(ptr);
                free.recycled += 1;
            }
            self.len.store(free.blocks.len(), Ordering::Relaxed);
        }
        let dropped = blocks.len() as u64;
        for ptr in blocks.drain(..) {
            // Full or contended: fall through to the real allocator.
            // SAFETY: release contract — global-allocator block of
            // `self.layout`.
            unsafe { std::alloc::dealloc(ptr, self.layout) };
        }
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Folds a caller's batched hit/miss counts into the pool's stats.
    pub fn note_usage(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Point-in-time counters (racy snapshots; exact at quiescence).
    /// Briefly takes the free-list lock (for `recycled`); fine for a
    /// gauge scrape, kept off the operation hot paths.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.free.lock().recycled,
            dropped: self.dropped.load(Ordering::Relaxed),
            len: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        for &ptr in self.free.get_mut().blocks.iter() {
            // SAFETY: every pooled block is an exclusively owned global-
            // allocator allocation of `self.layout` (release contract),
            // and `&mut self` proves no other reference to the pool
            // exists.
            unsafe { std::alloc::dealloc(ptr, self.layout) };
        }
    }
}

impl std::fmt::Debug for NodePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePool")
            .field("layout", &self.layout)
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(pool: &NodePool) -> *mut u8 {
        // SAFETY: non-zero layout, asserted in `NodePool::new`.
        let p = unsafe { std::alloc::alloc(pool.layout()) };
        assert!(!p.is_null());
        p
    }

    fn test_pool(capacity: usize) -> NodePool {
        NodePool::new(Layout::new::<[u64; 4]>(), capacity)
    }

    #[test]
    fn round_trip_returns_same_block() {
        let pool = test_pool(4);
        assert!(pool.acquire().is_none(), "fresh pool is empty");
        let p = block(&pool);
        unsafe { pool.release(p) };
        assert_eq!(pool.len(), 1);
        let got = pool.acquire().expect("pooled block");
        assert_eq!(got.as_ptr(), p);
        assert_eq!(pool.len(), 0);
        unsafe { std::alloc::dealloc(got.as_ptr(), pool.layout()) };
    }

    #[test]
    fn lifo_order() {
        let pool = test_pool(4);
        let a = block(&pool);
        let b = block(&pool);
        unsafe {
            pool.release(a);
            pool.release(b);
        }
        assert_eq!(pool.acquire().unwrap().as_ptr(), b, "most recent first");
        assert_eq!(pool.acquire().unwrap().as_ptr(), a);
        unsafe {
            std::alloc::dealloc(a, pool.layout());
            std::alloc::dealloc(b, pool.layout());
        }
    }

    #[test]
    fn overflow_falls_through_to_allocator() {
        let pool = test_pool(2);
        for _ in 0..5 {
            let p = block(&pool);
            unsafe { pool.release(p) };
        }
        let s = pool.stats();
        assert_eq!(s.recycled, 2, "capacity bounds the free list");
        assert_eq!(s.dropped, 3, "overflow blocks freed, not leaked");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn drop_frees_remaining_blocks() {
        // Miri/asan would flag the leak if Drop failed to dealloc.
        let pool = test_pool(8);
        for _ in 0..8 {
            let p = block(&pool);
            unsafe { pool.release(p) };
        }
        assert_eq!(pool.len(), 8);
        drop(pool);
    }

    #[test]
    fn batch_acquire_pops_up_to_max() {
        let pool = test_pool(8);
        for _ in 0..5 {
            let p = block(&pool);
            unsafe { pool.release(p) };
        }
        let mut got = Vec::new();
        let n = pool.acquire_batch(3, |p| got.push(p));
        assert_eq!(n, 3);
        assert_eq!(pool.len(), 2);
        let n = pool.acquire_batch(10, |p| got.push(p));
        assert_eq!(n, 2);
        assert!(pool.acquire().is_none());
        for p in got {
            unsafe { std::alloc::dealloc(p, pool.layout()) };
        }
    }

    #[test]
    fn usage_counters_accumulate() {
        let pool = test_pool(4);
        pool.note_usage(3, 1);
        pool.note_usage(0, 2);
        let s = pool.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 3);
        assert_eq!(s.capacity, 4);
    }

    #[test]
    fn concurrent_churn_loses_no_blocks() {
        // 4 threads alternately release fresh blocks and acquire them
        // back; every block must end up either freed by the test or
        // owned by the pool — asan would catch a leak or double free.
        let pool = std::sync::Arc::new(test_pool(64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..500 {
                        if i % 2 == 0 {
                            let p = block(&pool);
                            unsafe { pool.release(p) };
                        } else if let Some(p) = pool.acquire() {
                            unsafe { std::alloc::dealloc(p.as_ptr(), pool.layout()) };
                        }
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.len as usize, pool.len());
        assert!(s.len <= 64);
    }
}
