//! Slab arena node storage with a bounded recycling free list.
//!
//! Since PR 7 the pool *is* the node store: trees no longer `Box` their
//! nodes, they carve fixed-layout slots out of per-tree arena segments
//! and address them with `u32` indices. That buys two things at once:
//!
//! * **Half-width edges.** A child reference inside a tree node is a
//!   32-bit slot index instead of a 64-bit pointer, so both edges of a
//!   node fit in one 8-byte word-pair and the mark bits ride in the low
//!   bits of a `u32`.
//! * **A closed allocation loop.** Retired slots flow through the
//!   reclaimer's grace period back onto the free list (retire → grace
//!   period → recycle → realloc), exactly as in PR 4 — but now even the
//!   *miss* path (bump allocation) stays inside the arena, so steady
//!   state never touches `malloc`.
//!
//! # Geometry
//!
//! Slots live in doubling segments: segment `s` holds `2^18 << s`
//! slots, and 13 segments cover indices up to 2³⁰ (the widest index an
//! edge word can carry next to its two mark bits). Index 0 is reserved
//! as the null edge.
//!
//! Segment 0 is allocated *eagerly* and its base is mirrored in a plain
//! (non-atomic) field: for every index below 2¹⁸ — in practice all of
//! them, since recycling keeps the bump cursor low — `slot_ptr` is one
//! predicted branch and a `base + idx * stride` address computation.
//! That keeps index resolution off the descent loop's dependent-load
//! chain: the base is immutable, so the compiler hoists it out of the
//! loop, where an atomic segment-table load would have to re-issue at
//! every level (measured ~25% of single-thread point-op throughput).
//! The reservation is virtual — 2¹⁸ slots of untouched pages cost
//! address space, not memory. Overflow segments are allocated lazily
//! and published with a CAS; the loser of a racing grow frees its
//! segment and adopts the winner's, so growth stays lock-free. A
//! resolved slot pointer is stable for the arena's lifetime — segments
//! are never moved or freed before the pool drops.
//!
//! # Safety model
//!
//! The pool never decides *when* a slot may be reused — that is the
//! reclaimer's job. A recycle deferral fires only after the grace
//! period, i.e. after no live reference to the slot can exist, so reuse
//! is ABA-safe by construction (DESIGN.md §11, §14). Unlike the PR 4
//! pool there is no dealloc fall-through: a slot the free list declines
//! (capacity, contention) is simply abandoned in place — counted in
//! [`PoolStats::dropped`] — and its memory returns when the arena drops.
//!
//! # Concurrency
//!
//! The free list is a bounded LIFO `Vec<u32>` under a spin lock,
//! accessed with `try_lock` only: a contended pop reports "empty" (the
//! caller bump-allocates) and a contended push abandons the slot. The
//! pool therefore never blocks an operation; the lock is a fast path,
//! not a serialization point.

use nmbst_sync::SpinLock;
use std::alloc::Layout;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// log2 of the first segment's slot count.
const SEG0_BITS: u32 = 18;
/// Slot count of the eagerly allocated segment 0; indices below this
/// take `slot_ptr`'s flat fast path.
const SEG0_SLOTS: usize = 1 << SEG0_BITS;
/// Number of doubling segments; together they cover indices past 2³⁰.
const SEGMENTS: usize = 13;
/// Largest allocatable index: an edge word keeps 2 bits for marks.
const MAX_INDEX: u32 = (1 << 30) - 1;

/// Point-in-time counters of one [`NodePool`]; see [`NodePool::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from recycled free-list slots instead of
    /// fresh (bump-allocated) arena space.
    pub hits: u64,
    /// Allocations the free list could not serve (empty or contended);
    /// the caller bump-allocated a fresh slot.
    pub misses: u64,
    /// Slots accepted into the free list (from recycling deferrals and
    /// cache give-backs).
    pub recycled: u64,
    /// Slots the free list declined (full or contended) and abandoned in
    /// place; their memory returns when the arena drops.
    pub dropped: u64,
    /// Current free-list length (racy snapshot).
    pub len: u64,
    /// Maximum free-list length.
    pub capacity: u64,
}

/// A slab arena of fixed-layout slots addressed by `u32` indices, with a
/// bounded LIFO free list recycling retired slots.
///
/// One pool serves one slot layout (one `Node<K, V>` type). LIFO because
/// the most recently retired slot is the most likely to still be
/// cache-hot when the next insert reuses it.
///
/// Shared by `Arc`: the owning tree holds one reference and parks a
/// second inside the reclaimer via [`Reclaim::hold`](crate::Reclaim::hold),
/// so recycling deferrals can carry a plain raw pointer — the reclaimer
/// guarantees the pool (and with it every slot a straggling deferral
/// touches) outlives every deferral it ever runs.
pub struct NodePool {
    layout: Layout,
    /// Distance between consecutive slots: the layout padded to its
    /// alignment.
    stride: usize,
    capacity: usize,
    /// Segment 0's base, duplicated out of `segments[0]` as a plain
    /// field: immutable after construction, so the hot resolution path
    /// reads it without an atomic load (and loop-invariant code motion
    /// can keep it in a register across a descent).
    seg0: NonNull<u8>,
    /// Doubling segments; entry `s` holds `SEG0_SLOTS << s` slots.
    /// Entry 0 is allocated in `new`; the rest lazily, published by
    /// CAS, so growth is lock-free.
    segments: [AtomicPtr<u8>; SEGMENTS],
    /// Bump cursor over the index space. Starts at 1: index 0 is the
    /// null edge.
    next: AtomicU32,
    free: SpinLock<FreeList>,
    /// Mirror of the free-list length, maintained inside the lock, so
    /// gauges and the empty-pool fast path need no lock at all.
    len: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    dropped: AtomicU64,
}

/// The lock-protected half of the pool. `recycled` lives here (not as an
/// atomic) because it is only ever bumped while the push already holds
/// the lock — keeping the per-slot release path at a single RMW (the
/// lock acquisition itself).
struct FreeList {
    slots: Vec<u32>,
    recycled: u64,
}

// SAFETY: segment pointers are owned allocations freed only in Drop, the
// free list holds plain indices, and all free-list access is
// synchronized by the spin lock.
unsafe impl Send for NodePool {}
unsafe impl Sync for NodePool {}

/// Splits an index into (segment, offset-within-segment).
#[inline]
fn locate(idx: u32) -> (usize, usize) {
    debug_assert!(idx != 0 && idx <= MAX_INDEX);
    let adj = idx + (1 << SEG0_BITS);
    let bit = 31 - adj.leading_zeros();
    ((bit - SEG0_BITS) as usize, (adj - (1 << bit)) as usize)
}

/// Slot count of segment `seg`.
#[inline]
fn segment_slots(seg: usize) -> usize {
    1usize << (SEG0_BITS as usize + seg)
}

/// Allocates the backing memory of segment `seg`. Untouched pages are
/// only a virtual reservation; the kernel commits them on first write.
fn alloc_segment(seg: usize, stride: usize, align: usize) -> *mut u8 {
    let layout =
        Layout::from_size_align(segment_slots(seg) * stride, align).expect("segment layout");
    // SAFETY: non-zero size (stride > 0, slots > 0).
    let ptr = unsafe { std::alloc::alloc(layout) };
    assert!(!ptr.is_null(), "arena segment allocation failed");
    ptr
}

impl NodePool {
    /// Creates an empty arena for slots of `layout`, recycling at most
    /// `capacity` free slots (`0` disables reuse: every allocation bumps
    /// fresh space and every release abandons its slot). Zero-size
    /// layouts are rejected — there is nothing to store.
    pub fn new(layout: Layout, capacity: usize) -> Self {
        assert!(layout.size() > 0, "cannot pool zero-sized slots");
        let stride = layout.pad_to_align().size();
        let seg0 = alloc_segment(0, stride, layout.align());
        let segments = [const { AtomicPtr::new(std::ptr::null_mut()) }; SEGMENTS];
        segments[0].store(seg0, Ordering::Relaxed);
        NodePool {
            layout,
            stride,
            capacity,
            seg0: NonNull::new(seg0).expect("checked non-null above"),
            segments,
            next: AtomicU32::new(1),
            free: SpinLock::new(FreeList {
                // Reserve up front (bounded for pathological capacities)
                // so steady-state pushes never grow the Vec.
                slots: Vec::with_capacity(capacity.min(4096)),
                recycled: 0,
            }),
            len: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The one slot layout this arena serves.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Maximum number of free slots recycled.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current free-list length (racy snapshot; exact at quiescence).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` if no free slot is currently pooled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a slot index to its address. The returned pointer is
    /// stable for the arena's lifetime.
    ///
    /// The index must have been produced by this pool
    /// ([`acquire`](Self::acquire) or [`bump`](Self::bump)); index 0
    /// (the null edge) is not a slot.
    #[inline]
    pub fn slot_ptr(&self, idx: u32) -> *mut u8 {
        debug_assert!(idx != 0 && idx <= MAX_INDEX);
        if (idx as usize) < SEG0_SLOTS {
            // Segment 0: `locate`'s bias cancels, the offset *is* the
            // index, and the base is a plain immutable field — no
            // atomic load on the descent's dependent chain.
            unsafe { self.seg0.as_ptr().add(idx as usize * self.stride) }
        } else {
            self.slot_ptr_overflow(idx)
        }
    }

    /// [`slot_ptr`](Self::slot_ptr) with the stride taken from `N` at
    /// compile time, so the hot path's offset computation is constant
    /// arithmetic instead of a multiply by a loaded field. `N` must be
    /// the type this arena's layout was created for.
    #[inline]
    pub fn slot_ptr_typed<N>(&self, idx: u32) -> *mut N {
        debug_assert_eq!(
            Layout::new::<N>().pad_to_align().size(),
            self.stride,
            "slot_ptr_typed called with a type foreign to this arena"
        );
        debug_assert!(idx != 0 && idx <= MAX_INDEX);
        if (idx as usize) < SEG0_SLOTS {
            // SAFETY: same address arithmetic as `slot_ptr`; the stride
            // equality is asserted above.
            unsafe { self.seg0.as_ptr().cast::<N>().add(idx as usize) }
        } else {
            self.slot_ptr_overflow(idx).cast()
        }
    }

    /// Index resolution for slots past segment 0. Out of line: the fast
    /// path must stay small enough to inline into every descent step.
    #[cold]
    fn slot_ptr_overflow(&self, idx: u32) -> *mut u8 {
        let (seg, off) = locate(idx);
        // Acquire pairs with the Release CAS in `segment`; any thread
        // that learned `idx` through a published edge already
        // happens-after the segment's publication, so the pointer is
        // always visible here.
        let base = self.segments[seg].load(Ordering::Acquire);
        debug_assert!(!base.is_null(), "slot {idx} resolved before allocation");
        unsafe { base.add(off * self.stride) }
    }

    /// Returns segment `seg`'s base, allocating and publishing it if this
    /// is the first touch. Lock-free: a racing loser frees its fresh
    /// segment and adopts the winner's.
    fn segment(&self, seg: usize) -> *mut u8 {
        let entry = &self.segments[seg];
        let base = entry.load(Ordering::Acquire);
        if !base.is_null() {
            return base;
        }
        let fresh = alloc_segment(seg, self.stride, self.layout.align());
        match entry.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => fresh,
            Err(winner) => {
                let layout =
                    Layout::from_size_align(segment_slots(seg) * self.stride, self.layout.align())
                        .expect("segment layout");
                // SAFETY: `fresh` is ours and was never published.
                unsafe { std::alloc::dealloc(fresh, layout) };
                winner
            }
        }
    }

    /// Bump-allocates a fresh slot (never consults the free list). The
    /// returned slot is uninitialized memory of [`layout`](Self::layout),
    /// exclusively owned by the caller.
    ///
    /// Does not count a hit or miss — callers batch accounting through
    /// [`note_usage`](Self::note_usage).
    pub fn bump(&self) -> (u32, NonNull<u8>) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(idx <= MAX_INDEX, "node arena exhausted (2^30 slots)");
        let (seg, off) = locate(idx);
        let base = self.segment(seg);
        // SAFETY: `off` is within the segment by construction.
        let ptr = unsafe { base.add(off * self.stride) };
        (idx, NonNull::new(ptr).expect("segment base is non-null"))
    }

    /// Pops one recycled slot, or `None` if the free list is empty or
    /// contended (the caller then bump-allocates). The returned slot is
    /// uninitialized memory, exclusively owned by the caller.
    ///
    /// Does not count a hit or miss — callers batch accounting through
    /// [`note_usage`](Self::note_usage).
    #[inline]
    pub fn acquire(&self) -> Option<(u32, NonNull<u8>)> {
        let mut out = None;
        self.acquire_batch(1, |idx| out = Some(idx));
        out.map(|idx| {
            (
                idx,
                NonNull::new(self.slot_ptr(idx)).expect("pooled slot resolves"),
            )
        })
    }

    /// Pops up to `max` recycled slots, passing each index to `sink`;
    /// returns the number popped. One lock acquisition for the whole
    /// batch — this is what per-thread caches refill through.
    pub fn acquire_batch(&self, max: usize, mut sink: impl FnMut(u32)) -> usize {
        // Lock-free fast path: an empty pool is the common case in grow-
        // only phases, and it must not pay even an uncontended lock CAS.
        if max == 0 || self.len.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        let Some(mut free) = self.free.try_lock() else {
            return 0;
        };
        let take = free.slots.len().min(max);
        for _ in 0..take {
            let idx = free.slots.pop().expect("len checked");
            sink(idx);
        }
        self.len.store(free.slots.len(), Ordering::Relaxed);
        take
    }

    /// Gives a dead slot back to the free list. If the list is full (or
    /// the lock contended), the slot is abandoned in place — counted in
    /// [`PoolStats::dropped`], reclaimed when the arena drops — so
    /// release never blocks.
    ///
    /// # Safety
    ///
    /// `idx` must be a slot of this pool, exclusively owned by the
    /// caller, with its contents already dropped. Ownership transfers to
    /// the pool.
    #[inline]
    pub unsafe fn release(&self, idx: u32) {
        if let Some(mut free) = self.free.try_lock() {
            if free.slots.len() < self.capacity {
                free.slots.push(idx);
                free.recycled += 1;
                self.len.store(free.slots.len(), Ordering::Relaxed);
                return;
            }
        }
        // Full or contended: abandon the slot (arena memory, freed at
        // pool drop).
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Gives many dead slots back in one lock acquisition, draining
    /// `slots`. Slots that do not fit (full or contended) are abandoned
    /// in place. This is what per-thread caches flush through.
    ///
    /// # Safety
    ///
    /// Every index in `slots` must satisfy the [`release`](Self::release)
    /// contract.
    pub unsafe fn release_batch(&self, slots: &mut Vec<u32>) {
        if slots.is_empty() {
            return;
        }
        if let Some(mut free) = self.free.try_lock() {
            while free.slots.len() < self.capacity {
                let Some(idx) = slots.pop() else { break };
                free.slots.push(idx);
                free.recycled += 1;
            }
            self.len.store(free.slots.len(), Ordering::Relaxed);
        }
        let dropped = slots.len() as u64;
        slots.clear();
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Folds a caller's batched hit/miss counts into the pool's stats.
    pub fn note_usage(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Point-in-time counters (racy snapshots; exact at quiescence).
    /// Briefly takes the free-list lock (for `recycled`); fine for a
    /// gauge scrape, kept off the operation hot paths.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.free.lock().recycled,
            dropped: self.dropped.load(Ordering::Relaxed),
            len: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        for (seg, entry) in self.segments.iter_mut().enumerate() {
            let base = *entry.get_mut();
            if base.is_null() {
                continue;
            }
            let layout =
                Layout::from_size_align(segment_slots(seg) * self.stride, self.layout.align())
                    .expect("segment layout");
            // SAFETY: `base` is an owned allocation of exactly this
            // layout (see `segment`), and `&mut self` proves no other
            // reference to the pool exists.
            unsafe { std::alloc::dealloc(base, layout) };
        }
    }
}

impl std::fmt::Debug for NodePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodePool")
            .field("layout", &self.layout)
            .field("capacity", &self.capacity)
            .field("next", &self.next.load(Ordering::Relaxed))
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pool(capacity: usize) -> NodePool {
        NodePool::new(Layout::new::<[u64; 4]>(), capacity)
    }

    #[test]
    fn locate_walks_doubling_segments() {
        const S0: u32 = SEG0_SLOTS as u32;
        // Segment 0: the bias cancels and the offset is the index
        // itself — the invariant the flat fast path relies on.
        assert_eq!(locate(1), (0, 1));
        assert_eq!(locate(S0 - 1), (0, SEG0_SLOTS - 1));
        // First overflow segment holds twice the slots.
        assert_eq!(locate(S0), (1, 0));
        assert_eq!(locate(3 * S0 - 1), (1, 2 * SEG0_SLOTS - 1));
        assert_eq!(locate(3 * S0), (2, 0));
        assert!(locate(MAX_INDEX).0 < SEGMENTS);
    }

    #[test]
    fn typed_resolution_matches_untyped() {
        let pool = test_pool(0);
        let (idx, ptr) = pool.bump();
        assert_eq!(
            pool.slot_ptr_typed::<[u64; 4]>(idx).cast::<u8>(),
            ptr.as_ptr()
        );
        assert_eq!(pool.slot_ptr(idx), ptr.as_ptr());
    }

    #[test]
    fn bump_yields_distinct_stable_slots() {
        let pool = test_pool(4);
        let (i1, p1) = pool.bump();
        let (i2, p2) = pool.bump();
        assert_ne!(i1, i2);
        assert_ne!(p1, p2);
        assert_ne!(i1, 0, "index 0 is the null edge");
        // Resolution is stable and agrees with the allocation.
        assert_eq!(pool.slot_ptr(i1), p1.as_ptr());
        assert_eq!(pool.slot_ptr(i2), p2.as_ptr());
    }

    #[test]
    fn bump_crosses_segment_boundaries() {
        let pool = test_pool(0);
        let mut prev = 0u32;
        // Run past segment 0 into the first lazily-grown overflow
        // segment, writing through every slot near the boundary to let
        // asan catch bad geometry.
        for _ in 0..(SEG0_SLOTS + 200) {
            let (idx, ptr) = pool.bump();
            assert!(idx > prev, "bump repeated or reordered index {idx}");
            prev = idx;
            if idx as usize > SEG0_SLOTS - 100 || idx < 200 {
                unsafe { ptr.as_ptr().cast::<[u64; 4]>().write([idx as u64; 4]) };
                assert_eq!(pool.slot_ptr(idx), ptr.as_ptr());
            }
        }
    }

    #[test]
    fn round_trip_returns_same_slot() {
        let pool = test_pool(4);
        assert!(pool.acquire().is_none(), "fresh pool is empty");
        let (idx, ptr) = pool.bump();
        unsafe { pool.release(idx) };
        assert_eq!(pool.len(), 1);
        let (got, got_ptr) = pool.acquire().expect("pooled slot");
        assert_eq!(got, idx);
        assert_eq!(got_ptr, ptr);
        assert_eq!(pool.len(), 0);
    }

    #[test]
    fn lifo_order() {
        let pool = test_pool(4);
        let (a, _) = pool.bump();
        let (b, _) = pool.bump();
        unsafe {
            pool.release(a);
            pool.release(b);
        }
        assert_eq!(pool.acquire().unwrap().0, b, "most recent first");
        assert_eq!(pool.acquire().unwrap().0, a);
    }

    #[test]
    fn overflow_abandons_slots() {
        let pool = test_pool(2);
        for _ in 0..5 {
            let (idx, _) = pool.bump();
            unsafe { pool.release(idx) };
        }
        let s = pool.stats();
        assert_eq!(s.recycled, 2, "capacity bounds the free list");
        assert_eq!(s.dropped, 3, "overflow slots abandoned, not recycled");
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn capacity_zero_disables_reuse() {
        let pool = test_pool(0);
        let (idx, _) = pool.bump();
        unsafe { pool.release(idx) };
        assert!(pool.acquire().is_none());
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn batch_acquire_pops_up_to_max() {
        let pool = test_pool(8);
        for _ in 0..5 {
            let (idx, _) = pool.bump();
            unsafe { pool.release(idx) };
        }
        let mut got = Vec::new();
        let n = pool.acquire_batch(3, |idx| got.push(idx));
        assert_eq!(n, 3);
        assert_eq!(pool.len(), 2);
        let n = pool.acquire_batch(10, |idx| got.push(idx));
        assert_eq!(n, 2);
        assert!(pool.acquire().is_none());
    }

    #[test]
    fn usage_counters_accumulate() {
        let pool = test_pool(4);
        pool.note_usage(3, 1);
        pool.note_usage(0, 2);
        let s = pool.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 3);
        assert_eq!(s.capacity, 4);
    }

    #[test]
    fn concurrent_churn_loses_no_slots() {
        // 4 threads alternately bump fresh slots, release them, and
        // acquire them back; every index must stay unique among live
        // owners (checked by writing a thread tag through the slot and
        // reading it back before release).
        let pool = std::sync::Arc::new(test_pool(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    for i in 0..500 {
                        let slot = if i % 2 == 0 {
                            Some(pool.bump())
                        } else {
                            pool.acquire()
                        };
                        if let Some((idx, ptr)) = slot {
                            let cell = ptr.as_ptr().cast::<[u64; 4]>();
                            unsafe {
                                cell.write([t; 4]);
                                assert_eq!((*cell)[3], t, "slot {idx} not exclusive");
                                pool.release(idx);
                            }
                        }
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.len as usize, pool.len());
        assert!(s.len <= 64);
    }
}
