//! Hazard pointers (Michael, TPDS 2004), built from scratch.
//!
//! A thread *protects* a pointer by publishing it in one of its hazard
//! slots before dereferencing, then re-validating that the source still
//! holds it. A retiring thread may only free an allocation after a scan
//! of **all** published slots shows nobody protects it.
//!
//! # Why the tree does not use these
//!
//! The paper remarks (§3.2) that reclamation "can be derived using the
//! well-known notion of hazard pointers". For the NM-BST as published,
//! that derivation is *not* the textbook protect-and-validate recipe: a
//! seek routinely walks through nodes whose incoming edge is already
//! flagged or tagged (that is the whole point of the seek record's
//! ancestor/successor pair), so the validation step "source still points
//! to the protected node" fails spuriously and, worse, cannot distinguish
//! a node that merely *will* be unlinked from one that already has been.
//! Making hazard pointers sound for this algorithm requires restarting
//! seeks from checkpoints whose own protection is validated transitively —
//! a follow-up line of work (e.g. NBR, HP-trees) beyond this paper. We
//! therefore ship the tree on [`Ebr`](crate::Ebr) and provide hazard
//! pointers as a tested, reusable substrate;
//! [`TreiberStack`](crate::TreiberStack) demonstrates them on a
//! structure where validation is sound.
//!
//! # Usage
//!
//! Unlike [`Ebr`](crate::Ebr), participation is explicit: each thread
//! [`register`](HazardDomain::register)s to obtain a [`HazardLocal`]
//! with a fixed number of slots.

use crate::Deferred;
use nmbst_sync::SpinLock;
use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Hazard slots per registered thread. The tree-free structures in this
/// workspace need at most two simultaneously protected pointers.
pub const HP_SLOTS: usize = 4;

/// Scan (and free unprotected retirees) once this many retirements have
/// accumulated on a thread.
const SCAN_THRESHOLD: usize = 64;

struct HpRecord {
    active: AtomicBool,
    slots: [AtomicUsize; HP_SLOTS],
}

impl HpRecord {
    fn new() -> Self {
        HpRecord {
            active: AtomicBool::new(true),
            slots: [const { AtomicUsize::new(0) }; HP_SLOTS],
        }
    }
}

struct DomainInner {
    records: SpinLock<Vec<Arc<HpRecord>>>,
    /// Retired items orphaned by exited threads, picked up by the next
    /// scan on any thread.
    stash: SpinLock<Vec<(usize, Deferred)>>,
}

impl Drop for DomainInner {
    fn drop(&mut self) {
        // Last reference: no locals exist, hence no published hazards.
        for (_, deferred) in self.stash.lock().drain(..) {
            deferred.call();
        }
    }
}

/// A hazard-pointer domain: the set of threads whose published hazards
/// must be consulted before freeing a retiree. One per data structure.
#[derive(Clone)]
pub struct HazardDomain {
    inner: Arc<DomainInner>,
}

impl HazardDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        HazardDomain {
            inner: Arc::new(DomainInner {
                records: SpinLock::new(Vec::new()),
                stash: SpinLock::new(Vec::new()),
            }),
        }
    }

    /// Registers the calling thread, reusing the record of an exited
    /// thread when one is available.
    pub fn register(&self) -> HazardLocal {
        let mut records = self.inner.records.lock();
        let record = match records.iter().find(|r| {
            !r.active.load(Ordering::Relaxed)
                && r.active
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
        }) {
            Some(r) => Arc::clone(r),
            None => {
                let r = Arc::new(HpRecord::new());
                records.push(Arc::clone(&r));
                r
            }
        };
        drop(records);
        HazardLocal {
            domain: Arc::clone(&self.inner),
            record,
            retired: RefCell::new(Vec::new()),
        }
    }

    /// Number of registered (live) participants; diagnostics only.
    pub fn participants(&self) -> usize {
        self.inner
            .records
            .lock()
            .iter()
            .filter(|r| r.active.load(Ordering::Relaxed))
            .count()
    }
}

impl Default for HazardDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HazardDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardDomain")
            .field("participants", &self.participants())
            .finish()
    }
}

/// A thread's participation in a [`HazardDomain`]: [`HP_SLOTS`] hazard
/// slots plus a private list of retired-but-not-yet-freed allocations.
pub struct HazardLocal {
    domain: Arc<DomainInner>,
    record: Arc<HpRecord>,
    retired: RefCell<Vec<(usize, Deferred)>>,
}

impl HazardLocal {
    /// Protects the pointer currently stored in `src`: publishes it in
    /// hazard slot `index` and re-reads until the publication provably
    /// happened before any retirement scan that could free it.
    ///
    /// Returns the protected pointer (possibly null, which needs no
    /// protection). The protection lasts until the slot is overwritten
    /// by the next `protect`/[`clear`](HazardLocal::clear) on `index`.
    pub fn protect<T>(&self, index: usize, src: &AtomicPtr<T>) -> *mut T {
        let mut ptr = src.load(Ordering::Relaxed);
        loop {
            if ptr.is_null() {
                self.record.slots[index].store(0, Ordering::Release);
                return ptr;
            }
            self.record.slots[index].store(ptr as usize, Ordering::Release);
            // Order the publication before the validating re-read; pairs
            // with the fence in `scan`.
            fence(Ordering::SeqCst);
            let current = src.load(Ordering::Acquire);
            if current == ptr {
                return ptr;
            }
            ptr = current;
        }
    }

    /// Clears hazard slot `index`.
    #[inline]
    pub fn clear(&self, index: usize) {
        self.record.slots[index].store(0, Ordering::Release);
    }

    /// Retires `ptr`: it will be freed by a later scan, once no published
    /// hazard equals it.
    ///
    /// # Safety
    ///
    /// Same contract as [`RetireGuard::retire`](crate::RetireGuard::retire):
    /// `Box::into_raw` provenance, already unlinked, retired once.
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        // SAFETY: forwarded caller contract.
        let deferred = unsafe { Deferred::drop_box(ptr) };
        let mut retired = self.retired.borrow_mut();
        retired.push((ptr as usize, deferred));
        if retired.len() >= SCAN_THRESHOLD {
            drop(retired);
            self.scan();
        }
    }

    /// Frees every retired allocation no published hazard protects.
    pub fn scan(&self) {
        // Adopt orphaned retirees first so they are not stranded.
        {
            let mut stash = self.domain.stash.lock();
            self.retired.borrow_mut().append(&mut stash);
        }
        // Pairs with the fence in `protect`: any protection not visible
        // to the loads below was published after this fence, hence after
        // the retiree was unlinked — such a protect's validation re-read
        // cannot return the retired pointer.
        fence(Ordering::SeqCst);
        let mut hazards: Vec<usize> = Vec::new();
        {
            let records = self.domain.records.lock();
            for record in records.iter() {
                for slot in &record.slots {
                    let h = slot.load(Ordering::Acquire);
                    if h != 0 {
                        hazards.push(h);
                    }
                }
            }
        }
        hazards.sort_unstable();
        let retired = std::mem::take(&mut *self.retired.borrow_mut());
        let mut kept = Vec::new();
        for (addr, deferred) in retired {
            if hazards.binary_search(&addr).is_ok() {
                kept.push((addr, deferred));
            } else {
                deferred.call();
            }
        }
        *self.retired.borrow_mut() = kept;
    }

    /// Number of allocations retired on this thread and not yet freed.
    pub fn retired_count(&self) -> usize {
        self.retired.borrow().len()
    }
}

impl Drop for HazardLocal {
    fn drop(&mut self) {
        for slot in &self.record.slots {
            slot.store(0, Ordering::Release);
        }
        self.scan();
        let leftovers = std::mem::take(&mut *self.retired.borrow_mut());
        if !leftovers.is_empty() {
            self.domain.stash.lock().extend(leftovers);
        }
        self.record.active.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for HazardLocal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardLocal")
            .field("retired", &self.retired_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    struct DropCounter(Arc<Counter>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn protect_returns_current_pointer() {
        let domain = HazardDomain::new();
        let local = domain.register();
        let boxed = Box::into_raw(Box::new(5u32));
        let src = AtomicPtr::new(boxed);
        let p = local.protect(0, &src);
        assert_eq!(p, boxed);
        assert_eq!(unsafe { *p }, 5);
        local.clear(0);
        drop(unsafe { Box::from_raw(boxed) });
    }

    #[test]
    fn protect_null_needs_no_slot() {
        let domain = HazardDomain::new();
        let local = domain.register();
        let src: AtomicPtr<u32> = AtomicPtr::new(std::ptr::null_mut());
        assert!(local.protect(0, &src).is_null());
    }

    #[test]
    fn protected_pointer_survives_scan() {
        let drops = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        let protector = domain.register();
        let retirer = domain.register();

        let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        let src = AtomicPtr::new(ptr);
        let protected = protector.protect(0, &src);
        assert_eq!(protected, ptr);

        // Unlink, then retire from the other participant.
        src.store(std::ptr::null_mut(), Ordering::Release);
        unsafe { retirer.retire(ptr) };
        retirer.scan();
        assert_eq!(drops.load(Ordering::Relaxed), 0, "freed while protected");
        assert_eq!(retirer.retired_count(), 1);

        protector.clear(0);
        retirer.scan();
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        assert_eq!(retirer.retired_count(), 0);
    }

    #[test]
    fn threshold_triggers_scan() {
        let drops = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        let local = domain.register();
        for _ in 0..SCAN_THRESHOLD {
            let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { local.retire(ptr) };
        }
        assert_eq!(drops.load(Ordering::Relaxed), SCAN_THRESHOLD);
    }

    #[test]
    fn orphaned_retirees_adopted_or_freed_at_domain_drop() {
        let drops = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        {
            let local = domain.register();
            let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            // Protect it ourselves so our own drop-scan cannot free it...
            let src = AtomicPtr::new(ptr);
            let other = domain.register();
            other.protect(0, &src);
            unsafe { local.retire(ptr) };
            drop(local); // stashes the (still protected) retiree
            assert_eq!(drops.load(Ordering::Relaxed), 0);
            drop(other);
        }
        drop(domain);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn record_reuse_after_exit() {
        let domain = HazardDomain::new();
        for _ in 0..5 {
            let l = domain.register();
            assert_eq!(domain.participants(), 1);
            drop(l);
        }
        assert_eq!(domain.participants(), 0);
        assert_eq!(domain.inner.records.lock().len(), 1);
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        const ITERS: usize = 2_000;
        let drops = Arc::new(Counter::new(0));
        let allocs = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        let shared: AtomicPtr<DropCounter> = AtomicPtr::new(std::ptr::null_mut());

        std::thread::scope(|s| {
            // Writer: repeatedly swaps in a new allocation and retires
            // the one it displaced.
            for _ in 0..2 {
                s.spawn(|| {
                    let local = domain.register();
                    for _ in 0..ITERS {
                        allocs.fetch_add(1, Ordering::Relaxed);
                        let fresh = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                        let old = shared.swap(fresh, Ordering::AcqRel);
                        if !old.is_null() {
                            unsafe { local.retire(old) };
                        }
                    }
                });
            }
            // Readers: protect and dereference.
            for _ in 0..2 {
                s.spawn(|| {
                    let local = domain.register();
                    for _ in 0..ITERS {
                        let p = local.protect(0, &shared);
                        if !p.is_null() {
                            // Dereference under protection: must not be freed.
                            let _ = unsafe { &(*p).0 };
                        }
                        local.clear(0);
                    }
                });
            }
        });

        // Free the last published element.
        let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !last.is_null() {
            drop(unsafe { Box::from_raw(last) });
        }
        drop(domain);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            allocs.load(Ordering::Relaxed),
            "every allocation freed exactly once"
        );
    }
}
