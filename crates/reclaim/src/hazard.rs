//! Hazard pointers (Michael, TPDS 2004), built from scratch.
//!
//! A thread *protects* a pointer by publishing it in one of its hazard
//! slots before dereferencing, then re-validating that the source still
//! holds it. A retiring thread may only free an allocation after a scan
//! of **all** published slots shows nobody protects it.
//!
//! # Why the tree does not use these
//!
//! The paper remarks (§3.2) that reclamation "can be derived using the
//! well-known notion of hazard pointers". For the NM-BST as published,
//! that derivation is *not* the textbook protect-and-validate recipe: a
//! seek routinely walks through nodes whose incoming edge is already
//! flagged or tagged (that is the whole point of the seek record's
//! ancestor/successor pair), so the validation step "source still points
//! to the protected node" fails spuriously and, worse, cannot distinguish
//! a node that merely *will* be unlinked from one that already has been.
//! Making hazard pointers sound for this algorithm requires restarting
//! seeks from checkpoints whose own protection is validated transitively —
//! a follow-up line of work (e.g. NBR, HP-trees) beyond this paper. We
//! therefore ship the tree on [`Ebr`](crate::Ebr) and provide hazard
//! pointers as a tested, reusable substrate;
//! [`TreiberStack`](crate::TreiberStack) demonstrates them on a
//! structure where validation is sound.
//!
//! This module also hosts [`HazardEras`]: the same record machinery
//! publishing an *era* instead of an address. Era protection needs no
//! validation step, so it **is** sound for the tree — see its type docs.
//!
//! # Usage
//!
//! Unlike [`Ebr`](crate::Ebr), participation is explicit: each thread
//! [`register`](HazardDomain::register)s to obtain a [`HazardLocal`]
//! with a fixed number of slots. ([`HazardEras`] participation is
//! implicit, like `Ebr`: it implements [`Reclaim`].)

use crate::{Deferred, Reclaim, RetireGuard};
use nmbst_sync::SpinLock;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Hazard slots per registered thread. The tree-free structures in this
/// workspace need at most two simultaneously protected pointers.
pub const HP_SLOTS: usize = 4;

/// Scan (and free unprotected retirees) once this many retirements have
/// accumulated on a thread.
const SCAN_THRESHOLD: usize = 64;

struct HpRecord {
    active: AtomicBool,
    slots: [AtomicUsize; HP_SLOTS],
}

impl HpRecord {
    fn new() -> Self {
        HpRecord {
            active: AtomicBool::new(true),
            slots: [const { AtomicUsize::new(0) }; HP_SLOTS],
        }
    }
}

struct DomainInner {
    records: SpinLock<Vec<Arc<HpRecord>>>,
    /// Retired items orphaned by exited threads, picked up by the next
    /// scan on any thread.
    stash: SpinLock<Vec<(usize, Deferred)>>,
    /// Tokens parked by [`Reclaim::hold`]. Every deferral execution site
    /// (a local's `scan`, the stash drains) runs under a live
    /// `DomainInner`, and struct fields drop only after `Drop` has
    /// drained the stash — so a parked token outlives every deferral
    /// call.
    keepalive: SpinLock<Vec<Box<dyn std::any::Any + Send>>>,
}

impl DomainInner {
    fn new() -> Self {
        DomainInner {
            records: SpinLock::new(Vec::new()),
            stash: SpinLock::new(Vec::new()),
            keepalive: SpinLock::new(Vec::new()),
        }
    }

    /// Claims an inactive record for the calling thread, or registers a
    /// fresh one.
    fn acquire_record(&self) -> Arc<HpRecord> {
        let mut records = self.records.lock();
        match records.iter().find(|r| {
            !r.active.load(Ordering::Relaxed)
                && r.active
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
        }) {
            Some(r) => Arc::clone(r),
            None => {
                let r = Arc::new(HpRecord::new());
                records.push(Arc::clone(&r));
                r
            }
        }
    }
}

impl Drop for DomainInner {
    fn drop(&mut self) {
        // Last reference: no locals exist, hence no published hazards.
        for (_, deferred) in self.stash.lock().drain(..) {
            deferred.call();
        }
    }
}

/// A hazard-pointer domain: the set of threads whose published hazards
/// must be consulted before freeing a retiree. One per data structure.
#[derive(Clone)]
pub struct HazardDomain {
    inner: Arc<DomainInner>,
}

impl HazardDomain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        HazardDomain {
            inner: Arc::new(DomainInner::new()),
        }
    }

    /// Registers the calling thread, reusing the record of an exited
    /// thread when one is available.
    pub fn register(&self) -> HazardLocal {
        let record = self.inner.acquire_record();
        HazardLocal {
            domain: Arc::clone(&self.inner),
            record,
            retired: RefCell::new(Vec::new()),
        }
    }

    /// Number of registered (live) participants; diagnostics only.
    pub fn participants(&self) -> usize {
        self.inner
            .records
            .lock()
            .iter()
            .filter(|r| r.active.load(Ordering::Relaxed))
            .count()
    }
}

impl Default for HazardDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HazardDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardDomain")
            .field("participants", &self.participants())
            .finish()
    }
}

/// A thread's participation in a [`HazardDomain`]: [`HP_SLOTS`] hazard
/// slots plus a private list of retired-but-not-yet-freed allocations.
pub struct HazardLocal {
    domain: Arc<DomainInner>,
    record: Arc<HpRecord>,
    retired: RefCell<Vec<(usize, Deferred)>>,
}

impl HazardLocal {
    /// Protects the pointer currently stored in `src`: publishes it in
    /// hazard slot `index` and re-reads until the publication provably
    /// happened before any retirement scan that could free it.
    ///
    /// Returns the protected pointer (possibly null, which needs no
    /// protection). The protection lasts until the slot is overwritten
    /// by the next `protect`/[`clear`](HazardLocal::clear) on `index`.
    pub fn protect<T>(&self, index: usize, src: &AtomicPtr<T>) -> *mut T {
        let mut ptr = src.load(Ordering::Relaxed);
        loop {
            if ptr.is_null() {
                self.record.slots[index].store(0, Ordering::Release);
                return ptr;
            }
            self.record.slots[index].store(ptr as usize, Ordering::Release);
            // Order the publication before the validating re-read; pairs
            // with the fence in `scan`.
            fence(Ordering::SeqCst);
            let current = src.load(Ordering::Acquire);
            if current == ptr {
                return ptr;
            }
            ptr = current;
        }
    }

    /// Clears hazard slot `index`.
    #[inline]
    pub fn clear(&self, index: usize) {
        self.record.slots[index].store(0, Ordering::Release);
    }

    /// Retires `ptr`: it will be freed by a later scan, once no published
    /// hazard equals it.
    ///
    /// # Safety
    ///
    /// Same contract as [`RetireGuard::retire`]:
    /// `Box::into_raw` provenance, already unlinked, retired once.
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        // SAFETY: forwarded caller contract.
        let deferred = unsafe { Deferred::drop_box(ptr) };
        let mut retired = self.retired.borrow_mut();
        retired.push((ptr as usize, deferred));
        if retired.len() >= SCAN_THRESHOLD {
            drop(retired);
            self.scan();
        }
    }

    /// Frees every retired allocation no published hazard protects.
    pub fn scan(&self) {
        // Adopt orphaned retirees first so they are not stranded.
        {
            let mut stash = self.domain.stash.lock();
            self.retired.borrow_mut().append(&mut stash);
        }
        // Pairs with the fence in `protect`: any protection not visible
        // to the loads below was published after this fence, hence after
        // the retiree was unlinked — such a protect's validation re-read
        // cannot return the retired pointer.
        fence(Ordering::SeqCst);
        let mut hazards: Vec<usize> = Vec::new();
        {
            let records = self.domain.records.lock();
            for record in records.iter() {
                for slot in &record.slots {
                    let h = slot.load(Ordering::Acquire);
                    if h != 0 {
                        hazards.push(h);
                    }
                }
            }
        }
        hazards.sort_unstable();
        let retired = std::mem::take(&mut *self.retired.borrow_mut());
        let mut kept = Vec::new();
        for (addr, deferred) in retired {
            if hazards.binary_search(&addr).is_ok() {
                kept.push((addr, deferred));
            } else {
                deferred.call();
            }
        }
        *self.retired.borrow_mut() = kept;
    }

    /// Number of allocations retired on this thread and not yet freed.
    pub fn retired_count(&self) -> usize {
        self.retired.borrow().len()
    }
}

impl Drop for HazardLocal {
    fn drop(&mut self) {
        for slot in &self.record.slots {
            slot.store(0, Ordering::Release);
        }
        self.scan();
        let leftovers = std::mem::take(&mut *self.retired.borrow_mut());
        if !leftovers.is_empty() {
            self.domain.stash.lock().extend(leftovers);
        }
        self.record.active.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for HazardLocal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardLocal")
            .field("retired", &self.retired_count())
            .finish()
    }
}

// --- Hazard eras -----------------------------------------------------

/// Which hazard slot of a record holds the published era. The eras scheme
/// needs exactly one slot per thread; the remaining [`HP_SLOTS`] stay 0.
const ERA_SLOT: usize = 0;

/// Retirements accumulated on a thread before its next unpin scans.
const ERA_SCAN_THRESHOLD: usize = 32;

struct ErasInner {
    /// Unique id keying the thread-local registry.
    id: usize,
    /// Global era clock. Starts at 1 so a published 0 means "unpinned";
    /// bumped on every retirement.
    era: AtomicUsize,
    /// Same record registry + orphan stash the address-based scheme uses;
    /// a record's [`ERA_SLOT`] holds an era instead of a pointer, and
    /// stashed retirees carry their retirement era instead of an address.
    domain: DomainInner,
    /// Set when the owning [`HazardEras`] is dropped: no guards can exist
    /// any more, so registry entries may be evicted.
    orphaned: AtomicBool,
}

/// Per-thread participant in a [`HazardEras`] collector, owned by the
/// thread-local registry.
struct ErasLocal {
    inner: Arc<ErasInner>,
    record: Arc<HpRecord>,
    guard_count: Cell<usize>,
    /// `(retirement era, destructor)` pairs not yet proven unreachable.
    retired: RefCell<Vec<(usize, Deferred)>>,
}

impl ErasLocal {
    #[inline]
    fn pin(&self) {
        let count = self.guard_count.get();
        if count == 0 {
            let era = self.inner.era.load(Ordering::SeqCst);
            self.record.slots[ERA_SLOT].store(era, Ordering::SeqCst);
            // Publish the era before any shared read; pairs with the
            // fence in `scan`.
            fence(Ordering::SeqCst);
        }
        self.guard_count.set(count + 1);
    }

    #[inline]
    fn unpin(&self) {
        let count = self.guard_count.get() - 1;
        self.guard_count.set(count);
        if count == 0 {
            self.record.slots[ERA_SLOT].store(0, Ordering::Release);
            if self.retired.borrow().len() >= ERA_SCAN_THRESHOLD {
                self.scan();
            }
        }
    }

    /// Frees every retiree whose retirement era precedes every published
    /// era (such a pin started after the retiree's unlink-then-bump, so
    /// it cannot have reached the retiree).
    fn scan(&self) {
        // Adopt orphaned retirees first so they are not stranded.
        {
            let mut stash = self.inner.domain.stash.lock();
            self.retired.borrow_mut().append(&mut stash);
        }
        // Pairs with the fence in `pin`: an era publication not visible
        // to the loads below happened after this fence, hence reads an
        // era greater than any already-stamped retiree's.
        fence(Ordering::SeqCst);
        let mut min_era = usize::MAX;
        {
            let records = self.inner.domain.records.lock();
            for record in records.iter() {
                let e = record.slots[ERA_SLOT].load(Ordering::Acquire);
                if e != 0 && e < min_era {
                    min_era = e;
                }
            }
        }
        let retired = std::mem::take(&mut *self.retired.borrow_mut());
        let mut kept = Vec::new();
        for (era, deferred) in retired {
            if era >= min_era {
                kept.push((era, deferred));
            } else {
                deferred.call();
            }
        }
        *self.retired.borrow_mut() = kept;
    }
}

impl Drop for ErasLocal {
    fn drop(&mut self) {
        debug_assert_eq!(self.guard_count.get(), 0, "thread exited while pinned");
        self.record.slots[ERA_SLOT].store(0, Ordering::Release);
        self.scan();
        let leftovers = std::mem::take(&mut *self.retired.borrow_mut());
        if !leftovers.is_empty() {
            self.inner.domain.stash.lock().extend(leftovers);
        }
        self.record.active.store(false, Ordering::Release);
    }
}

thread_local! {
    /// Registry of this thread's `ErasLocal`s, keyed by collector id —
    /// same shape as the EBR registry (`ebr::LOCALS`).
    static ERAS_LOCALS: RefCell<Vec<(usize, Rc<ErasLocal>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_ERAS_ID: AtomicUsize = AtomicUsize::new(0);

/// Hazard-eras reclamation (Ramalhete & Correia, DISC 2017 brief
/// announcement): the hazard-pointer *machinery* — per-thread records,
/// published slots, scan-before-free — protecting an **era** instead of
/// an address.
///
/// Each pin publishes the global era; each retirement stamps the retiree
/// with the era and bumps the clock. A retiree may be freed once every
/// published era is newer than its stamp: such a pin began after the
/// retiree was unlinked, so it can never have reached it.
///
/// # Why this is the hazard scheme the tree can use
///
/// Per-address hazard pointers need a protect-then-validate step that the
/// NM-BST seek cannot perform (see the module docs: seeks walk edges that
/// are already flagged/tagged). Era protection needs **no validation** —
/// it guards an interval of time, not a pointer — so it is sound for any
/// structure that unlinks before retiring, the tree included. The cost is
/// EBR-like: a stalled pinned thread blocks reclamation (but never tree
/// progress). What it buys over [`Ebr`](crate::Ebr) here is exercising
/// this crate's hazard-record substrate under the tree's real workload.
///
/// # Examples
///
/// ```
/// use nmbst_reclaim::{HazardEras, Reclaim, RetireGuard};
///
/// let he = HazardEras::new();
/// let guard = he.pin();
/// let ptr = Box::into_raw(Box::new(42));
/// // ... unlink `ptr` from the shared structure, then:
/// unsafe { guard.retire(ptr) };
/// drop(guard);
/// // freed once every pin that could have seen `ptr` has ended —
/// // at the latest when `he` is dropped.
/// ```
pub struct HazardEras {
    inner: Arc<ErasInner>,
}

impl HazardEras {
    /// Returns this thread's `ErasLocal` for this collector, registering
    /// on first use and evicting entries of dropped collectors.
    fn local(&self) -> Rc<ErasLocal> {
        ERAS_LOCALS.with(|registry| {
            let mut registry = registry.borrow_mut();
            registry.retain(|(_, local)| !local.inner.orphaned.load(Ordering::Acquire));
            if let Some((_, local)) = registry.iter().find(|(id, _)| *id == self.inner.id) {
                return Rc::clone(local);
            }
            let local = Rc::new(ErasLocal {
                inner: Arc::clone(&self.inner),
                record: self.inner.domain.acquire_record(),
                guard_count: Cell::new(0),
                retired: RefCell::new(Vec::new()),
            });
            registry.push((self.inner.id, Rc::clone(&local)));
            local
        })
    }

    /// Current value of the era clock (diagnostics and tests).
    pub fn era(&self) -> usize {
        self.inner.era.load(Ordering::Acquire)
    }
}

impl Reclaim for HazardEras {
    type Guard<'a> = HazardErasGuard<'a>;

    fn new() -> Self {
        HazardEras {
            inner: Arc::new(ErasInner {
                id: NEXT_ERAS_ID.fetch_add(1, Ordering::Relaxed),
                era: AtomicUsize::new(1),
                domain: DomainInner::new(),
                orphaned: AtomicBool::new(false),
            }),
        }
    }

    #[inline]
    fn pin(&self) -> HazardErasGuard<'_> {
        let local = self.local();
        local.pin();
        HazardErasGuard {
            local,
            _collector: PhantomData,
        }
    }

    /// Scans now, freeing whatever no current pin can reach, without
    /// waiting for this thread's retirement threshold.
    fn flush(&self) {
        self.local().scan();
    }

    /// Parks `token` in the shared domain state, which every deferral
    /// execution site (local scans, the orphan-stash drains) runs under:
    /// stragglers reach it through their own `Arc<ErasInner>`.
    fn hold(&self, token: Box<dyn std::any::Any + Send>) {
        self.inner.domain.keepalive.lock().push(token);
    }
}

impl Default for HazardEras {
    fn default() -> Self {
        Reclaim::new()
    }
}

impl Drop for HazardEras {
    fn drop(&mut self) {
        // Guards borrow `&self`, so none exist anywhere; publish
        // orphan-hood so registries evict, then free the stash. Retirees
        // still private to other live threads are freed by those
        // threads' `ErasLocal::drop` scans (nothing is pinned).
        self.inner.orphaned.store(true, Ordering::SeqCst);
        let _ = ERAS_LOCALS.try_with(|registry| {
            registry.borrow_mut().retain(|(id, _)| *id != self.inner.id);
        });
        for (_, deferred) in self.inner.domain.stash.lock().drain(..) {
            deferred.call();
        }
    }
}

impl std::fmt::Debug for HazardEras {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardEras")
            .field("id", &self.inner.id)
            .field("era", &self.era())
            .finish()
    }
}

/// The pinned critical section of a [`HazardEras`] collector.
///
/// Re-entrant: nested pins on the same thread share the outermost era.
/// `!Send`: a guard must be dropped on the thread that created it.
pub struct HazardErasGuard<'a> {
    local: Rc<ErasLocal>,
    _collector: PhantomData<&'a HazardEras>,
}

impl RetireGuard for HazardErasGuard<'_> {
    #[inline]
    unsafe fn retire_deferred(&self, deferred: Deferred) {
        // Stamp, then bump: any pin published after the bump carries an
        // era strictly greater than the stamp. Recycle deferrals get the
        // same stamp discipline as plain drops.
        let era = self.local.inner.era.fetch_add(1, Ordering::SeqCst);
        self.local.retired.borrow_mut().push((era, deferred));
    }
}

impl Drop for HazardErasGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        self.local.unpin();
    }
}

impl std::fmt::Debug for HazardErasGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HazardErasGuard { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    struct DropCounter(Arc<Counter>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn protect_returns_current_pointer() {
        let domain = HazardDomain::new();
        let local = domain.register();
        let boxed = Box::into_raw(Box::new(5u32));
        let src = AtomicPtr::new(boxed);
        let p = local.protect(0, &src);
        assert_eq!(p, boxed);
        assert_eq!(unsafe { *p }, 5);
        local.clear(0);
        drop(unsafe { Box::from_raw(boxed) });
    }

    #[test]
    fn protect_null_needs_no_slot() {
        let domain = HazardDomain::new();
        let local = domain.register();
        let src: AtomicPtr<u32> = AtomicPtr::new(std::ptr::null_mut());
        assert!(local.protect(0, &src).is_null());
    }

    #[test]
    fn protected_pointer_survives_scan() {
        let drops = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        let protector = domain.register();
        let retirer = domain.register();

        let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        let src = AtomicPtr::new(ptr);
        let protected = protector.protect(0, &src);
        assert_eq!(protected, ptr);

        // Unlink, then retire from the other participant.
        src.store(std::ptr::null_mut(), Ordering::Release);
        unsafe { retirer.retire(ptr) };
        retirer.scan();
        assert_eq!(drops.load(Ordering::Relaxed), 0, "freed while protected");
        assert_eq!(retirer.retired_count(), 1);

        protector.clear(0);
        retirer.scan();
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        assert_eq!(retirer.retired_count(), 0);
    }

    #[test]
    fn threshold_triggers_scan() {
        let drops = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        let local = domain.register();
        for _ in 0..SCAN_THRESHOLD {
            let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { local.retire(ptr) };
        }
        assert_eq!(drops.load(Ordering::Relaxed), SCAN_THRESHOLD);
    }

    #[test]
    fn orphaned_retirees_adopted_or_freed_at_domain_drop() {
        let drops = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        {
            let local = domain.register();
            let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            // Protect it ourselves so our own drop-scan cannot free it...
            let src = AtomicPtr::new(ptr);
            let other = domain.register();
            other.protect(0, &src);
            unsafe { local.retire(ptr) };
            drop(local); // stashes the (still protected) retiree
            assert_eq!(drops.load(Ordering::Relaxed), 0);
            drop(other);
        }
        drop(domain);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn record_reuse_after_exit() {
        let domain = HazardDomain::new();
        for _ in 0..5 {
            let l = domain.register();
            assert_eq!(domain.participants(), 1);
            drop(l);
        }
        assert_eq!(domain.participants(), 0);
        assert_eq!(domain.inner.records.lock().len(), 1);
    }

    fn eras_retire_counter(he: &HazardEras, drops: &Arc<Counter>) {
        let guard = he.pin();
        let ptr = Box::into_raw(Box::new(DropCounter(Arc::clone(drops))));
        unsafe { guard.retire(ptr) };
    }

    #[test]
    fn eras_garbage_freed_by_collector_drop() {
        let drops = Arc::new(Counter::new(0));
        let he = HazardEras::new();
        for _ in 0..10 {
            eras_retire_counter(&he, &drops);
        }
        drop(he);
        assert_eq!(drops.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn eras_flush_frees_when_nothing_pinned() {
        let drops = Arc::new(Counter::new(0));
        let he = HazardEras::new();
        for _ in 0..5 {
            eras_retire_counter(&he, &drops);
        }
        he.flush();
        assert_eq!(drops.load(Ordering::Relaxed), 5);
        drop(he);
    }

    #[test]
    fn eras_pinned_thread_blocks_reclamation() {
        let drops = Arc::new(Counter::new(0));
        let he = HazardEras::new();
        let outer = he.pin();
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..3 {
                    eras_retire_counter(&he, &drops);
                }
                he.flush();
            });
        });
        assert_eq!(drops.load(Ordering::Relaxed), 0, "freed under a pin");
        drop(outer);
        // The exited thread stashed its survivors from its thread-local
        // destructor, which may trail the join slightly; adopt-and-scan
        // until they arrive, then free them (nothing is pinned anymore).
        for _ in 0..1_000 {
            he.flush();
            if drops.load(Ordering::Relaxed) == 3 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert_eq!(drops.load(Ordering::Relaxed), 3);
        drop(he);
    }

    #[test]
    fn eras_nested_pins_share_era() {
        let drops = Arc::new(Counter::new(0));
        let he = HazardEras::new();
        let g1 = he.pin();
        eras_retire_counter(&he, &drops); // nested pin + retire
        he.flush();
        assert_eq!(drops.load(Ordering::Relaxed), 0, "own pin must block");
        drop(g1);
        he.flush();
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(he);
    }

    #[test]
    fn eras_era_clock_bumps_on_retire() {
        let he = HazardEras::new();
        let e0 = he.era();
        let ptr = Box::into_raw(Box::new(7u32));
        let guard = he.pin();
        unsafe { guard.retire(ptr) };
        drop(guard);
        assert_eq!(he.era(), e0 + 1);
        drop(he);
    }

    #[test]
    fn eras_concurrent_swap_stress_frees_everything() {
        const ITERS: usize = 2_000;
        let drops = Arc::new(Counter::new(0));
        let allocs = Arc::new(Counter::new(0));
        let he = HazardEras::new();
        let shared: AtomicPtr<DropCounter> = AtomicPtr::new(std::ptr::null_mut());

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..ITERS {
                        allocs.fetch_add(1, Ordering::Relaxed);
                        let fresh = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                        let guard = he.pin();
                        let old = shared.swap(fresh, Ordering::AcqRel);
                        if !old.is_null() {
                            unsafe { guard.retire(old) };
                        }
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..ITERS {
                        let guard = he.pin();
                        let p = shared.load(Ordering::Acquire);
                        if !p.is_null() {
                            // Dereference under the pin: must not be freed.
                            let _ = unsafe { &(*p).0 };
                        }
                        drop(guard);
                    }
                });
            }
        });

        let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !last.is_null() {
            drop(unsafe { Box::from_raw(last) });
        }
        drop(he);
        // Worker thread-local destructors (which stash-or-free their
        // remaining retirees) may trail the joins slightly.
        for _ in 0..1_000 {
            if drops.load(Ordering::Relaxed) == allocs.load(Ordering::Relaxed) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            allocs.load(Ordering::Relaxed),
            "every allocation freed exactly once"
        );
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        const ITERS: usize = 2_000;
        let drops = Arc::new(Counter::new(0));
        let allocs = Arc::new(Counter::new(0));
        let domain = HazardDomain::new();
        let shared: AtomicPtr<DropCounter> = AtomicPtr::new(std::ptr::null_mut());

        std::thread::scope(|s| {
            // Writer: repeatedly swaps in a new allocation and retires
            // the one it displaced.
            for _ in 0..2 {
                s.spawn(|| {
                    let local = domain.register();
                    for _ in 0..ITERS {
                        allocs.fetch_add(1, Ordering::Relaxed);
                        let fresh = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                        let old = shared.swap(fresh, Ordering::AcqRel);
                        if !old.is_null() {
                            unsafe { local.retire(old) };
                        }
                    }
                });
            }
            // Readers: protect and dereference.
            for _ in 0..2 {
                s.spawn(|| {
                    let local = domain.register();
                    for _ in 0..ITERS {
                        let p = local.protect(0, &shared);
                        if !p.is_null() {
                            // Dereference under protection: must not be freed.
                            let _ = unsafe { &(*p).0 };
                        }
                        local.clear(0);
                    }
                });
            }
        });

        // Free the last published element.
        let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if !last.is_null() {
            drop(unsafe { Box::from_raw(last) });
        }
        drop(domain);
        assert_eq!(
            drops.load(Ordering::Relaxed),
            allocs.load(Ordering::Relaxed),
            "every allocation freed exactly once"
        );
    }
}
