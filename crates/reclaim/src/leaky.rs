//! The no-op reclaimer: retired memory is leaked.

use crate::{Reclaim, RetireGuard};

/// A reclaimer that never frees anything.
///
/// This reproduces the paper's measurement conditions exactly: "For a
/// fair comparison, no memory reclamation is performed in any of the
/// implementations" (§4). The benchmark harness instantiates every tree
/// with `Leaky` so that Figure 4 compares the algorithms, not the
/// reclamation schemes.
///
/// `pin` and `retire` compile to nothing, so the scheme is trivially
/// wait-free and costs zero cycles on the operation path.
///
/// Outside benchmarks, prefer [`Ebr`](crate::Ebr).
#[derive(Debug, Default)]
pub struct Leaky;

/// The (zero-sized) guard of the [`Leaky`] reclaimer.
#[derive(Debug)]
pub struct LeakyGuard;

impl Reclaim for Leaky {
    type Guard<'a> = LeakyGuard;

    /// `Leaky` never runs deferrals, so callers must not hand it recycle
    /// deferrals expecting the memory to come back.
    const RECLAIMS: bool = false;

    #[inline]
    fn new() -> Self {
        Leaky
    }

    #[inline]
    fn pin(&self) -> LeakyGuard {
        LeakyGuard
    }
}

impl RetireGuard for LeakyGuard {
    #[inline]
    unsafe fn retire<T: Send>(&self, _ptr: *mut T) {
        // Intentionally leaked: the memory stays valid forever, which
        // vacuously satisfies the "no use after free" obligation.
    }

    #[inline]
    unsafe fn retire_deferred(&self, _deferred: crate::Deferred) {
        // Dropped uncalled: whatever the deferral guards is leaked, which
        // is this scheme's whole point. (`Deferred` has no `Drop`, so no
        // destructor sneaks in.)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_retire_are_noops() {
        let r = Leaky::new();
        let g = r.pin();
        let ptr = Box::into_raw(Box::new(123u32));
        // Retiring leaks; the pointer must remain readable afterwards.
        unsafe { g.retire(ptr) };
        assert_eq!(unsafe { *ptr }, 123);
        // Clean up the test's own leak.
        drop(unsafe { Box::from_raw(ptr) });
    }

    #[test]
    fn guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<LeakyGuard>(), 0);
        assert_eq!(std::mem::size_of::<Leaky>(), 0);
    }

    #[test]
    fn flush_is_noop() {
        let r = Leaky::new();
        r.flush();
    }
}
