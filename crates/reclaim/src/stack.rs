//! A Treiber stack protected by hazard pointers.
//!
//! This is the canonical structure for which textbook hazard pointers
//! are sound (protect the head, validate, CAS it off), included both as
//! a working demonstration of [`HazardDomain`](crate::HazardDomain) and
//! as a reusable utility.

use crate::hazard::{HazardDomain, HazardLocal};
use std::mem::ManuallyDrop;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct StackNode<T> {
    value: ManuallyDrop<T>,
    next: *mut StackNode<T>,
}

// SAFETY: the `next` pointer is only dereferenced under the stack's
// synchronization protocol; sending a node between threads is sound
// whenever its payload is.
unsafe impl<T: Send> Send for StackNode<T> {}

/// A lock-free LIFO stack (Treiber) with hazard-pointer reclamation.
///
/// Threads that pop must hold a [`HazardLocal`] obtained from
/// [`register`](TreiberStack::register); pushes need no handle.
///
/// # Examples
///
/// ```
/// use nmbst_reclaim::TreiberStack;
///
/// let stack = TreiberStack::new();
/// let handle = stack.register();
/// stack.push(1);
/// stack.push(2);
/// assert_eq!(stack.pop(&handle), Some(2));
/// assert_eq!(stack.pop(&handle), Some(1));
/// assert_eq!(stack.pop(&handle), None);
/// ```
pub struct TreiberStack<T> {
    head: AtomicPtr<StackNode<T>>,
    domain: HazardDomain,
}

// SAFETY: values of `T` move between threads through the stack.
unsafe impl<T: Send> Send for TreiberStack<T> {}
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T: Send> TreiberStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        TreiberStack {
            head: AtomicPtr::new(ptr::null_mut()),
            domain: HazardDomain::new(),
        }
    }

    /// Registers the calling thread with the stack's hazard domain.
    pub fn register(&self) -> HazardLocal {
        self.domain.register()
    }

    /// Pushes `value` on top of the stack.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(StackNode {
            value: ManuallyDrop::new(value),
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is not yet shared; we own it exclusively.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Pops the top value, or `None` if the stack is empty.
    pub fn pop(&self, handle: &HazardLocal) -> Option<T> {
        loop {
            let head = handle.protect(0, &self.head);
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` is protected by hazard slot 0, so it cannot
            // have been freed; it may however already be off the stack,
            // which the CAS below detects.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS made us the unique owner of `head`; the
                // value is taken exactly once and the node's destructor
                // (a ManuallyDrop) will not run it again.
                let value = unsafe { ManuallyDrop::take(&mut (*head).value) };
                handle.clear(0);
                // SAFETY: unlinked by the successful CAS; never retired
                // elsewhere.
                unsafe { handle.retire(head) };
                return Some(value);
            }
            handle.clear(0);
        }
    }

    /// `true` if the stack observed no elements at the moment of the call.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T: Send> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // Exclusive access: walk and free the remaining chain.
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: nodes on the chain are live Box allocations we
            // uniquely own during drop.
            let mut boxed = unsafe { Box::from_raw(node) };
            unsafe { ManuallyDrop::drop(&mut boxed.value) };
            node = boxed.next;
        }
    }
}

impl<T: Send> std::fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreiberStack")
            .field("is_empty", &self.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_order_single_thread() {
        let stack = TreiberStack::new();
        let h = stack.register();
        for i in 0..10 {
            stack.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(stack.pop(&h), Some(i));
        }
        assert_eq!(stack.pop(&h), None);
        assert!(stack.is_empty());
    }

    #[test]
    fn drop_frees_remaining_values() {
        struct DropCounter(Arc<AtomicUsize>);
        impl Drop for DropCounter {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let stack = TreiberStack::new();
        for _ in 0..5 {
            stack.push(DropCounter(Arc::clone(&drops)));
        }
        let h = stack.register();
        drop(stack.pop(&h));
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        drop(h);
        drop(stack);
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_push_pop_no_loss_no_duplication() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 5_000;
        let stack = Arc::new(TreiberStack::new());
        let popped = Arc::new(std::sync::Mutex::new(Vec::new()));
        let done = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let stack = Arc::clone(&stack);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        stack.push(p * PER_PRODUCER + i);
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
            for _ in 0..2 {
                let stack = Arc::clone(&stack);
                let popped = Arc::clone(&popped);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let h = stack.register();
                    let mut mine = Vec::new();
                    loop {
                        match stack.pop(&h) {
                            Some(v) => mine.push(v),
                            None if done.load(Ordering::Acquire) == PRODUCERS => break,
                            None => std::thread::yield_now(),
                        }
                    }
                    popped.lock().unwrap().extend(mine);
                });
            }
        });

        let all = popped.lock().unwrap();
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
        let unique: HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicate pops");
    }
}
