//! Safe memory reclamation substrate for the NM-BST reproduction.
//!
//! The paper (§3.2) assumes "memory allocated to nodes that are no longer
//! part of the tree is not reclaimed" and its evaluation (§4) performs no
//! reclamation in any implementation. A credible Rust release cannot leak,
//! so this crate implements — from scratch, no `crossbeam-epoch` — the
//! reclamation schemes a lock-free tree needs:
//!
//! * [`Ebr`] — epoch-based reclamation (global epoch, per-thread
//!   participant slots, deferred-destruction bags). This is the scheme
//!   the tree ships with.
//! * [`HazardDomain`] / [`HazardLocal`] — Michael-style hazard pointers.
//!   Provided and fully tested as a substrate (see [`TreiberStack`]), but
//!   *not* used for the tree: NM-BST seeks may traverse nodes whose
//!   incoming edge is already marked, and a plain per-node hazard pointer
//!   cannot be validated against such a path (the paper waves at hazard
//!   pointers; published follow-up work restructures the traversal to
//!   make them sound — out of scope here, documented in `hazard`).
//! * [`HazardEras`] — the hazard-record machinery protecting an *era*
//!   instead of an address. Needs no per-node validation, so the tree can
//!   (and its whitebox helping-path tests do) run on it.
//! * [`Leaky`] — the paper-faithful no-op reclaimer used by the benchmark
//!   harness so that Figure 4 is measured under the paper's conditions.
//!
//! All three implement the [`Reclaim`] trait; the tree is generic over it.
//!
//! # Progress guarantees
//!
//! `Leaky` is trivially wait-free. `Ebr`'s `pin`/`unpin` are wait-free;
//! retiring is lock-free except for a bounded-critical-section spin lock
//! guarding the global bag queue and the participant registry — a stalled
//! lock holder delays *reclamation* (memory growth) but never blocks or
//! delays tree operations' completion, so the tree's lock-freedom claim
//! is unaffected.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod deferred;
pub mod ebr;
pub mod hazard;
mod leaky;
mod pool;
mod stack;

pub use deferred::Deferred;
pub use ebr::{Ebr, EbrGuard};
pub use hazard::{HazardDomain, HazardEras, HazardErasGuard, HazardLocal};
pub use leaky::{Leaky, LeakyGuard};
pub use pool::{NodePool, PoolStats};
pub use stack::TreiberStack;

/// Point-in-time reclamation health gauges (see [`Reclaim::gauges`]).
///
/// These are the numbers an operator needs to tell "reclamation is
/// keeping up" from "a parked thread is pinning the epoch and garbage is
/// accumulating" — previously observable only indirectly, by watching
/// live-value counts in whitebox tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimGauges {
    /// The scheme's global epoch (or era) counter. `0` for schemes
    /// without one.
    pub epoch: u64,
    /// Distance between the global epoch and the oldest epoch any
    /// currently pinned thread announced. `0` when nothing is pinned.
    /// Under [`Ebr`] a persistent non-zero lag means some thread is
    /// parked inside a critical section and no garbage newer than its
    /// epoch can be freed.
    pub epoch_lag: u64,
    /// Threads currently inside a pinned critical section.
    pub pinned_threads: u64,
    /// Objects retired but not yet freed: the sum of every thread's
    /// local retire queue plus all sealed bags awaiting their epoch
    /// distance. The "garbage backlog" an operator alerts on.
    pub retired_backlog: u64,
}

/// A memory-reclamation scheme a concurrent data structure can be
/// generic over.
///
/// The contract mirrors epoch-style reclamation:
///
/// 1. A thread [`pin`](Reclaim::pin)s before dereferencing any shared
///    node pointer and keeps the returned guard alive for as long as it
///    uses pointers read under it.
/// 2. After a node has been *unlinked* (no new observer can reach it by
///    following the structure from its roots), the unlinking thread
///    passes it to [`RetireGuard::retire`]; the scheme frees it once no
///    pinned thread can still hold a reference.
pub trait Reclaim: Send + Sync + 'static {
    /// The critical-section token. Dropping it ends the critical section.
    type Guard<'a>: RetireGuard
    where
        Self: 'a;

    /// Whether retired deferrals eventually *run* under this scheme.
    ///
    /// `true` for every real reclaimer; `false` for [`Leaky`], which
    /// drops deferrals uncalled so retired memory leaks by design.
    /// Callers building recycle deferrals (which reference a shared
    /// [`NodePool`]) consult this to skip the pointless construction
    /// under a non-reclaiming scheme.
    const RECLAIMS: bool = true;

    /// Creates a fresh, independent instance of the scheme.
    fn new() -> Self;

    /// Enters a reclamation critical section on the current thread.
    fn pin(&self) -> Self::Guard<'_>;

    /// Hands any garbage batched on the current thread to the global
    /// collector so it becomes eligible for reclamation without waiting
    /// for this thread to exit. No-op for schemes without batching.
    fn flush(&self) {}

    /// Point-in-time health gauges for this scheme. The default
    /// implementation reports all zeros (appropriate for schemes with no
    /// deferred state, like [`Leaky`]); [`Ebr`] reports real epoch lag
    /// and retire-queue backlog. Never blocks operations: implementations
    /// only take short diagnostic locks.
    fn gauges(&self) -> ReclaimGauges {
        ReclaimGauges::default()
    }

    /// Parks `token` inside the scheme's shared state so it is dropped
    /// only after the last deferral that could ever run has run.
    ///
    /// This is the lifetime half of the recycle path's contract: a
    /// recycle [`Deferred`] carries a *raw* pointer to its [`NodePool`]
    /// (refcounting every deferral would put two RMWs on every retired
    /// node), and instead the pool's owner parks one `Arc` clone here.
    /// Implementations that execute deferrals **must** therefore keep the
    /// token alive at every site that calls a deferral — including
    /// straggler per-thread state destroyed after the scheme's owner is
    /// gone. [`Ebr`] and [`HazardEras`] anchor every execution site in
    /// their `Arc`-shared inner state and park the token there.
    ///
    /// The default drops `token` immediately, which is correct exactly
    /// when the scheme never runs deferrals (`RECLAIMS == false`, i.e.
    /// [`Leaky`]).
    fn hold(&self, token: Box<dyn std::any::Any + Send>) {
        drop(token);
    }
}

/// Operations available on a pinned guard.
pub trait RetireGuard {
    /// Defers destruction of `ptr` until no pinned thread can reach it.
    ///
    /// # Safety
    ///
    /// * `ptr` must have been created by [`Box::into_raw`] and not
    ///   retired or freed before.
    /// * `ptr` must already be unreachable for threads that pin *after*
    ///   this call (i.e. it has been unlinked from the shared structure).
    unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        // SAFETY: forwarded caller contract; `retire_deferred` runs the
        // deferral exactly once after the grace period (or leaks it, for
        // non-reclaiming schemes, which leaks the allocation as intended).
        unsafe { self.retire_deferred(Deferred::drop_box(ptr)) }
    }

    /// Defers an arbitrary destruction/recycle action until no pinned
    /// thread can reach the allocation it guards. This is the recycle
    /// path's entry point: the caller builds a [`Deferred`] that hands
    /// the block back to a [`NodePool`] instead of freeing it, and the
    /// scheme runs it with exactly the same grace-period proof it gives
    /// [`retire`](Self::retire) — which is what makes reuse ABA-safe.
    ///
    /// Schemes that never reclaim ([`Leaky`]) drop the deferral uncalled.
    ///
    /// # Safety
    ///
    /// * Running `deferred` must be the unique release of whatever it
    ///   guards, and must be sound once the allocation is unreachable.
    /// * The allocation must already be unreachable for threads that pin
    ///   *after* this call (unlinked from the shared structure).
    unsafe fn retire_deferred(&self, deferred: Deferred);
}
