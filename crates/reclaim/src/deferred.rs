//! Type-erased deferred destruction.

/// A type-erased "free this later" closure: the address of a heap
/// allocation, one word of caller context, and the monomorphic function
/// that knows the allocation's real type.
///
/// This is the unit stored in reclamation bags. It is deliberately a bare
/// (data, ctx, fn) triple rather than `Box<dyn FnOnce>` so that deferring
/// a destruction performs **zero** additional allocation — reclamation
/// bookkeeping must not dominate the allocation behaviour being measured
/// (Table 1 counts objects allocated per operation).
///
/// The context word exists for the recycle path: a deferral that returns
/// the block to a [`NodePool`](crate::NodePool) instead of the global
/// allocator carries an owned `Arc` pointer to the pool there, so the
/// pool provably outlives every deferral that references it.
pub struct Deferred {
    data: *mut (),
    ctx: *mut (),
    call: unsafe fn(*mut (), *mut ()),
}

// SAFETY: a `Deferred` is only constructed from `Box::into_raw` of a
// `T: Send` allocation (enforced by the constructors' contracts), so
// transferring the right to drop it to another thread is sound.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Creates a deferred destruction for a `Box<T>` allocation.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw` and must not be freed or
    /// retired elsewhere; calling the returned deferral is the unique
    /// release of the allocation.
    pub unsafe fn drop_box<T: Send>(ptr: *mut T) -> Self {
        unsafe fn call_drop<T>(data: *mut (), _ctx: *mut ()) {
            // SAFETY: `data` is the pointer stored by `drop_box::<T>`.
            drop(unsafe { Box::from_raw(data.cast::<T>()) });
        }
        Deferred {
            data: ptr.cast(),
            ctx: std::ptr::null_mut(),
            call: call_drop::<T>,
        }
    }

    /// Creates a deferral from raw parts: `call(data, ctx)` runs exactly
    /// once when the deferral fires. This is how callers build deferrals
    /// that do something other than `Box::from_raw` — e.g. hand the block
    /// back to a node pool.
    ///
    /// # Safety
    ///
    /// * `call(data, ctx)` must be sound to invoke exactly once, from any
    ///   thread (ownership of whatever `data`/`ctx` reference transfers
    ///   into the deferral).
    /// * The deferral WILL eventually be called by any reclaimer whose
    ///   [`Reclaim::RECLAIMS`](crate::Reclaim::RECLAIMS) is `true`; under
    ///   a non-reclaiming scheme it is leaked uncalled, so `ctx` must not
    ///   be something whose leak is unsound (a leaked refcount is fine).
    pub unsafe fn from_raw(data: *mut (), ctx: *mut (), call: unsafe fn(*mut (), *mut ())) -> Self {
        Deferred { data, ctx, call }
    }

    /// The erased address, for membership tests against hazard lists.
    #[inline]
    pub fn address(&self) -> usize {
        self.data as usize
    }

    /// Runs the deferred destruction, consuming it.
    #[inline]
    pub fn call(self) {
        // SAFETY: constructors guarantee `data`/`ctx`/`call` are a matched
        // triple and `self` is consumed, so the destructor runs exactly
        // once.
        unsafe { (self.call)(self.data, self.ctx) }
    }
}

impl std::fmt::Debug for Deferred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deferred")
            .field("addr", &self.data)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn call_runs_destructor_once() {
        let count = Arc::new(AtomicUsize::new(0));
        let ptr = Box::into_raw(Box::new(DropCounter(count.clone())));
        let d = unsafe { Deferred::drop_box(ptr) };
        assert_eq!(count.load(Ordering::Relaxed), 0);
        d.call();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn address_matches_allocation() {
        let ptr = Box::into_raw(Box::new(17u64));
        let d = unsafe { Deferred::drop_box(ptr) };
        assert_eq!(d.address(), ptr as usize);
        d.call();
    }

    #[test]
    fn send_to_another_thread() {
        let count = Arc::new(AtomicUsize::new(0));
        let ptr = Box::into_raw(Box::new(DropCounter(count.clone())));
        let d = unsafe { Deferred::drop_box(ptr) };
        std::thread::spawn(move || d.call()).join().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn from_raw_passes_both_words() {
        unsafe fn record(data: *mut (), ctx: *mut ()) {
            let target = unsafe { &*(ctx as *const AtomicUsize) };
            target.store(data as usize, Ordering::Relaxed);
        }
        let target = AtomicUsize::new(0);
        let d = unsafe {
            Deferred::from_raw(0xBEE8 as *mut (), &target as *const _ as *mut (), record)
        };
        assert_eq!(d.address(), 0xBEE8);
        d.call();
        assert_eq!(target.load(Ordering::Relaxed), 0xBEE8);
    }
}
