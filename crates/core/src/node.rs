//! Tree nodes.
//!
//! §3.2: "A tree node in our algorithm consists of three fields: key,
//! left and right." We add a value slot (`None` in routing/internal
//! nodes) so the same node type backs both the set and the map front
//! ends, at zero size cost for sets (`V = ()`).
//!
//! The tree is *external*: user keys live only in leaves; internal nodes
//! route. A node is a leaf iff its child edges are null; internal nodes
//! always have exactly two children.

use crate::key::Key;
use crate::packed::{AtomicEdge, Edge};
use crate::pool::NodeCache;
use crate::stats;

/// A tree node. Never exposed to users; alignment ≥ 8 guarantees the two
/// low address bits used as edge marks are zero.
///
/// `repr(C)` pins the declaration order so `left` and `right` are
/// adjacent words: [`child`](Self::child) indexes between them with a
/// pointer `add` instead of a conditional select (see the `offset_of`
/// assertions in the tests).
#[repr(C, align(8))]
pub(crate) struct Node<K, V> {
    pub(crate) key: Key<K>,
    /// `Some` only in leaves created by `insert`; sentinel leaves and
    /// internal nodes carry `None`.
    pub(crate) value: Option<V>,
    pub(crate) left: AtomicEdge<Node<K, V>>,
    pub(crate) right: AtomicEdge<Node<K, V>>,
}

// SAFETY: nodes move between threads via the tree's synchronization
// (publication by CAS, retirement to the reclaimer); the raw child words
// carry no ownership that would make this unsound beyond what `K`/`V`
// themselves require.
unsafe impl<K: Send, V: Send> Send for Node<K, V> {}
unsafe impl<K: Sync, V: Sync> Sync for Node<K, V> {}

impl<K, V> Node<K, V> {
    /// Heap-allocates a leaf node. Counted as one object allocation.
    pub(crate) fn new_leaf(key: Key<K>, value: Option<V>) -> *mut Node<K, V> {
        stats::record_alloc();
        Box::into_raw(Box::new(Node {
            key,
            value,
            left: AtomicEdge::null(),
            right: AtomicEdge::null(),
        }))
    }

    /// Heap-allocates an internal (routing) node with unmarked edges to
    /// the given children. Counted as one object allocation.
    pub(crate) fn new_internal(
        key: Key<K>,
        left: *mut Node<K, V>,
        right: *mut Node<K, V>,
    ) -> *mut Node<K, V> {
        stats::record_alloc();
        Box::into_raw(Box::new(Node {
            key,
            value: None,
            left: AtomicEdge::to(left),
            right: AtomicEdge::to(right),
        }))
    }

    /// [`new_leaf`](Self::new_leaf) through a [`NodeCache`]: serves from
    /// recycled pool memory when the tree has a pool, otherwise falls
    /// through to the allocator. This is the insert path's constructor.
    pub(crate) fn new_leaf_in(
        cache: &mut NodeCache<'_>,
        key: Key<K>,
        value: Option<V>,
    ) -> *mut Node<K, V> {
        cache.alloc(Node {
            key,
            value,
            left: AtomicEdge::null(),
            right: AtomicEdge::null(),
        })
    }

    /// [`new_internal`](Self::new_internal) through a [`NodeCache`].
    pub(crate) fn new_internal_in(
        cache: &mut NodeCache<'_>,
        key: Key<K>,
        left: *mut Node<K, V>,
        right: *mut Node<K, V>,
    ) -> *mut Node<K, V> {
        cache.alloc(Node {
            key,
            value: None,
            left: AtomicEdge::to(left),
            right: AtomicEdge::to(right),
        })
    }

    /// `true` if this node is a leaf (null children).
    ///
    /// The load is deliberately `Relaxed`, and this is the **only** place
    /// in the tree where a relaxed edge load is sound. §3.3: "an internal
    /// node always stays an internal node and a leaf node always stays a
    /// leaf node" — null-ness of the child word is decided at allocation
    /// and preserved by every subsequent write (marks and splices swap
    /// targets among non-null nodes; nothing ever stores null into an
    /// internal node or a pointer into a leaf). The word's initial value
    /// was made visible by the Acquire load that produced `self`'s
    /// address (publication goes through a releasing CAS), so whichever
    /// write this load observes, its null-ness agrees with every other.
    /// The pointer itself is *not* derefenceable on the strength of this
    /// load — callers needing the child go through [`AtomicEdge::load`],
    /// whose Acquire pairs with the publishing CAS. Everywhere else a
    /// stale-but-typed value is not enough: seeks and CAS expectations
    /// consume the target address, so they keep their Acquire fences.
    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.left.load_relaxed().ptr().is_null()
    }

    /// The child edge at boolean index `go_right`, selected branchlessly:
    /// `repr(C)` makes `right` the word after `left`, so the select is a
    /// pointer `add` of the compare's result instead of a data-dependent
    /// branch the predictor gets wrong half the time on random descents.
    #[inline(always)]
    pub(crate) fn child(&self, go_right: bool) -> &AtomicEdge<Node<K, V>> {
        debug_assert!(std::ptr::eq(
            // SAFETY: in-bounds by the layout assertion below.
            unsafe { (&raw const self.left).add(1) },
            &raw const self.right,
        ));
        // SAFETY: `repr(C)` lays `right` immediately after `left` (two
        // identically-typed, identically-aligned fields — no padding
        // between them), so `(&left).add(go_right as usize)` is in
        // bounds of `self` and points at `left` or `right`.
        unsafe { &*(&raw const self.left).add(go_right as usize) }
    }

    /// The child edge a search for `user_key` follows from this node
    /// (left iff `user_key < self.key`).
    #[inline]
    pub(crate) fn child_for(&self, user_key: &K) -> &AtomicEdge<Node<K, V>>
    where
        K: Ord,
    {
        self.child(!self.key.user_goes_left(user_key))
    }

    /// [`child_for`](Self::child_for) with the sentinel dispatch hoisted
    /// out: routes via `Key::user_goes_left_fin`, a plain `K: Ord`
    /// compare. Semantically identical for every node (sentinels route
    /// left either way) — use it in descent loops that run below the
    /// sentinel levels, where the routing key is always finite.
    #[inline(always)]
    pub(crate) fn child_for_fin(&self, user_key: &K) -> &AtomicEdge<Node<K, V>>
    where
        K: Ord,
    {
        self.child(!self.key.user_goes_left_fin(user_key))
    }

    /// Both child edges ordered as (followed, sibling) for `user_key`.
    #[inline]
    pub(crate) fn child_and_sibling_for(&self, user_key: &K) -> EdgePair<'_, K, V>
    where
        K: Ord,
    {
        if self.key.user_goes_left(user_key) {
            (&self.left, &self.right)
        } else {
            (&self.right, &self.left)
        }
    }
}

/// A node's two child edges, ordered (followed, sibling) for some key.
pub(crate) type EdgePair<'a, K, V> = (&'a AtomicEdge<Node<K, V>>, &'a AtomicEdge<Node<K, V>>);

/// The two permanent sentinel internal nodes (Figure 3) plus the three
/// sentinel leaves of an empty tree.
///
/// ```text
///        R (∞₂)
///       /      \
///    S (∞₁)    leaf ∞₂
///    /     \
/// leaf ∞₀  leaf ∞₁
/// ```
///
/// `R` and `S` are never removed and none of their outgoing edges is
/// ever marked, so the seek record's four pointers are always defined.
pub(crate) fn sentinel_tree<K, V>() -> *mut Node<K, V> {
    let leaf0 = Node::new_leaf(Key::Inf0, None);
    let leaf1 = Node::new_leaf(Key::Inf1, None);
    let leaf2 = Node::new_leaf(Key::Inf2, None);
    let s = Node::new_internal(Key::Inf1, leaf0, leaf1);
    Node::new_internal(Key::Inf2, s, leaf2)
}

/// Frees an entire subtree. Iterative (explicit stack): a degenerate
/// tree built by sorted inserts is a linked list, and recursion would
/// overflow on large ones.
///
/// # Safety
///
/// Caller must have exclusive access to the subtree and every node in it
/// must be a live `Box` allocation not owned elsewhere (in particular,
/// not also pending in a reclaimer bag — retired nodes are unreachable
/// from the root, so walking from the root never sees them).
pub(crate) unsafe fn free_subtree<K, V>(root: *mut Node<K, V>) {
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if node.is_null() {
            continue;
        }
        // SAFETY: per the function contract the node is uniquely owned.
        let mut boxed = unsafe { Box::from_raw(node) };
        stack.push(boxed.left.load_mut().ptr());
        stack.push(boxed.right.load_mut().ptr());
        // `boxed` drops here, freeing key and value.
    }
}

/// An `Edge` pointing at `node`, unmarked. Convenience for expected
/// CAS values.
#[inline]
pub(crate) fn clean_edge<K, V>(node: *mut Node<K, V>) -> Edge<Node<K, V>> {
    Edge::clean(node)
}

/// Best-effort prefetch of the cache line holding `node`'s header (key
/// discriminant + child edge words). Used by the descent loops to start
/// the next node's fetch while the current node's key is compared; a
/// pure hint — no-op on architectures without a prefetch intrinsic, and
/// safe on any address (prefetch never faults).
#[inline(always)]
pub(crate) fn prefetch<K, V>(node: *const Node<K, V>) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no access and never
    // faults, whatever the address.
    unsafe {
        core::arch::x86_64::_mm_prefetch(node.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = node;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_alignment_leaves_mark_bits_free() {
        assert!(std::mem::align_of::<Node<u64, ()>>() >= 8);
        assert!(std::mem::align_of::<Node<u8, u8>>() >= 8);
    }

    #[test]
    fn child_edges_are_adjacent_words() {
        // The layout contract behind `Node::child`'s branchless select.
        use std::mem::{offset_of, size_of};
        fn check<K: 'static, V: 'static>() {
            assert_eq!(
                offset_of!(Node<K, V>, right),
                offset_of!(Node<K, V>, left) + size_of::<AtomicEdge<Node<K, V>>>(),
            );
        }
        check::<u64, ()>();
        check::<u8, u8>();
        check::<String, Vec<u64>>();
        check::<i64, Box<[u8; 3]>>();
    }

    #[test]
    fn leaf_and_internal_classification() {
        let leaf = Node::<i64, ()>::new_leaf(Key::Fin(5), Some(()));
        let leaf2 = Node::<i64, ()>::new_leaf(Key::Fin(9), Some(()));
        let internal = Node::new_internal(Key::Fin(9), leaf, leaf2);
        unsafe {
            assert!((*leaf).is_leaf());
            assert!(!(*internal).is_leaf());
            free_subtree(internal);
        }
    }

    #[test]
    fn child_routing() {
        let l = Node::<i64, ()>::new_leaf(Key::Fin(1), None);
        let r = Node::<i64, ()>::new_leaf(Key::Fin(10), None);
        let n = Node::new_internal(Key::Fin(10), l, r);
        unsafe {
            assert_eq!((*n).child_for(&3).load().ptr(), l);
            assert_eq!((*n).child_for(&10).load().ptr(), r); // equal goes right
            assert_eq!((*n).child_for(&42).load().ptr(), r);
            let (c, s) = (*n).child_and_sibling_for(&3);
            assert_eq!(c.load().ptr(), l);
            assert_eq!(s.load().ptr(), r);
            free_subtree(n);
        }
    }

    #[test]
    fn sentinel_tree_shape() {
        let root: *mut Node<i64, ()> = sentinel_tree();
        unsafe {
            assert_eq!((*root).key, Key::Inf2);
            let s = (*root).left.load().ptr();
            let r_leaf = (*root).right.load().ptr();
            assert_eq!((*s).key, Key::Inf1);
            assert_eq!((*r_leaf).key, Key::Inf2);
            assert!((*r_leaf).is_leaf());
            let l0 = (*s).left.load().ptr();
            let l1 = (*s).right.load().ptr();
            assert_eq!((*l0).key, Key::Inf0);
            assert_eq!((*l1).key, Key::Inf1);
            assert!((*l0).is_leaf() && (*l1).is_leaf());
            free_subtree(root);
        }
    }

    #[test]
    fn free_subtree_runs_destructors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let a = Node::<i64, D>::new_leaf(Key::Fin(1), Some(D(Arc::clone(&drops))));
        let b = Node::<i64, D>::new_leaf(Key::Fin(2), Some(D(Arc::clone(&drops))));
        let n = Node::new_internal(Key::Fin(2), a, b);
        unsafe { free_subtree(n) };
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn free_subtree_handles_degenerate_depth() {
        // A left-spine of 100k internal nodes must not overflow the stack.
        let mut node = Node::<u64, ()>::new_leaf(Key::Fin(0), None);
        for i in 1..100_000u64 {
            let leaf = Node::new_leaf(Key::Fin(i), None);
            node = Node::new_internal(Key::Fin(i), node, leaf);
        }
        unsafe { free_subtree(node) };
    }
}
