//! Tree nodes: arena-slab allocated, with cache-line *fat leaves*.
//!
//! §3.2: "A tree node in our algorithm consists of three fields: key,
//! left and right." Two PR 7 deviations, both leaf-local:
//!
//! * **Arena storage.** Nodes live in the tree's [`NodePool`] slab and
//!   are addressed by `u32` slot indices; the node records its own slot
//!   in [`Node::idx`] so an edge to it can be formed without consulting
//!   the arena. Nothing is ever `Box`ed.
//! * **Leaf blocks.** A user leaf carries up to [`LEAF_CAP`] sorted
//!   key/value pairs instead of one. The block is immutable after
//!   publication: insert/remove copy-on-write a fresh block and swing
//!   the parent edge with the same single CAS the 1-key design used, so
//!   the synchronization contract is unchanged (DESIGN.md §14). The
//!   node's routing `key` is the block's *maximum* entry (`Fin(max)`),
//!   which keeps the external-tree routing invariant ("left subtree
//!   < router ≤ ... ") intact: every entry of the block is ≤ the router
//!   and > every router on the left-turn path above it.
//!
//! The tree is *external*: user keys live only in leaves; internal nodes
//! route (`len == 0`). A node is a leaf iff its child edges are null;
//! internal nodes always have exactly two children.

use crate::key::Key;
use crate::packed::{AtomicEdge, Edge};
use crate::pool::NodeCache;
use nmbst_reclaim::NodePool;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Maximum entries per leaf block: one cache line of u64 keys. The
/// per-tree runtime knob (`TreeConfig::leaf_cap`) can only lower this.
pub const LEAF_CAP: usize = 8;

/// Drop hint: the retired node's entries all moved into a replacement
/// block — reclamation must drop **none** of them.
pub(crate) const HINT_NONE: u8 = 0xFF;
/// Drop hint: the retired node still owns **all** its entries (chain
/// victims, unreachable subtrees). This is the state every node is
/// allocated in.
pub(crate) const HINT_ALL: u8 = 0xFE;

/// A tree node. Never exposed to users; alignment ≥ 8 keeps edge words
/// naturally aligned (marks live in the low bits of the *index*, not the
/// address, so alignment is a layout nicety rather than a correctness
/// requirement since PR 7).
///
/// `repr(C)` pins the declaration order so `left` and `right` are
/// adjacent words: [`child`](Self::child) indexes between them with a
/// pointer `add` instead of a conditional select (see the `offset_of`
/// assertions in the tests). The whole routing header (both edges, slot
/// index, length, routing key discriminant) shares the node's first
/// cache line; the entry arrays trail it.
#[repr(C, align(8))]
pub(crate) struct Node<K, V> {
    pub(crate) left: AtomicEdge<Node<K, V>>,
    pub(crate) right: AtomicEdge<Node<K, V>>,
    /// This node's own arena slot, written once at allocation. Lets
    /// [`clean_edge`] form an edge word without an arena lookup and lets
    /// retirement release the slot without carrying the index separately.
    pub(crate) idx: u32,
    /// Live entries in the block: `0` for internal nodes and sentinel
    /// leaves, `1..=LEAF_CAP` for user leaves. Immutable after
    /// publication (blocks are copy-on-write).
    len: u8,
    /// Which entries reclamation must drop, written (release-free, the
    /// retire edge itself orders it) by the retiring operation *before*
    /// the node is handed to the reclaimer: [`HINT_ALL`] (default),
    /// [`HINT_NONE`] (entries moved to a replacement block), or an entry
    /// position (single entry logically deleted by a COW remove).
    drop_hint: AtomicU8,
    /// The routing key. For a user leaf this is `Fin(max entry)`; for
    /// sentinels one of the infinities.
    pub(crate) key: Key<K>,
    keys: [MaybeUninit<K>; LEAF_CAP],
    vals: [MaybeUninit<V>; LEAF_CAP],
}

// SAFETY: nodes move between threads via the tree's synchronization
// (publication by CAS, retirement to the reclaimer); the raw child words
// carry no ownership that would make this unsound beyond what `K`/`V`
// themselves require.
unsafe impl<K: Send, V: Send> Send for Node<K, V> {}
unsafe impl<K: Sync, V: Sync> Sync for Node<K, V> {}

impl<K, V> Node<K, V> {
    /// Carves a fresh node out of the cache and writes its header; the
    /// entry arrays stay uninitialized (`len` of them are the caller's to
    /// fill immediately).
    fn alloc_shell(
        cache: &mut NodeCache<'_>,
        key: Key<K>,
        left: Edge<Node<K, V>>,
        right: Edge<Node<K, V>>,
        len: usize,
    ) -> *mut Node<K, V> {
        debug_assert!(len <= LEAF_CAP);
        let (idx, raw) = cache.alloc_raw::<Node<K, V>>();
        let node = raw.cast::<Node<K, V>>();
        // SAFETY: `alloc_raw` returned an exclusive, well-aligned slot of
        // exactly this layout.
        unsafe {
            node.write(Node {
                left: AtomicEdge::to(left),
                right: AtomicEdge::to(right),
                idx,
                len: len as u8,
                drop_hint: AtomicU8::new(HINT_ALL),
                key,
                keys: [const { MaybeUninit::uninit() }; LEAF_CAP],
                vals: [const { MaybeUninit::uninit() }; LEAF_CAP],
            });
        }
        node
    }

    /// Allocates a sentinel (or otherwise empty) leaf: null children, no
    /// entries.
    pub(crate) fn new_leaf_in(cache: &mut NodeCache<'_>, key: Key<K>) -> *mut Node<K, V> {
        Self::alloc_shell(cache, key, Edge::null(), Edge::null(), 0)
    }

    /// Allocates a 1-entry user leaf block. The routing key is the
    /// entry's key (a 1-entry block's max is its only entry).
    pub(crate) fn new_user_leaf_in(cache: &mut NodeCache<'_>, key: K, value: V) -> *mut Node<K, V>
    where
        K: Clone,
    {
        let node = Self::alloc_shell(cache, Key::Fin(key.clone()), Edge::null(), Edge::null(), 1);
        // SAFETY: fresh exclusive shell; slot 0 is within LEAF_CAP.
        unsafe {
            Self::key_slot(node, 0).write(key);
            Self::val_slot(node, 0).write(value);
        }
        node
    }

    /// Allocates an internal (routing) node with unmarked edges to the
    /// given children.
    pub(crate) fn new_internal_in(
        cache: &mut NodeCache<'_>,
        key: Key<K>,
        left: *mut Node<K, V>,
        right: *mut Node<K, V>,
    ) -> *mut Node<K, V> {
        Self::alloc_shell(cache, key, clean_edge(left), clean_edge(right), 0)
    }

    /// Number of live entries: `0` for internal nodes and sentinel
    /// leaves.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    /// The block's keys, sorted ascending. Empty for internal nodes and
    /// sentinel leaves.
    #[inline]
    pub(crate) fn entry_keys(&self) -> &[K] {
        // SAFETY: the first `len` array elements are initialized by
        // construction and immutable after publication.
        unsafe { std::slice::from_raw_parts(self.keys.as_ptr().cast::<K>(), self.len()) }
    }

    /// The block's values, parallel to [`entry_keys`](Self::entry_keys).
    #[inline]
    pub(crate) fn entry_vals(&self) -> &[V] {
        // SAFETY: as `entry_keys`.
        unsafe { std::slice::from_raw_parts(self.vals.as_ptr().cast::<V>(), self.len()) }
    }

    /// Position of `key` in the block (`Ok`) or the sorted insertion
    /// point (`Err`). A chunked branchless rank scan: the block is at
    /// most one cache line of keys, and counting `k < key` outcomes
    /// compiles to compare/accumulate with no data-dependent branch — a
    /// random probe into a sorted block mispredicts an early-exit scan
    /// (and a binary search) on nearly every entry, which measured
    /// slower than unconditionally touching all `len ≤ 8` keys.
    ///
    /// The scan walks half-`LEAF_CAP` chunks with four independent
    /// accumulators (SIMD-shaped: the compiler is free to vectorize the
    /// compares, and on scalar targets the four chains issue in
    /// parallel instead of serializing on one `pos`). It cannot touch
    /// the full fixed-size array unconditionally: only the first
    /// `len` slots are initialized, and reading a `MaybeUninit` tail is
    /// UB for a general `K` — so the tail (< 4 keys) falls through to
    /// the scalar accumulate. Attribution: the `leaf_ablation` perf
    /// cell (fat leaves vs. `leaf_cap = 1`) gates this path.
    #[inline]
    pub(crate) fn find(&self, key: &K) -> Result<usize, usize>
    where
        K: Ord,
    {
        let keys = self.entry_keys();
        let mut chunks = keys.chunks_exact(4);
        let mut pos = 0usize;
        for c in chunks.by_ref() {
            let r = usize::from(c[0] < *key)
                + usize::from(c[1] < *key)
                + usize::from(c[2] < *key)
                + usize::from(c[3] < *key);
            pos += r;
        }
        for k in chunks.remainder() {
            pos += usize::from(k < key);
        }
        match keys.get(pos) {
            Some(k) if k == key => Ok(pos),
            _ => Err(pos),
        }
    }

    /// Records which entries reclamation must drop when this (retired)
    /// node's grace period ends. Relaxed: the retire hand-off itself
    /// orders the write against the deferral that reads it.
    #[inline]
    pub(crate) fn set_drop_hint(&self, hint: u8) {
        self.drop_hint.store(hint, Ordering::Relaxed);
    }

    #[inline]
    unsafe fn key_slot(node: *mut Self, i: usize) -> *mut K {
        // SAFETY (of the projection): caller keeps `i < LEAF_CAP`.
        unsafe { (&raw mut (*node).keys).cast::<K>().add(i) }
    }

    #[inline]
    unsafe fn val_slot(node: *mut Self, i: usize) -> *mut V {
        // SAFETY: as `key_slot`.
        unsafe { (&raw mut (*node).vals).cast::<V>().add(i) }
    }

    /// Copy-on-write: a fresh leaf block = `old` with `(key, value)`
    /// inserted at sorted position `pos`. Requires `old.len() < LEAF_CAP`.
    ///
    /// The copied entries are **bitwise duplicates**: until the publish
    /// CAS settles, both blocks alias the same logical entries. On CAS
    /// success the caller marks `old` with [`HINT_NONE`] (the entries now
    /// belong to the new block) and retires it; on failure the caller
    /// recovers `(key, value)` with [`take_entry`] and frees the new
    /// block as a shell ([`NodeCache::free_shell`]), leaving every copied
    /// entry owned by `old`.
    ///
    /// # Safety
    ///
    /// `pos` must be the `Err` position of `old.find(&key)` and the block
    /// must not be full.
    pub(crate) unsafe fn block_insert_copy(
        cache: &mut NodeCache<'_>,
        old: &Node<K, V>,
        pos: usize,
        key: K,
        value: V,
    ) -> *mut Node<K, V>
    where
        K: Clone,
    {
        let n = old.len();
        debug_assert!(n < LEAF_CAP && pos <= n);
        let router = Key::Fin(if pos == n {
            key.clone()
        } else {
            old.entry_keys()[n - 1].clone()
        });
        let node = Self::alloc_shell(cache, router, Edge::null(), Edge::null(), n + 1);
        // SAFETY: fresh exclusive shell; source ranges are initialized
        // prefixes of `old`; destination indices stay below `n + 1`.
        unsafe {
            let src_k = old.keys.as_ptr().cast::<K>();
            let src_v = old.vals.as_ptr().cast::<V>();
            ptr::copy_nonoverlapping(src_k, Self::key_slot(node, 0), pos);
            ptr::copy_nonoverlapping(src_v, Self::val_slot(node, 0), pos);
            Self::key_slot(node, pos).write(key);
            Self::val_slot(node, pos).write(value);
            ptr::copy_nonoverlapping(src_k.add(pos), Self::key_slot(node, pos + 1), n - pos);
            ptr::copy_nonoverlapping(src_v.add(pos), Self::val_slot(node, pos + 1), n - pos);
        }
        node
    }

    /// Copy-on-write: a fresh leaf block = `old` minus the entry at
    /// `pos`. Requires `old.len() >= 2` (a 1-entry block is removed by
    /// the classic flag/tag/splice protocol instead).
    ///
    /// Ownership works as in [`block_insert_copy`]: on CAS success the
    /// caller sets `old`'s drop hint to `pos as u8` (the one entry that
    /// did *not* move) and retires it; on failure the new block is freed
    /// as a shell.
    ///
    /// # Safety
    ///
    /// `pos < old.len()` and `old.len() >= 2`.
    pub(crate) unsafe fn block_remove_copy(
        cache: &mut NodeCache<'_>,
        old: &Node<K, V>,
        pos: usize,
    ) -> *mut Node<K, V>
    where
        K: Clone,
    {
        let n = old.len();
        debug_assert!(n >= 2 && pos < n);
        let keys = old.entry_keys();
        let router = Key::Fin(keys[if pos == n - 1 { n - 2 } else { n - 1 }].clone());
        let node = Self::alloc_shell(cache, router, Edge::null(), Edge::null(), n - 1);
        // SAFETY: as `block_insert_copy`.
        unsafe {
            let src_k = old.keys.as_ptr().cast::<K>();
            let src_v = old.vals.as_ptr().cast::<V>();
            ptr::copy_nonoverlapping(src_k, Self::key_slot(node, 0), pos);
            ptr::copy_nonoverlapping(src_v, Self::val_slot(node, 0), pos);
            ptr::copy_nonoverlapping(src_k.add(pos + 1), Self::key_slot(node, pos), n - 1 - pos);
            ptr::copy_nonoverlapping(src_v.add(pos + 1), Self::val_slot(node, pos), n - 1 - pos);
        }
        node
    }

    /// Splits a full block around an insertion: builds two fresh blocks
    /// holding `old`'s entries plus `(key, value)` (left-biased halves)
    /// under a fresh internal router, returning `(internal, holder,
    /// hpos)` where `holder`/`hpos` locate the *new* entry so a failed
    /// publish can recover it.
    ///
    /// Ownership: all of `old`'s entries are bitwise-moved into the
    /// halves — on CAS success retire `old` with [`HINT_NONE`]; on
    /// failure [`take_entry`]`(holder, hpos)` then free all three nodes
    /// as shells.
    ///
    /// # Safety
    ///
    /// `old.len() == cap` (full at the tree's runtime cap), `pos` the
    /// `Err` position of `old.find(&key)`, and `0 < pos < old.len()`
    /// (boundary inserts take the cheaper two-node path in `write.rs`).
    pub(crate) unsafe fn block_split_insert(
        cache: &mut NodeCache<'_>,
        old: &Node<K, V>,
        pos: usize,
        key: K,
        value: V,
    ) -> (*mut Node<K, V>, *mut Node<K, V>, usize)
    where
        K: Clone,
    {
        let n = old.len();
        let total = n + 1;
        let left_n = total.div_ceil(2);
        debug_assert!(pos > 0 && pos < n);
        let old_keys = old.entry_keys();
        // Key of merged position `m` (old entries with `key` at `pos`).
        let merged_key = |m: usize| -> &K {
            if m == pos {
                &key
            } else if m < pos {
                &old_keys[m]
            } else {
                &old_keys[m - 1]
            }
        };
        let left = Self::alloc_shell(
            cache,
            Key::Fin(merged_key(left_n - 1).clone()),
            Edge::null(),
            Edge::null(),
            left_n,
        );
        let right = Self::alloc_shell(
            cache,
            Key::Fin(merged_key(total - 1).clone()),
            Edge::null(),
            Edge::null(),
            total - left_n,
        );
        let internal =
            Self::new_internal_in(cache, Key::Fin(merged_key(left_n).clone()), left, right);
        let key = MaybeUninit::new(key);
        let value = MaybeUninit::new(value);
        // SAFETY: each merged position is written to exactly one fresh
        // slot; `key`/`value` are read exactly once (pos appears once).
        unsafe {
            let src_k = old.keys.as_ptr().cast::<K>();
            let src_v = old.vals.as_ptr().cast::<V>();
            let write = |dst: *mut Node<K, V>, j: usize, m: usize| {
                if m == pos {
                    Self::key_slot(dst, j).write(key.as_ptr().read());
                    Self::val_slot(dst, j).write(value.as_ptr().read());
                } else {
                    let s = if m < pos { m } else { m - 1 };
                    Self::key_slot(dst, j).write(src_k.add(s).read());
                    Self::val_slot(dst, j).write(src_v.add(s).read());
                }
            };
            for m in 0..left_n {
                write(left, m, m);
            }
            for m in left_n..total {
                write(right, m - left_n, m);
            }
        }
        let (holder, hpos) = if pos < left_n {
            (left, pos)
        } else {
            (right, pos - left_n)
        };
        (internal, holder, hpos)
    }

    /// Builds a leaf block from the next `n` pairs of `it`, which must be
    /// key-ascending and unique (the bulk loader's contract). The routing
    /// key becomes the block's last (largest) entry.
    pub(crate) fn block_from_iter<I: Iterator<Item = (K, V)>>(
        cache: &mut NodeCache<'_>,
        it: &mut I,
        n: usize,
    ) -> *mut Node<K, V>
    where
        K: Clone,
    {
        debug_assert!((1..=LEAF_CAP).contains(&n));
        // The router is known only after the entries are drawn; park a
        // placeholder and overwrite it below.
        let node = Self::alloc_shell(cache, Key::Inf0, Edge::null(), Edge::null(), n);
        // SAFETY: fresh exclusive shell; each of the `n` declared slots
        // is written exactly once before any read.
        unsafe {
            for i in 0..n {
                let (k, v) = it.next().expect("n pairs remain");
                Self::key_slot(node, i).write(k);
                Self::val_slot(node, i).write(v);
            }
            (*node).key = Key::Fin((*node).entry_keys()[n - 1].clone());
        }
        node
    }

    /// Moves the entry at `pos` out of an **unpublished** block (a CAS
    /// loser being dismantled). The block must then be freed as a shell —
    /// its `len` still counts the moved entry.
    ///
    /// # Safety
    ///
    /// Exclusive access, `pos < len`, entry initialized and not already
    /// taken.
    pub(crate) unsafe fn take_entry(node: *mut Node<K, V>, pos: usize) -> (K, V) {
        // SAFETY: per contract.
        unsafe {
            (
                Self::key_slot(node, pos).read(),
                Self::val_slot(node, pos).read(),
            )
        }
    }

    /// `true` if this node is a leaf (null children).
    ///
    /// The load is deliberately `Relaxed`, and this is the **only** place
    /// in the tree where a relaxed edge load is sound. §3.3: "an internal
    /// node always stays an internal node and a leaf node always stays a
    /// leaf node" — null-ness of the child word is decided at allocation
    /// and preserved by every subsequent write (marks and splices swap
    /// targets among non-null slots; nothing ever stores the null index
    /// into an internal node or a slot index into a leaf). The word's
    /// initial value was made visible by the Acquire load that produced
    /// `self`'s address (publication goes through a releasing CAS), so
    /// whichever write this load observes, its null-ness agrees with
    /// every other. The index is *not* resolvable on the strength of this
    /// load — callers needing the child go through [`AtomicEdge::load`],
    /// whose Acquire pairs with the publishing CAS.
    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.left.is_null_relaxed()
    }

    /// The child edge at boolean index `go_right`, selected branchlessly:
    /// `repr(C)` makes `right` the word after `left`, so the select is a
    /// pointer `add` of the compare's result instead of a data-dependent
    /// branch the predictor gets wrong half the time on random descents.
    #[inline(always)]
    pub(crate) fn child(&self, go_right: bool) -> &AtomicEdge<Node<K, V>> {
        debug_assert!(std::ptr::eq(
            // SAFETY: in-bounds by the layout assertion below.
            unsafe { (&raw const self.left).add(1) },
            &raw const self.right,
        ));
        // SAFETY: `repr(C)` lays `right` immediately after `left` (two
        // identically-typed, identically-aligned fields — no padding
        // between them), so `(&left).add(go_right as usize)` is in
        // bounds of `self` and points at `left` or `right`.
        unsafe { &*(&raw const self.left).add(go_right as usize) }
    }

    /// The child edge a search for `user_key` follows from this node
    /// (left iff `user_key < self.key`).
    #[inline]
    pub(crate) fn child_for(&self, user_key: &K) -> &AtomicEdge<Node<K, V>>
    where
        K: Ord,
    {
        self.child(!self.key.user_goes_left(user_key))
    }

    /// [`child_for`](Self::child_for) with the sentinel dispatch hoisted
    /// out: routes via `Key::user_goes_left_fin`, a plain `K: Ord`
    /// compare. Semantically identical for every node (sentinels route
    /// left either way) — use it in descent loops that run below the
    /// sentinel levels, where the routing key is always finite.
    #[inline(always)]
    pub(crate) fn child_for_fin(&self, user_key: &K) -> &AtomicEdge<Node<K, V>>
    where
        K: Ord,
    {
        self.child(!self.key.user_goes_left_fin(user_key))
    }

    /// Both child edges ordered as (followed, sibling) for `user_key`.
    #[inline]
    pub(crate) fn child_and_sibling_for(&self, user_key: &K) -> EdgePair<'_, K, V>
    where
        K: Ord,
    {
        if self.key.user_goes_left(user_key) {
            (&self.left, &self.right)
        } else {
            (&self.right, &self.left)
        }
    }
}

/// A node's two child edges, ordered (followed, sibling) for some key.
pub(crate) type EdgePair<'a, K, V> = (&'a AtomicEdge<Node<K, V>>, &'a AtomicEdge<Node<K, V>>);

/// Drops the contents of a node leaving the tree for good: the entries
/// its drop hint says it still owns, then the routing key. The slot
/// memory itself stays valid (caller releases or abandons it).
///
/// # Safety
///
/// Exclusive access (the node's grace period has ended, or it was never
/// published); contents not already dropped.
pub(crate) unsafe fn drop_retired_contents<K, V>(node: *mut Node<K, V>) {
    // SAFETY: exclusive per contract.
    unsafe {
        let n = &mut *node;
        match n.drop_hint.load(Ordering::Relaxed) {
            HINT_NONE => {}
            HINT_ALL => {
                for i in 0..n.len() {
                    ptr::drop_in_place(Node::key_slot(node, i));
                    ptr::drop_in_place(Node::val_slot(node, i));
                }
            }
            pos => {
                debug_assert!((pos as usize) < n.len());
                ptr::drop_in_place(Node::key_slot(node, pos as usize));
                ptr::drop_in_place(Node::val_slot(node, pos as usize));
            }
        }
        ptr::drop_in_place(&mut n.key);
    }
}

/// The two permanent sentinel internal nodes (Figure 3) plus the three
/// sentinel leaves of an empty tree.
///
/// ```text
///        R (∞₂)
///       /      \
///    S (∞₁)    leaf ∞₂
///    /     \
/// leaf ∞₀  leaf ∞₁
/// ```
///
/// `R` and `S` are never removed and none of their outgoing edges is
/// ever marked, so the seek record's four pointers are always defined.
pub(crate) fn sentinel_tree<K, V>(cache: &mut NodeCache<'_>) -> *mut Node<K, V> {
    let leaf0 = Node::new_leaf_in(cache, Key::Inf0);
    let leaf1 = Node::new_leaf_in(cache, Key::Inf1);
    let leaf2 = Node::new_leaf_in(cache, Key::Inf2);
    let s = Node::new_internal_in(cache, Key::Inf1, leaf0, leaf1);
    Node::new_internal_in(cache, Key::Inf2, s, leaf2)
}

/// Frees an entire subtree back to the arena: drops every node's owned
/// entries and routing key, then releases its slot. Iterative (explicit
/// stack): a degenerate tree built by sorted inserts at `leaf_cap = 1`
/// is a linked list, and recursion would overflow on large ones.
///
/// # Safety
///
/// Caller must have exclusive access to the subtree, every node in it
/// must be a live slot of `arena` not owned elsewhere (in particular,
/// not also pending in a reclaimer bag — retired nodes are unreachable
/// from the root, so walking from the root never sees them), and every
/// reachable node owns all `len` of its entries.
pub(crate) unsafe fn free_subtree<K, V>(root: *mut Node<K, V>, arena: &NodePool) {
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if node.is_null() {
            continue;
        }
        // SAFETY: per the function contract the node is uniquely owned.
        unsafe {
            let n = &mut *node;
            stack.push(n.left.load_mut(arena).ptr());
            stack.push(n.right.load_mut(arena).ptr());
            let idx = n.idx;
            debug_assert_eq!(n.drop_hint.load(Ordering::Relaxed), HINT_ALL);
            drop_retired_contents(node);
            arena.release(idx);
        }
    }
}

/// An `Edge` pointing at `node`, unmarked, formed from the node's own
/// recorded slot index. Convenience for expected CAS values.
#[inline]
pub(crate) fn clean_edge<K, V>(node: *mut Node<K, V>) -> Edge<Node<K, V>> {
    if node.is_null() {
        Edge::null()
    } else {
        // SAFETY: callers hand in nodes they may dereference (guarded or
        // owned); `idx` is immutable after allocation.
        Edge::new(unsafe { (*node).idx }, node)
    }
}

/// Best-effort prefetch of one cache line. A pure hint — no-op on
/// architectures without a prefetch instruction, and safe on any address
/// (prefetch never faults).
#[inline(always)]
fn prefetch_line(addr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no access and never
    // faults, whatever the address.
    unsafe {
        core::arch::x86_64::_mm_prefetch(addr.cast::<i8>(), core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: `prfm` is a hint with no architectural side effects; the
    // stable intrinsic is not available, so emit the instruction
    // directly. Never faults, whatever the address.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) addr, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = addr;
}

/// Best-effort prefetch of `node`'s header line: children, routing key,
/// and (for small `K`) the head of the entry array. This is the
/// per-level descent hint — one line per hop, like the paper's
/// pointer-chasing loop wants; see `prefetch_wide` for the fat-block
/// variant.
#[inline(always)]
pub(crate) fn prefetch<K, V>(node: *const Node<K, V>) {
    prefetch_line(node.cast::<u8>());
}

/// Prefetch of `node`'s header line *and* the line after it, which for a
/// fat leaf holds the entry keys a block scan is about to compare.
/// Issued where the caller *knows* it is about to scan the block (range
/// scans, batch anchors) — in the point-op descent loops the doubled
/// hint measured as a net loss: two prefetches per level feed the load
/// ports ~40 extra hints per descent to save one line fetch at the end.
#[inline(always)]
pub(crate) fn prefetch_wide<K, V>(node: *const Node<K, V>) {
    let addr = node.cast::<u8>();
    prefetch_line(addr);
    prefetch_line(addr.wrapping_add(64));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::NodeCache;
    use std::alloc::Layout;

    fn arena_for<K, V>(capacity: usize) -> NodePool {
        NodePool::new(Layout::new::<Node<K, V>>(), capacity)
    }

    #[test]
    fn node_alignment_leaves_mark_bits_free() {
        assert!(std::mem::align_of::<Node<u64, ()>>() >= 8);
        assert!(std::mem::align_of::<Node<u8, u8>>() >= 8);
    }

    #[test]
    fn child_edges_are_adjacent_words() {
        // The layout contract behind `Node::child`'s branchless select.
        use std::mem::{offset_of, size_of};
        fn check<K: 'static, V: 'static>() {
            assert_eq!(
                offset_of!(Node<K, V>, right),
                offset_of!(Node<K, V>, left) + size_of::<AtomicEdge<Node<K, V>>>(),
            );
        }
        check::<u64, ()>();
        check::<u8, u8>();
        check::<String, Vec<u64>>();
        check::<i64, Box<[u8; 3]>>();
    }

    #[test]
    fn leaf_and_internal_classification() {
        let arena = arena_for::<i64, ()>(16);
        let mut cache = NodeCache::direct(&arena);
        let leaf = Node::<i64, ()>::new_user_leaf_in(&mut cache, 5, ());
        let leaf2 = Node::<i64, ()>::new_user_leaf_in(&mut cache, 9, ());
        let internal = Node::new_internal_in(&mut cache, Key::Fin(9), leaf, leaf2);
        unsafe {
            assert!((*leaf).is_leaf());
            assert!(!(*internal).is_leaf());
            assert_eq!((*leaf).len(), 1);
            assert_eq!((*internal).len(), 0);
            free_subtree(internal, &arena);
        }
    }

    #[test]
    fn child_routing() {
        let arena = arena_for::<i64, ()>(16);
        let mut cache = NodeCache::direct(&arena);
        let l = Node::<i64, ()>::new_user_leaf_in(&mut cache, 1, ());
        let r = Node::<i64, ()>::new_user_leaf_in(&mut cache, 10, ());
        let n = Node::new_internal_in(&mut cache, Key::Fin(10), l, r);
        unsafe {
            assert_eq!((*n).child_for(&3).load(&arena).ptr(), l);
            assert_eq!((*n).child_for(&10).load(&arena).ptr(), r); // equal goes right
            assert_eq!((*n).child_for(&42).load(&arena).ptr(), r);
            let (c, s) = (*n).child_and_sibling_for(&3);
            assert_eq!(c.load(&arena).ptr(), l);
            assert_eq!(s.load(&arena).ptr(), r);
            free_subtree(n, &arena);
        }
    }

    #[test]
    fn edges_round_trip_through_slot_indices() {
        let arena = arena_for::<i64, ()>(16);
        let mut cache = NodeCache::direct(&arena);
        let l = Node::<i64, ()>::new_user_leaf_in(&mut cache, 1, ());
        let e = clean_edge(l);
        unsafe {
            assert_eq!(e.idx(), (*l).idx);
            assert_eq!(e.ptr(), l);
            assert_eq!(arena.slot_ptr(e.idx()).cast::<Node<i64, ()>>(), l);
            drop_retired_contents(l);
            arena.release((*l).idx);
        }
    }

    #[test]
    fn sentinel_tree_shape() {
        let arena = arena_for::<i64, ()>(16);
        let mut cache = NodeCache::direct(&arena);
        let root: *mut Node<i64, ()> = sentinel_tree(&mut cache);
        unsafe {
            assert_eq!((*root).key, Key::Inf2);
            let s = (*root).left.load(&arena).ptr();
            let r_leaf = (*root).right.load(&arena).ptr();
            assert_eq!((*s).key, Key::Inf1);
            assert_eq!((*r_leaf).key, Key::Inf2);
            assert!((*r_leaf).is_leaf());
            assert_eq!((*r_leaf).len(), 0);
            let l0 = (*s).left.load(&arena).ptr();
            let l1 = (*s).right.load(&arena).ptr();
            assert_eq!((*l0).key, Key::Inf0);
            assert_eq!((*l1).key, Key::Inf1);
            assert!((*l0).is_leaf() && (*l1).is_leaf());
            free_subtree(root, &arena);
        }
    }

    #[test]
    fn block_find_and_accessors() {
        let arena = arena_for::<i64, i64>(16);
        let mut cache = NodeCache::direct(&arena);
        let mut leaf = Node::<i64, i64>::new_user_leaf_in(&mut cache, 10, 100);
        unsafe {
            for k in [30i64, 20, 40] {
                let pos = (*leaf).find(&k).unwrap_err();
                let next = Node::block_insert_copy(&mut cache, &*leaf, pos, k, k * 10);
                (*leaf).set_drop_hint(HINT_NONE);
                drop_retired_contents(leaf);
                cache.free_shell(leaf);
                leaf = next;
            }
            assert_eq!((*leaf).entry_keys(), &[10, 20, 30, 40]);
            assert_eq!((*leaf).entry_vals(), &[100, 200, 300, 400]);
            assert_eq!((*leaf).key, Key::Fin(40), "router is the block max");
            assert_eq!((*leaf).find(&30), Ok(2));
            assert_eq!((*leaf).find(&35), Err(3));
            assert_eq!((*leaf).find(&5), Err(0));
            assert_eq!((*leaf).find(&99), Err(4));
            drop_retired_contents(leaf); // HINT_ALL: drops all four entries
            cache.free_shell(leaf);
        }
    }

    #[test]
    fn block_remove_copy_keeps_router_at_max() {
        let arena = arena_for::<i64, ()>(16);
        let mut cache = NodeCache::direct(&arena);
        let a = Node::<i64, ()>::new_user_leaf_in(&mut cache, 1, ());
        unsafe {
            let b = Node::block_insert_copy(&mut cache, &*a, 1, 2, ());
            let c = Node::block_insert_copy(&mut cache, &*b, 2, 3, ());
            // Drop the middle entry: router stays Fin(3).
            let d = Node::block_remove_copy(&mut cache, &*c, 1);
            assert_eq!((*d).entry_keys(), &[1, 3]);
            assert_eq!((*d).key, Key::Fin(3));
            // Drop the max: router shrinks to the new max.
            let e = Node::block_remove_copy(&mut cache, &*d, 1);
            assert_eq!((*e).entry_keys(), &[1]);
            assert_eq!((*e).key, Key::Fin(1));
            for shell in [a, b, c, d] {
                (*shell).set_drop_hint(HINT_NONE);
                drop_retired_contents(shell);
                cache.free_shell(shell);
            }
            drop_retired_contents(e);
            cache.free_shell(e);
        }
    }

    #[test]
    fn split_insert_partitions_and_locates_new_entry() {
        let arena = arena_for::<i64, i64>(32);
        let mut cache = NodeCache::direct(&arena);
        // Build a full block 0,10,..,70.
        let mut leaf = Node::<i64, i64>::new_user_leaf_in(&mut cache, 0, 0);
        unsafe {
            for i in 1..LEAF_CAP as i64 {
                let next = Node::block_insert_copy(&mut cache, &*leaf, i as usize, i * 10, i * 10);
                (*leaf).set_drop_hint(HINT_NONE);
                drop_retired_contents(leaf);
                cache.free_shell(leaf);
                leaf = next;
            }
            let (internal, holder, hpos) = Node::block_split_insert(&mut cache, &*leaf, 4, 35, 35);
            let left = (*internal).left.load(&arena).ptr();
            let right = (*internal).right.load(&arena).ptr();
            assert_eq!((*left).entry_keys(), &[0, 10, 20, 30, 35]);
            assert_eq!((*right).entry_keys(), &[40, 50, 60, 70]);
            assert_eq!((*left).key, Key::Fin(35));
            assert_eq!((*right).key, Key::Fin(70));
            assert_eq!((*internal).key, Key::Fin(40), "router = right half min");
            assert_eq!(holder, left);
            assert_eq!((*holder).entry_keys()[hpos], 35);
            // Dismantle as a CAS loser would: recover the new entry,
            // free the three shells, old block keeps its entries.
            let (k, v) = Node::take_entry(holder, hpos);
            assert_eq!((k, v), (35, 35));
            for shell in [left, right, internal] {
                (*shell).set_drop_hint(HINT_NONE);
                drop_retired_contents(shell);
                cache.free_shell(shell);
            }
            drop_retired_contents(leaf);
            cache.free_shell(leaf);
        }
    }

    #[test]
    fn drop_hints_drop_exactly_the_owned_entries() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        #[derive(Clone)]
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let arena = arena_for::<i64, D>(16);
        let mut cache = NodeCache::direct(&arena);
        unsafe {
            let a = Node::<i64, D>::new_user_leaf_in(&mut cache, 1, D(Arc::clone(&drops)));
            let b = Node::block_insert_copy(&mut cache, &*a, 1, 2, D(Arc::clone(&drops)));
            // `a`'s entry moved into `b`: HINT_NONE drops nothing.
            (*a).set_drop_hint(HINT_NONE);
            drop_retired_contents(a);
            cache.free_shell(a);
            assert_eq!(drops.load(Ordering::Relaxed), 0);
            // COW-remove entry 0 from `b`: hint `0` drops only that one.
            let c = Node::block_remove_copy(&mut cache, &*b, 0);
            (*b).set_drop_hint(0);
            drop_retired_contents(b);
            cache.free_shell(b);
            assert_eq!(drops.load(Ordering::Relaxed), 1);
            // `c` still owns its single entry: HINT_ALL drops it.
            drop_retired_contents(c);
            cache.free_shell(c);
            assert_eq!(drops.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn free_subtree_runs_destructors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let arena = arena_for::<i64, D>(16);
        let mut cache = NodeCache::direct(&arena);
        let a = Node::<i64, D>::new_user_leaf_in(&mut cache, 1, D(Arc::clone(&drops)));
        let b = Node::<i64, D>::new_user_leaf_in(&mut cache, 2, D(Arc::clone(&drops)));
        let n = Node::new_internal_in(&mut cache, Key::Fin(2), a, b);
        unsafe { free_subtree(n, &arena) };
        assert_eq!(drops.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn free_subtree_handles_degenerate_depth() {
        // A left-spine of 100k internal nodes must not overflow the stack.
        let arena = arena_for::<u64, ()>(0);
        let mut cache = NodeCache::direct(&arena);
        let mut node = Node::<u64, ()>::new_user_leaf_in(&mut cache, 0, ());
        for i in 1..100_000u64 {
            let leaf = Node::new_user_leaf_in(&mut cache, i, ());
            node = Node::new_internal_in(&mut cache, Key::Fin(i), node, leaf);
        }
        unsafe { free_subtree(node, &arena) };
    }
}
