//! Sharded front ends: N independent trees behind a cheap hash router.
//!
//! The serving tier's unit of scale. One [`NmTreeMap`] already scales
//! with readers, but every writer ultimately contends on the same hot
//! region of one tree, and every descent walks one shared root. Sharding
//! by key hash splits the key space across `N` independent trees so hot
//! keys land in different trees, roots stay in different cache lines,
//! and each server worker can keep a *pinned per-shard handle* whose
//! seek-record and node-cache scratch stay in that worker's core cache —
//! the locality ELB-Trees (Bonnichsen et al.) buys with fat leaves, here
//! bought one layer up.
//!
//! The router is a multiplicative hash (an FxHash-style folded
//! multiply, finished with a SplitMix64 mix) reduced onto `0..N` with
//! the high-bits range reduction `(h * N) >> 64` — no modulo, no
//! dependence on `N` being a power of two. Routing is deterministic
//! across threads and processes for a given key type and shard count,
//! which is what lets a future partitioned server agree on placement.
//!
//! Ordered views (`range_for_each`, `keys`, `for_each`) are *merged*
//! across shards: each shard's snapshot is weakly consistent exactly as
//! documented on [`NmTreeMap::range_for_each`], and shards are sampled
//! one after another, so cross-shard consistency is also weak. Every key
//! present in its shard for the entire call is still reported exactly
//! once, in ascending order.

use crate::obs::MetricsSnapshot;
use crate::tree::{NmTreeMap, TreeConfig, TreeShape};
use crate::MapHandle;
use nmbst_reclaim::{Ebr, Reclaim};
use std::hash::{Hash, Hasher};
use std::ops::{Bound, RangeBounds};

/// Shard count used by [`ShardedMap::new`] / [`ShardedSet::new`]. Eight
/// matches the metrics facade's counter striping: enough that a
/// thread-per-core server on a small box gets one tree per worker,
/// small enough that merged snapshots stay trivial.
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// FxHash's multiplicative constant (a 64-bit truncation of π's golden
/// spiral) — the "cheap multiply" half of the router.
const ROUTE_K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The router's hasher: a folded-multiply accumulator over whatever the
/// key's `Hash` impl writes, finished with a SplitMix64-style avalanche
/// so the *high* bits (the ones the range reduction keeps) depend on
/// every input bit. Integer keys hash in two multiplies.
struct RouteHasher(u64);

impl RouteHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(ROUTE_K);
    }
}

impl Hasher for RouteHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(tail) | 1 << 63);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.fold(n as u64);
        self.fold((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: spreads the multiply's entropy (which
        // concentrates in the middle bits) into the high bits.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Routes a key hash onto `0..shards` by multiplying into the high word
/// — Lemire's range reduction, one multiply instead of a modulo.
#[inline]
fn reduce(hash: u64, shards: usize) -> usize {
    ((hash as u128 * shards as u128) >> 64) as usize
}

/// A hash-sharded collection of [`NmTreeMap`]s behind one map-shaped
/// front end — the store the serving tier (`nmbst-server`) runs.
///
/// Point operations route to exactly one shard and inherit that tree's
/// linearizability; there are **no cross-shard transactions**, and
/// multi-key views (`metrics`, `count`, ranges) compose the per-shard
/// weak-consistency contracts. Hot loops should go through
/// [`handle()`](Self::handle), which keeps one pinned [`MapHandle`] per
/// shard.
///
/// # Examples
///
/// ```
/// use nmbst::ShardedMap;
///
/// let map: ShardedMap<u64, u64> = ShardedMap::with_shards(4);
/// let mut h = map.handle();
/// for k in 0..100 {
///     h.insert(k, k * 10);
/// }
/// assert_eq!(h.get(&42), Some(420));
/// drop(h);
/// assert_eq!(map.metrics().inserted, 100);
/// ```
pub struct ShardedMap<K, V, R: Reclaim = Ebr> {
    shards: Box<[NmTreeMap<K, V, R>]>,
}

impl<K, V, R> ShardedMap<K, V, R>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// A sharded map with [`DEFAULT_SHARD_COUNT`] default-configured
    /// trees.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARD_COUNT)
    }

    /// A sharded map with `shards` default-configured trees. The shard
    /// count is fixed for the map's lifetime — it is part of the routing
    /// function. Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_config(shards, TreeConfig::default())
    }

    /// A sharded map whose every tree runs the given [`TreeConfig`].
    /// Panics if `shards` is zero.
    pub fn with_config(shards: usize, config: TreeConfig) -> Self {
        assert!(shards > 0, "a sharded map needs at least one shard");
        ShardedMap {
            shards: (0..shards)
                .map(|_| NmTreeMap::with_config(config))
                .collect(),
        }
    }

    /// The number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to. Deterministic for a given key
    /// type and shard count.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        let mut h = RouteHasher(0);
        key.hash(&mut h);
        reduce(h.finish(), self.shards.len())
    }

    /// Direct access to one shard's tree (diagnostics, per-shard
    /// metrics). Writing through this bypasses nothing — the shard *is*
    /// a plain tree — but keys inserted into the wrong shard are
    /// invisible to routed reads, so mutate only via the routed API.
    pub fn shard(&self, idx: usize) -> &NmTreeMap<K, V, R> {
        &self.shards[idx]
    }

    /// A per-worker cursor holding one pinned [`MapHandle`] per shard.
    pub fn handle(&self) -> ShardedMapHandle<'_, K, V, R> {
        ShardedMapHandle {
            map: self,
            handles: self.shards.iter().map(|t| t.handle()).collect(),
        }
    }

    /// Routed [`NmTreeMap::insert`].
    #[inline]
    pub fn insert(&self, key: K, value: V) -> bool {
        self.shards[self.shard_of(&key)].insert(key, value)
    }

    /// Routed [`NmTreeMap::remove`].
    #[inline]
    pub fn remove(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].remove(key)
    }

    /// Routed [`NmTreeMap::contains`].
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)].contains(key)
    }

    /// Routed [`NmTreeMap::with_value`].
    #[inline]
    pub fn with_value<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        self.shards[self.shard_of(key)].with_value(key, f)
    }

    /// Routed [`NmTreeMap::get`].
    #[inline]
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shards[self.shard_of(key)].get(key)
    }

    /// Routed [`NmTreeMap::remove_get`].
    #[inline]
    pub fn remove_get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.shards[self.shard_of(key)].remove_get(key)
    }

    /// Visits every pair in ascending key order by merging per-shard
    /// range snapshots; see [`Self::range_for_each`] for the consistency
    /// contract.
    pub fn for_each(&self, f: impl FnMut(&K, &V))
    where
        V: Clone,
    {
        self.range_for_each(.., f)
    }

    /// Visits every pair in `range` in ascending key order.
    ///
    /// Each shard is snapshotted with [`NmTreeMap::range_collect`]
    /// (weakly consistent under concurrent writers, every stable key
    /// exactly once), one shard after another, and the snapshots are
    /// merged before `f` runs — so `f` observes a sorted view that never
    /// blocks writers but may interleave shard states from slightly
    /// different times.
    pub fn range_for_each<Q: RangeBounds<K>>(&self, range: Q, mut f: impl FnMut(&K, &V))
    where
        V: Clone,
    {
        for (k, v) in self.range_collect(range) {
            f(&k, &v);
        }
    }

    /// Collects `range` across all shards into one ascending `Vec`; the
    /// allocation behind [`Self::range_for_each`].
    pub fn range_collect<Q: RangeBounds<K>>(&self, range: Q) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let lo: Bound<K> = range.start_bound().cloned();
        let hi: Bound<K> = range.end_bound().cloned();
        let mut merged: Vec<(K, V)> = Vec::new();
        for tree in self.shards.iter() {
            merged.extend(tree.range_collect((lo.clone(), hi.clone())));
        }
        // Shards partition the key space, so per-shard ascending runs
        // never share keys; an unstable sort by key is a pure merge.
        merged.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        merged
    }

    /// Sums [`NmTreeMap::count`] across shards (snapshot, each shard
    /// weakly consistent).
    pub fn count(&self) -> usize {
        self.shards.iter().map(|t| t.count()).sum()
    }

    /// Whether every shard is empty (racy under writers, like
    /// [`NmTreeMap::is_empty`]).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|t| t.is_empty())
    }

    /// Exact live-key count across shards (`&mut self` = quiescent).
    pub fn len(&mut self) -> usize {
        self.shards.iter_mut().map(|t| t.len()).sum()
    }

    /// Every key, ascending, across shards (`&mut self` = quiescent).
    pub fn keys(&mut self) -> Vec<K> {
        let mut all: Vec<K> = Vec::new();
        for tree in self.shards.iter_mut() {
            all.extend(tree.keys());
        }
        all.sort_unstable();
        all
    }

    /// Empties every shard (`&mut self` = quiescent).
    pub fn clear(&mut self) {
        for tree in self.shards.iter_mut() {
            tree.clear();
        }
    }

    /// Bulk-loads `pairs` by routing each to its shard and running the
    /// per-shard bulk extend (balanced build into vacant
    /// shards, finger-batched inserts otherwise). First occurrence of a
    /// duplicate key wins, matching `insert` against a vacant map.
    pub fn bulk_extend(&mut self, pairs: Vec<(K, V)>) {
        let mut routed: Vec<Vec<(K, V)>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (k, v) in pairs {
            routed[self.shard_of(&k)].push((k, v));
        }
        for (tree, pairs) in self.shards.iter_mut().zip(routed) {
            tree.bulk_extend(pairs);
        }
    }

    /// Runs [`NmTreeMap::check_invariants`] on every shard, returning
    /// the per-shard shapes or the first shard's failure (prefixed with
    /// its index).
    pub fn check_invariants(&mut self) -> Result<Vec<TreeShape>, String> {
        self.shards
            .iter_mut()
            .enumerate()
            .map(|(i, t)| t.check_invariants().map_err(|e| format!("shard {i}: {e}")))
            .collect()
    }

    /// One [`MetricsSnapshot`] aggregated over all shards with
    /// [`MetricsSnapshot::merge`] — what the server's METRICS verb
    /// serves. Sums are exact at quiescence; each shard is sampled
    /// independently.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut agg = MetricsSnapshot::default();
        for tree in self.shards.iter() {
            agg.merge(&tree.metrics());
        }
        agg
    }

    /// Per-shard snapshots, index-aligned with the router (load-balance
    /// diagnostics).
    pub fn metrics_per_shard(&self) -> Vec<MetricsSnapshot> {
        self.shards.iter().map(|t| t.metrics()).collect()
    }

    /// [`NmTreeMap::flush`] on every shard's reclaimer.
    pub fn flush(&self) {
        for tree in self.shards.iter() {
            tree.flush();
        }
    }
}

impl<K, V, R> Default for ShardedMap<K, V, R>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, R: Reclaim> std::fmt::Debug for ShardedMap<K, V, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// One operation of a mixed batch, executed by
/// [`ShardedMapHandle::execute_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchCmd<K, V> {
    /// Look the key up.
    Get(K),
    /// Insert the pair (rejected if the key is present).
    Insert(K, V),
    /// Remove the key.
    Remove(K),
}

impl<K, V> BatchCmd<K, V> {
    /// The key this command operates on.
    #[inline]
    pub fn key(&self) -> &K {
        match self {
            BatchCmd::Get(k) | BatchCmd::Remove(k) => k,
            BatchCmd::Insert(k, _) => k,
        }
    }
}

/// The result of one [`BatchCmd`], index-aligned with the command list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchVerdict<V> {
    /// `Get` found the key, carrying its value.
    Found(V),
    /// `Get` did not find the key.
    Missing,
    /// `Insert` ran; `true` iff the key was newly added.
    Added(bool),
    /// `Remove` ran; `true` iff the key was present.
    Removed(bool),
}

/// Reusable routing scratch for [`ShardedMapHandle::execute_batch`]:
/// one position list per shard, capacity retained across calls so a
/// steady-state caller never re-allocates.
#[derive(Debug, Default)]
pub struct BatchScratch {
    runs: Vec<Vec<u32>>,
}

impl BatchScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// Clears every run and makes sure one exists per shard.
    fn reset(&mut self, shards: usize) {
        for run in self.runs.iter_mut() {
            run.clear();
        }
        if self.runs.len() < shards {
            self.runs.resize_with(shards, Vec::new);
        }
    }
}

/// A per-worker cursor over a [`ShardedMap`]: one pin-amortizing
/// [`MapHandle`] per shard, so a worker's descents into any shard reuse
/// that shard's guard, seek scratch, and node cache. Single-threaded
/// like the handles it wraps — give each worker its own.
pub struct ShardedMapHandle<'t, K, V, R: Reclaim = Ebr> {
    map: &'t ShardedMap<K, V, R>,
    handles: Box<[MapHandle<'t, K, V, R>]>,
}

impl<'t, K, V, R> ShardedMapHandle<'t, K, V, R>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// The sharded map this cursor operates on.
    pub fn map(&self) -> &'t ShardedMap<K, V, R> {
        self.map
    }

    /// Borrows the pinned handle for one shard (index-aligned with the
    /// router); escape hatch for shard-aware callers.
    pub fn shard_handle(&mut self, idx: usize) -> &mut MapHandle<'t, K, V, R> {
        &mut self.handles[idx]
    }

    #[inline]
    fn route(&mut self, key: &K) -> &mut MapHandle<'t, K, V, R> {
        let idx = self.map.shard_of(key);
        &mut self.handles[idx]
    }

    /// Routed [`MapHandle::insert`].
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.route(&key).insert(key, value)
    }

    /// Routed [`MapHandle::remove`].
    #[inline]
    pub fn remove(&mut self, key: &K) -> bool {
        self.route(key).remove(key)
    }

    /// Routed [`MapHandle::remove_get`].
    #[inline]
    pub fn remove_get(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.route(key).remove_get(key)
    }

    /// Routed [`MapHandle::contains`].
    #[inline]
    pub fn contains(&mut self, key: &K) -> bool {
        self.route(key).contains(key)
    }

    /// Routed [`MapHandle::get`].
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.route(key).get(key)
    }

    /// Routed [`MapHandle::with_value`].
    #[inline]
    pub fn with_value<T>(&mut self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        self.route(key).with_value(key, f)
    }

    /// Partitions `items` by shard and runs each shard's
    /// [`MapHandle::insert_batch`] (finger-anchored within a shard).
    /// Returns how many keys were newly added.
    pub fn insert_batch(&mut self, items: impl IntoIterator<Item = (K, V)>) -> usize {
        let mut routed: Vec<Vec<(K, V)>> = (0..self.handles.len()).map(|_| Vec::new()).collect();
        for (k, v) in items {
            routed[self.map.shard_of(&k)].push((k, v));
        }
        routed
            .into_iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(i, batch)| self.handles[i].insert_batch(batch))
            .sum()
    }

    /// Partitions `keys` by shard and runs each shard's
    /// [`MapHandle::remove_batch`]. Returns how many keys were removed.
    pub fn remove_batch(&mut self, keys: impl IntoIterator<Item = K>) -> usize {
        let mut routed: Vec<Vec<K>> = (0..self.handles.len()).map(|_| Vec::new()).collect();
        for k in keys {
            routed[self.map.shard_of(&k)].push(k);
        }
        routed
            .into_iter()
            .enumerate()
            .filter(|(_, batch)| !batch.is_empty())
            .map(|(i, batch)| self.handles[i].remove_batch(batch))
            .sum()
    }

    /// Partitions `keys` by shard, runs each shard's
    /// [`MapHandle::get_batch`], and scatters the results back into the
    /// callers' order.
    pub fn get_batch(&mut self, keys: impl IntoIterator<Item = K>) -> Vec<Option<V>>
    where
        V: Clone,
    {
        let mut routed: Vec<(Vec<usize>, Vec<K>)> = (0..self.handles.len())
            .map(|_| (Vec::new(), Vec::new()))
            .collect();
        let mut n = 0;
        for (pos, k) in keys.into_iter().enumerate() {
            let (positions, batch) = &mut routed[self.map.shard_of(&k)];
            positions.push(pos);
            batch.push(k);
            n = pos + 1;
        }
        let mut out = vec![None; n];
        for (i, (positions, batch)) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let results = self.handles[i].get_batch(batch);
            for (pos, r) in positions.into_iter().zip(results) {
                out[pos] = r;
            }
        }
        out
    }

    /// Executes a mixed batch of commands shard-fused: partitions `cmds`
    /// by shard, sorts each shard's run by key, walks it through that
    /// shard's finger-anchored [`MapHandle::batch_run`] cursor, and
    /// scatters the verdicts back into `out` at the command's input
    /// position. All buffers are caller-owned and reused — a
    /// steady-state caller allocates nothing beyond retained capacity.
    ///
    /// **Equivalence to input-order execution.** The replies (and the
    /// final map state) are identical to running `cmds` one at a time in
    /// input order: a map is a family of independent per-key registers,
    /// so two commands on *distinct* keys commute, and commands on the
    /// *same* key always land in the same shard's run where the sort key
    /// `(key, input position)` keeps them in input order (positions are
    /// unique, so the comparator is a total order and `sort_unstable_by`
    /// is deterministic). The only freedom the fusion exploits is
    /// reordering across distinct keys, which no reply can observe.
    pub fn execute_batch(
        &mut self,
        cmds: &[BatchCmd<K, V>],
        scratch: &mut BatchScratch,
        out: &mut Vec<BatchVerdict<V>>,
    ) where
        V: Clone,
    {
        assert!(
            u32::try_from(cmds.len()).is_ok(),
            "batch larger than u32 position space"
        );
        scratch.reset(self.handles.len());
        for (pos, cmd) in cmds.iter().enumerate() {
            scratch.runs[self.map.shard_of(cmd.key())].push(pos as u32);
        }
        out.clear();
        out.resize(cmds.len(), BatchVerdict::Missing);
        for (i, run) in scratch.runs.iter_mut().enumerate().take(self.handles.len()) {
            if run.is_empty() {
                continue;
            }
            run.sort_unstable_by(|&a, &b| {
                cmds[a as usize]
                    .key()
                    .cmp(cmds[b as usize].key())
                    .then(a.cmp(&b))
            });
            let mut cursor = self.handles[i].batch_run();
            for &pos in run.iter() {
                out[pos as usize] = match &cmds[pos as usize] {
                    BatchCmd::Get(k) => match cursor.get(k) {
                        Some(v) => BatchVerdict::Found(v),
                        None => BatchVerdict::Missing,
                    },
                    BatchCmd::Insert(k, v) => {
                        BatchVerdict::Added(cursor.insert(k.clone(), v.clone()))
                    }
                    BatchCmd::Remove(k) => BatchVerdict::Removed(cursor.remove(k)),
                };
            }
        }
    }

    /// [`MapHandle::flush_stats`] on every shard handle — publishes all
    /// batched counts so a concurrent [`ShardedMap::metrics`] stops
    /// lagging this worker.
    pub fn flush_stats(&mut self) {
        for h in self.handles.iter_mut() {
            h.flush_stats();
        }
    }

    /// [`MapHandle::unpin`] on every shard handle. Call before parking
    /// the worker.
    pub fn unpin(&mut self) {
        for h in self.handles.iter_mut() {
            h.unpin();
        }
    }
}

impl<K, V, R: Reclaim> std::fmt::Debug for ShardedMapHandle<'_, K, V, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMapHandle")
            .field("shards", &self.handles.len())
            .finish_non_exhaustive()
    }
}

/// [`ShardedMap`] without values: N independent [`crate::NmTreeSet`]s
/// behind the same router, with the same aggregation contracts.
///
/// # Examples
///
/// ```
/// use nmbst::ShardedSet;
///
/// let set: ShardedSet<u64> = ShardedSet::with_shards(4);
/// set.insert(7);
/// set.insert(3);
/// let mut seen = Vec::new();
/// set.range_for_each(.., |k| seen.push(*k));
/// assert_eq!(seen, vec![3, 7]);
/// ```
pub struct ShardedSet<K, R: Reclaim = Ebr> {
    inner: ShardedMap<K, (), R>,
}

impl<K, R> ShardedSet<K, R>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    /// A sharded set with [`DEFAULT_SHARD_COUNT`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARD_COUNT)
    }

    /// A sharded set with `shards` shards; panics if zero.
    pub fn with_shards(shards: usize) -> Self {
        ShardedSet {
            inner: ShardedMap::with_shards(shards),
        }
    }

    /// A sharded set whose every tree runs the given [`TreeConfig`].
    pub fn with_config(shards: usize, config: TreeConfig) -> Self {
        ShardedSet {
            inner: ShardedMap::with_config(shards, config),
        }
    }

    /// The number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// The shard index `key` routes to.
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        self.inner.shard_of(key)
    }

    /// A per-worker cursor holding one pinned handle per shard (the
    /// set-flavored [`ShardedMapHandle`]).
    pub fn handle(&self) -> ShardedSetHandle<'_, K, R> {
        ShardedSetHandle {
            inner: self.inner.handle(),
        }
    }

    /// Routed insert; `true` if the key set changed.
    #[inline]
    pub fn insert(&self, key: K) -> bool {
        self.inner.insert(key, ())
    }

    /// Routed remove; `true` if the key was present.
    #[inline]
    pub fn remove(&self, key: &K) -> bool {
        self.inner.remove(key)
    }

    /// Routed membership test.
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.inner.contains(key)
    }

    /// Visits every key ascending (merged shard snapshots; see
    /// [`ShardedMap::range_for_each`]).
    pub fn for_each(&self, mut f: impl FnMut(&K)) {
        self.inner.for_each(|k, ()| f(k));
    }

    /// Visits every key in `range` ascending (merged shard snapshots).
    pub fn range_for_each<Q: RangeBounds<K>>(&self, range: Q, mut f: impl FnMut(&K)) {
        self.inner.range_for_each(range, |k, ()| f(k));
    }

    /// Sums [`crate::NmTreeSet::count`] across shards.
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Whether every shard is empty (racy under writers).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Exact live-key count (`&mut self` = quiescent).
    pub fn len(&mut self) -> usize {
        self.inner.len()
    }

    /// Every key, ascending (`&mut self` = quiescent).
    pub fn keys(&mut self) -> Vec<K> {
        self.inner.keys()
    }

    /// Empties every shard (`&mut self` = quiescent).
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Per-shard invariant check; see [`ShardedMap::check_invariants`].
    pub fn check_invariants(&mut self) -> Result<Vec<TreeShape>, String> {
        self.inner.check_invariants()
    }

    /// Aggregated metrics; see [`ShardedMap::metrics`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics()
    }

    /// Reclaimer flush on every shard.
    pub fn flush(&self) {
        self.inner.flush()
    }
}

impl<K, R> Default for ShardedSet<K, R>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, R: Reclaim> std::fmt::Debug for ShardedSet<K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSet")
            .field("shards", &self.inner.shards.len())
            .finish_non_exhaustive()
    }
}

/// Per-worker cursor over a [`ShardedSet`]; see [`ShardedMapHandle`].
pub struct ShardedSetHandle<'t, K, R: Reclaim = Ebr> {
    inner: ShardedMapHandle<'t, K, (), R>,
}

impl<K, R> ShardedSetHandle<'_, K, R>
where
    K: Ord + Hash + Clone + Send + Sync + 'static,
    R: Reclaim,
{
    /// Routed insert through the shard's pinned handle.
    #[inline]
    pub fn insert(&mut self, key: K) -> bool {
        self.inner.insert(key, ())
    }

    /// Routed remove through the shard's pinned handle.
    #[inline]
    pub fn remove(&mut self, key: &K) -> bool {
        self.inner.remove(key)
    }

    /// Routed membership test through the shard's pinned handle.
    #[inline]
    pub fn contains(&mut self, key: &K) -> bool {
        self.inner.contains(key)
    }

    /// Shard-partitioned batch insert; returns keys newly added.
    pub fn insert_batch(&mut self, keys: impl IntoIterator<Item = K>) -> usize {
        self.inner.insert_batch(keys.into_iter().map(|k| (k, ())))
    }

    /// Shard-partitioned batch remove; returns keys removed.
    pub fn remove_batch(&mut self, keys: impl IntoIterator<Item = K>) -> usize {
        self.inner.remove_batch(keys)
    }

    /// Publishes batched op counts from every shard handle; see
    /// [`MapHandle::flush_stats`].
    pub fn flush_stats(&mut self) {
        self.inner.flush_stats()
    }

    /// Unpins every shard handle; call before parking the worker.
    pub fn unpin(&mut self) {
        self.inner.unpin()
    }
}

impl<K, R: Reclaim> std::fmt::Debug for ShardedSetHandle<'_, K, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSetHandle")
            .field("shards", &self.inner.handles.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_deterministic_and_in_range() {
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(7);
        for k in 0..10_000u64 {
            let s = map.shard_of(&k);
            assert!(s < 7);
            assert_eq!(s, map.shard_of(&k));
        }
    }

    #[test]
    fn router_spreads_sequential_keys() {
        // Sequential integer keys are the adversarial case for a weak
        // router; every shard must get a meaningful share.
        let map: ShardedMap<u64, u64> = ShardedMap::with_shards(8);
        let mut counts = [0usize; 8];
        const N: usize = 64_000;
        for k in 0..N as u64 {
            counts[map.shard_of(&k)] += 1;
        }
        let expected = N / 8;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "shard {i} got {c} of {N} (expected ≈{expected})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _: ShardedMap<u64, u64> = ShardedMap::with_shards(0);
    }
}
