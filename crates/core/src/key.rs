//! Keys with the paper's sentinel infinities.
//!
//! §3.2.1: "we assume the presence of three *sentinel* keys ∞₀, ∞₁ and
//! ∞₂, where ∞₀ < ∞₁ < ∞₂. The sentinel keys are greater than all other
//! keys, and are never removed from the tree." Encoding them in the key
//! type (rather than reserving values of `K`) keeps the tree fully
//! generic: any `K: Ord` works, with no keys sacrificed.

use std::cmp::Ordering;

/// A routing key stored in a tree node: either a finite user key or one
/// of the three sentinels.
///
/// The ordering places every finite key below every sentinel:
/// `Fin(k) < Inf0 < Inf1 < Inf2` for all `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Key<K> {
    /// A user key.
    Fin(K),
    /// Sentinel ∞₀ — the key of the initial leaf under `S`.
    Inf0,
    /// Sentinel ∞₁ — the key of routing node `S` and its right leaf.
    Inf1,
    /// Sentinel ∞₂ — the key of the root `R` and its right leaf.
    Inf2,
}

impl<K: Ord> Key<K> {
    fn rank(&self) -> u8 {
        match self {
            Key::Fin(_) => 0,
            Key::Inf0 => 1,
            Key::Inf1 => 2,
            Key::Inf2 => 3,
        }
    }

    /// Compares a borrowed user key against this routing key without
    /// constructing a `Key`.
    #[inline]
    pub fn cmp_user(&self, user: &K) -> Ordering {
        match self {
            Key::Fin(k) => k.cmp(user),
            // Sentinels exceed every user key.
            _ => Ordering::Greater,
        }
    }

    /// `true` if a search for `user` descends into the left child of a
    /// node routed by `self` (the paper's `key < node.key` test).
    #[inline]
    pub fn user_goes_left(&self, user: &K) -> bool {
        self.cmp_user(user) == Ordering::Greater
    }

    /// [`user_goes_left`](Self::user_goes_left), specialized for descent
    /// below the sentinel levels.
    ///
    /// The sentinel structure is fixed: the access path passes `R(∞₂)`,
    /// `S(∞₁)` and (in a non-empty tree) the `∞₀`-keyed top of the user
    /// area — all routed left without a comparison — and **every**
    /// routing key strictly below that is finite (an internal node's key
    /// is `max(new, leaf)` of two keys that are both finite there, and
    /// the `∞₀` leaf is only ever reachable as the right child of the
    /// `∞₀` internal). So in the descent loop proper this compiles down
    /// to a plain `K: Ord` comparison: the `Fin` arm is first, no
    /// `Ordering` is materialized, and the sentinel arms — kept only so
    /// the method stays total — collapse to a constant.
    #[inline(always)]
    pub fn user_goes_left_fin(&self, user: &K) -> bool {
        match self {
            Key::Fin(k) => user < k,
            // Unreachable below the sentinel levels; sentinels exceed
            // every user key, so "go left" stays correct regardless.
            _ => true,
        }
    }

    /// `true` if this is exactly the user key `user`.
    #[inline]
    pub fn is_user(&self, user: &K) -> bool {
        matches!(self, Key::Fin(k) if k == user)
    }

    /// The user key, if finite.
    #[inline]
    pub fn as_user(&self) -> Option<&K> {
        match self {
            Key::Fin(k) => Some(k),
            _ => None,
        }
    }
}

impl<K: Ord> PartialOrd for Key<K> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Key<K> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Key::Fin(a), Key::Fin(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_ordering() {
        let fin = Key::Fin(i64::MAX);
        assert!(fin < Key::Inf0);
        assert!(Key::<i64>::Inf0 < Key::Inf1);
        assert!(Key::<i64>::Inf1 < Key::Inf2);
        assert!(Key::Fin(i64::MIN) < Key::Fin(0));
    }

    #[test]
    fn finite_keys_compare_normally() {
        assert!(Key::Fin(1) < Key::Fin(2));
        assert_eq!(Key::Fin(7), Key::Fin(7));
        assert!(Key::Fin(9) > Key::Fin(3));
    }

    #[test]
    fn cmp_user_against_sentinels() {
        for s in [Key::Inf0, Key::Inf1, Key::Inf2] {
            assert_eq!(s.cmp_user(&i64::MAX), Ordering::Greater);
            assert!(s.user_goes_left(&i64::MAX));
        }
    }

    #[test]
    fn cmp_user_against_finite() {
        let k = Key::Fin(10);
        assert_eq!(k.cmp_user(&5), Ordering::Greater); // 5 goes left of 10
        assert!(k.user_goes_left(&5));
        assert_eq!(k.cmp_user(&10), Ordering::Equal); // equal goes right
        assert!(!k.user_goes_left(&10));
        assert_eq!(k.cmp_user(&15), Ordering::Less);
        assert!(!k.user_goes_left(&15));
    }

    #[test]
    fn is_user_and_as_user() {
        assert!(Key::Fin(3).is_user(&3));
        assert!(!Key::Fin(3).is_user(&4));
        assert!(!Key::<i32>::Inf0.is_user(&3));
        assert_eq!(Key::Fin(3).as_user(), Some(&3));
        assert_eq!(Key::<i32>::Inf2.as_user(), None);
    }

    #[test]
    fn total_order_is_consistent() {
        let mut keys = vec![
            Key::Inf2,
            Key::Fin(5),
            Key::Inf0,
            Key::Fin(-2),
            Key::Inf1,
            Key::Fin(100),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                Key::Fin(-2),
                Key::Fin(5),
                Key::Fin(100),
                Key::Inf0,
                Key::Inf1,
                Key::Inf2,
            ]
        );
    }
}
