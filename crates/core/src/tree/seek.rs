//! The seek phase (Algorithm 1).
//!
//! Every operation begins by traversing from the root to a leaf along
//! the *access path*. The traversal maintains the paper's four-pointer
//! seek record:
//!
//! * `leaf` — the last node on the access path,
//! * `parent` — its predecessor,
//! * `(ancestor, successor)` — the last **untagged** edge encountered
//!   before reaching `parent`.
//!
//! When no conflicting delete is in progress, `ancestor`/`successor`
//! coincide with the grandparent/parent. Otherwise every node from
//! `successor` down to `parent` is in the process of being removed, and
//! the splice at `ancestor` will excise the whole chain at once.

use super::{NmTreeMap, RestartPolicy};
use crate::chaos::{self, Action, Point};
use crate::key::Key;
use crate::node::{clean_edge, prefetch, Node};
use crate::obs::{self, EventKind};
use crate::stats;
use nmbst_reclaim::Reclaim;
use std::cmp::Ordering;

/// The four addresses a seek returns (Algorithm 1, lines 6–11), plus the
/// positional key bounds of the `(ancestor → successor)` edge that make
/// the record reusable as a *finger* for a different key.
///
/// Raw pointers are valid for dereference only under the reclamation
/// guard the seek ran under.
pub(crate) struct SeekRecord<K, V> {
    pub(crate) ancestor: *mut Node<K, V>,
    pub(crate) successor: *mut Node<K, V>,
    pub(crate) parent: *mut Node<K, V>,
    pub(crate) leaf: *mut Node<K, V>,
    /// Lower key bound of the anchor edge's position: every key that
    /// routes through `(ancestor → successor)` is ≥ it. Null means −∞.
    /// Points at the routing key of a node on the recorded access path —
    /// dereference only under the record's guard.
    ///
    /// The stored bounds are those accumulated from the routing
    /// decisions strictly *above* the successor — the edge's exact
    /// positional window as of this descent. (They deliberately exclude
    /// the successor's own routing decision: [`seek_from`] re-compares
    /// at the successor, so a finger key may branch the other way there
    /// and still be reachable through the edge.) A key inside the
    /// window is guaranteed to route through the edge; a key outside it
    /// merely forfeits the finger and re-seeks from the root. Splices
    /// above the anchor only ever *widen* positional windows (they
    /// remove routing nodes; inserts grow the tree at leaves, never
    /// above an internal node), so "inside the stored window" keeps
    /// implying "routes through the edge" under concurrent
    /// restructuring.
    ///
    /// [`seek_from`]: NmTreeMap::seek_from
    pub(crate) lo: *const Key<K>,
    /// Upper (strict) key bound of the anchor edge's position; null
    /// means +∞. Same provenance and caveats as `lo`.
    pub(crate) hi: *const Key<K>,
}

impl<K, V> SeekRecord<K, V> {
    pub(crate) fn empty() -> Self {
        SeekRecord {
            ancestor: std::ptr::null_mut(),
            successor: std::ptr::null_mut(),
            parent: std::ptr::null_mut(),
            leaf: std::ptr::null_mut(),
            lo: std::ptr::null(),
            hi: std::ptr::null(),
        }
    }
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Algorithm 1, lines 13–33. Fills `rec` with the access-path
    /// addresses for `key`.
    ///
    /// # Safety
    ///
    /// Caller must hold a reclamation guard for this tree across the call
    /// and for as long as the returned record is dereferenced.
    // Perf: inline so the per-op entry points in write.rs fuse the descent
    // loop with their retry loops instead of paying a call per (re)seek.
    #[inline]
    pub(crate) unsafe fn seek(&self, key: &K, rec: &mut SeekRecord<K, V>) {
        stats::record_seek();
        obs::emit(EventKind::SeekStart);
        let r = self.root;
        let s = self.s_node();
        // Initialization from the sentinels (lines 15–21).
        rec.ancestor = r;
        rec.successor = s;
        rec.parent = s;
        rec.lo = std::ptr::null();
        rec.hi = std::ptr::null();
        // Running positional bounds of the descent, snapshotted into the
        // record whenever the anchor advances. The sentinel prefix (two
        // hardcoded lefts past ∞₁ and ∞₀) contributes nothing a user key
        // could violate, so both start at ±∞. Each node's routing
        // decision is applied one iteration *late* (`pend_*`), so the
        // snapshot taken when the anchor advances to `(parent, leaf)`
        // holds the bounds from strictly above `leaf` — the exact window
        // of the anchor edge, not one decision narrower.
        let mut lo: *const Key<K> = std::ptr::null();
        let mut hi: *const Key<K> = std::ptr::null();
        let mut pend_key: *const Key<K> = std::ptr::null();
        let mut pend_left = false;
        // SAFETY (all derefs in this function): pointers were read from
        // live edges under the caller's guard; retired nodes cannot be
        // freed while it is held, and sentinels are never retired.
        let arena = self.arena();
        let mut parent_field = unsafe { &(*s).left }.load(arena);
        rec.leaf = parent_field.ptr();
        let mut current_field = unsafe { &(*rec.leaf).left }.load(arena);
        let mut current = current_field.ptr();

        // Descend until a leaf (lines 22–32). The sentinel levels are
        // behind us (the two hardcoded `.left` loads above), so routing
        // uses the finite-key fast compare.
        let mut depth = 0u64;
        while !current.is_null() {
            // An untagged edge into `parent` means `parent` is not being
            // spliced out: it is a valid anchor for the next splice.
            if !parent_field.tag() {
                rec.ancestor = rec.parent;
                rec.successor = rec.leaf;
                rec.lo = lo;
                rec.hi = hi;
            }
            if !pend_key.is_null() {
                if pend_left {
                    hi = pend_key;
                } else {
                    lo = pend_key;
                }
            }
            rec.parent = rec.leaf;
            rec.leaf = current;
            parent_field = current_field;
            let node_key = unsafe { &(*current).key };
            let go_left = node_key.user_goes_left_fin(key);
            current_field = unsafe { (*current).child(!go_left) }.load(arena);
            pend_key = node_key;
            pend_left = go_left;
            current = current_field.ptr();
            // Start fetching the next node (the grandchild edge's target)
            // while this iteration's tag bookkeeping and the loop test
            // retire — hides one memory latency per level on cold paths.
            prefetch(current);
            depth += 1;
        }
        self.metrics.note_depth(depth);
    }

    /// Restarts a seek from a previously observed `(anchor → successor)`
    /// edge instead of the root — the local-restart optimization of
    /// Chatterjee et al. (arXiv:1404.3272), applied to the modify-path
    /// retry loops.
    ///
    /// The anchor is revalidated first: its child edge for `key` must
    /// still be the *clean* edge to `successor`. Marks are permanent and
    /// an internal node gets both of its edges marked before any splice
    /// can detach it, so observing the clean edge proves `anchor` was
    /// still in the tree at the moment of the load — descending from it
    /// is then indistinguishable from the tail of a full root seek that
    /// passed through that edge (see DESIGN.md, "Local restart").
    ///
    /// Returns `false` (record contents unspecified) when the anchor
    /// cannot be revalidated — tagged, flagged, or re-pointed edge —
    /// and the caller must fall back to a full [`seek`](Self::seek).
    ///
    /// # Safety
    ///
    /// Same contract as [`seek`](Self::seek); additionally `anchor` and
    /// `successor` must come from a seek record produced under the same
    /// continuously-held guard, with `successor` an internal node.
    // Perf: inline for the same reason as `seek` — it is the hot half of
    // every local-restart retry and every finger-anchored batch op.
    #[inline]
    pub(crate) unsafe fn seek_from(
        &self,
        anchor: *mut Node<K, V>,
        successor: *mut Node<K, V>,
        key: &K,
        rec: &mut SeekRecord<K, V>,
    ) -> bool {
        // SAFETY (all derefs): `anchor`/`successor` are guard-protected
        // per the contract; everything below them is read from live
        // edges under the same guard.
        let arena = self.arena();
        let edge = unsafe { (*anchor).child_for(key) }.load(arena);
        if edge != clean_edge(successor) {
            return false;
        }
        rec.ancestor = anchor;
        rec.successor = successor;
        rec.parent = successor;
        // Resume the positional bounds from the record: the caller
        // guarantees `key` routes through the anchor edge (same key as
        // the recorded seek, or a finger hit vetted against these very
        // bounds), so the stored `[lo, hi)` is a valid starting point.
        let mut lo = rec.lo;
        let mut hi = rec.hi;
        // `anchor`/`successor` may be sentinels (R, S), so the first two
        // routing steps use the general compare. Sentinel keys are safe
        // as bounds: only `hi` can ever take one (user keys never route
        // right of an infinite key) and ∞ₓ compares above every user
        // key, same as null.
        let s_key = unsafe { &(*successor).key };
        let go_left = s_key.user_goes_left(key);
        let mut parent_field = unsafe { (*successor).child(!go_left) }.load(arena);
        if go_left {
            hi = s_key;
        } else {
            lo = s_key;
        }
        rec.leaf = parent_field.ptr();
        if rec.leaf.is_null() {
            // `successor` turned out to be a leaf: no record shape can be
            // formed below it. Unreachable for records produced by `seek`
            // (their successor is always internal), kept as a cheap
            // guard against misuse.
            return false;
        }
        let l_key = unsafe { &(*rec.leaf).key };
        let go_left = l_key.user_goes_left(key);
        let mut current_field = unsafe { (*rec.leaf).child(!go_left) }.load(arena);
        // `rec.leaf`'s decision stays pending (applied one iteration
        // late), matching `seek`: an anchor snapshot stores the bounds
        // from strictly above its successor.
        let mut pend_key: *const Key<K> = l_key;
        let mut pend_left = go_left;
        let mut current = current_field.ptr();

        // Identical to the descent loop of `seek`.
        while !current.is_null() {
            if !parent_field.tag() {
                rec.ancestor = rec.parent;
                rec.successor = rec.leaf;
                rec.lo = lo;
                rec.hi = hi;
            }
            if !pend_key.is_null() {
                if pend_left {
                    hi = pend_key;
                } else {
                    lo = pend_key;
                }
            }
            rec.parent = rec.leaf;
            rec.leaf = current;
            parent_field = current_field;
            let node_key = unsafe { &(*current).key };
            let go_left = node_key.user_goes_left_fin(key);
            current_field = unsafe { (*current).child(!go_left) }.load(arena);
            pend_key = node_key;
            pend_left = go_left;
            current = current_field.ptr();
            prefetch(current);
        }
        stats::record_local_restart();
        obs::emit(EventKind::LocalRestart);
        true
    }

    /// Re-seeks after a failed CAS, honoring the tree's
    /// [`RestartPolicy`]: under `Local` the previous record's anchor is
    /// revalidated and the descent restarted there; any failure (or the
    /// `Root` policy) performs a full root seek.
    ///
    /// # Safety
    ///
    /// Same contract as [`seek`](Self::seek); additionally `rec` must
    /// hold the record of a prior seek for the same `key` performed
    /// under the same continuously-held guard.
    // Perf: inline so the policy dispatch folds away at the call sites.
    #[inline]
    pub(crate) unsafe fn seek_retry(&self, key: &K, rec: &mut SeekRecord<K, V>) {
        if self.restart == RestartPolicy::Local && !rec.ancestor.is_null() {
            let (anchor, successor) = (rec.ancestor, rec.successor);
            // SAFETY: forwarded contract.
            if unsafe { self.seek_from(anchor, successor, key, rec) } {
                return;
            }
        }
        // SAFETY: forwarded contract.
        unsafe { self.seek(key, rec) };
    }

    /// Batch-op seek: descend from a previous op's seek record — the
    /// *finger* — when the caller says it has one and it revalidates,
    /// from the root otherwise. Returns whether the finger was used (a
    /// finger **hit**: sorted neighbors share most of their access path,
    /// so the descent pays only the inter-key distance).
    ///
    /// Unlike a local-restart retry — which re-seeks the *same* key, so
    /// the anchor edge is on its path by construction — a finger carries
    /// the record to a **different** key, which is only sound if that key
    /// routes through the anchor edge at all. The record's positional
    /// bounds (`SeekRecord::lo`/`hi`) gate exactly that: a key inside
    /// `[lo, hi)` provably reaches the edge, a key outside forfeits the
    /// finger. After the gate, safety reduces to
    /// [`seek_from`](Self::seek_from)'s revalidation — a stale or
    /// torn-down anchor fails the clean-edge check and the op falls back
    /// to a full root seek. The [`Point::BatchFinger`] chaos point fires
    /// before the gate; [`Action::Abandon`] skips the anchor (a
    /// deterministic forced miss), it does not abandon the op.
    ///
    /// # Safety
    ///
    /// Same contract as [`seek`](Self::seek); when `finger` is true,
    /// `rec` must additionally hold a record produced under the same
    /// continuously-held guard (any key).
    #[inline]
    pub(crate) unsafe fn seek_finger(
        &self,
        key: &K,
        rec: &mut SeekRecord<K, V>,
        finger: bool,
    ) -> bool {
        if finger && !rec.ancestor.is_null() && chaos::hit(Point::BatchFinger) == Action::Continue {
            // SAFETY: bound pointers target routing keys of nodes on the
            // recorded path, guard-protected per the `finger` contract.
            let in_bounds = unsafe {
                (rec.lo.is_null() || (*rec.lo).cmp_user(key) != Ordering::Greater)
                    && (rec.hi.is_null() || (*rec.hi).cmp_user(key) == Ordering::Greater)
            };
            if in_bounds {
                let (anchor, successor) = (rec.ancestor, rec.successor);
                // SAFETY: forwarded contract (`finger` vouches for the
                // record, the bounds gate for the key).
                if unsafe { self.seek_from(anchor, successor, key, rec) } {
                    return true;
                }
            }
        }
        // SAFETY: forwarded contract.
        unsafe { self.seek(key, rec) };
        false
    }

    /// Lightweight traversal for read-only operations: the paper's
    /// search (Algorithm 2, lines 34–39) only consults the final leaf,
    /// so the full record bookkeeping can be skipped.
    ///
    /// # Safety
    ///
    /// Same contract as [`seek`](Self::seek).
    // Perf: inline — this is the whole body of `contains`/`get`.
    #[inline]
    pub(crate) unsafe fn search_leaf(&self, key: &K) -> *mut Node<K, V> {
        // Sentinel prefix of every access path, hardcoded as in `seek`:
        // a user key routes left of `S` (∞₁) and left of the ∞₀-keyed
        // node topping the user area, no comparison needed. Below that,
        // every routing key is finite and the loop uses the plain
        // `K: Ord` fast compare.
        //
        // SAFETY: see `seek`.
        let arena = self.arena();
        let mut current = unsafe { &(*self.s_node()).left }.load(arena).ptr();
        let mut next = unsafe { &(*current).left }.load(arena).ptr();
        while !next.is_null() {
            current = next;
            next = unsafe { (*current).child_for_fin(key) }.load(arena).ptr();
            prefetch(next);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;
    use nmbst_reclaim::Leaky;

    type Map = NmTreeMap<i64, (), Leaky>;

    #[test]
    fn seek_on_empty_tree_lands_on_inf0() {
        let map = Map::new();
        let mut rec = SeekRecord::empty();
        unsafe {
            map.seek(&42, &mut rec);
            assert_eq!((*rec.leaf).key, Key::Inf0);
            assert_eq!(rec.parent, map.s_node());
            assert_eq!(rec.successor, map.s_node());
            assert_eq!(rec.ancestor, map.root);
        }
    }

    #[test]
    fn seek_finds_inserted_key() {
        let map = Map::new();
        for k in [50, 25, 75] {
            assert!(map.insert(k, ()));
        }
        let mut rec = SeekRecord::empty();
        unsafe {
            map.seek(&25, &mut rec);
            assert!((*rec.leaf).find(&25).is_ok());
            assert!((*rec.leaf).is_leaf());
            assert!(!(*rec.parent).is_leaf());
            // No deletes in flight: successor == parent and the ancestor
            // is the parent's parent.
            assert_eq!(rec.successor, rec.parent);
        }
    }

    #[test]
    fn seek_for_missing_key_lands_on_boundary_leaf() {
        let map = Map::new();
        for k in [10, 20, 30] {
            map.insert(k, ());
        }
        let mut rec = SeekRecord::empty();
        unsafe {
            map.seek(&15, &mut rec);
            // The leaf block reached must contain 15's in-order
            // neighbours (all three keys coalesce into one fat leaf at
            // the default cap, so both sides live in the same block).
            assert!((*rec.leaf).is_leaf());
            let keys = (*rec.leaf).entry_keys();
            assert!(keys.contains(&10) || keys.contains(&20));
            assert!((*rec.leaf).find(&15).is_err());
        }
    }

    #[test]
    fn search_leaf_agrees_with_seek() {
        let map = Map::new();
        for k in 0..64 {
            map.insert(k * 3, ());
        }
        let mut rec = SeekRecord::empty();
        for probe in 0..200 {
            unsafe {
                map.seek(&probe, &mut rec);
                assert_eq!(map.search_leaf(&probe), rec.leaf);
            }
        }
    }
}
