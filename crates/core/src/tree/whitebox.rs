//! Whitebox test hooks: deterministic construction of the in-flight
//! states the paper's helping protocol handles.
//!
//! A "stalled" delete is one that performed its injection CAS (flagged
//! the edge to its victim) and then stopped before cleanup — exactly
//! what a preempted thread looks like to everyone else. These hooks
//! exist only under `cfg(test)` and let tests stage such states
//! deterministically instead of hoping a race produces them.

#![cfg(test)]

use super::{NmTreeMap, SeekRecord};
use crate::chaos::{FaultPlan, Point};
use nmbst_reclaim::Reclaim;

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Performs only the *injection* step of a delete: flags the edge to
    /// `key`'s leaf and returns without cleaning up, imitating a deleter
    /// preempted right after its injection CAS. The flag linearizes
    /// *ownership* — no rival delete can claim this leaf anymore — while
    /// the delete itself takes effect at the later splice (§3.3), so the
    /// key stays visible to searches until someone finishes the cleanup.
    /// Returns `true` iff the flag was planted by this call (`false` if
    /// the key is absent or another delete owns the edge).
    ///
    /// Implemented as a [`FaultPlan`] over the chaos injection layer: a
    /// plain `remove` whose cleanup is abandoned at [`Point::Tag`], the
    /// first atomic step after injection. When our injection CAS loses
    /// to a rival's flag, the same rule also abandons the *helping*
    /// cleanup before it mutates anything, preserving the staged state.
    ///
    /// Only meaningful on `leaf_cap = 1` trees: a remove from a
    /// multi-entry fat leaf takes the copy-on-write path, which has no
    /// flag/tag/splice steps to stall.
    pub(crate) fn stall_delete_after_injection(&self, key: &K) -> bool {
        FaultPlan::new()
            .abandon_at(Point::Tag)
            .run(|| self.remove(key))
    }

    /// Finishes a stalled delete of `key` the way any helper would:
    /// seek + cleanup until the leaf is gone.
    pub(crate) fn finish_stalled_delete(&self, key: &K) {
        let guard = self.reclaim.pin();
        let mut rec = SeekRecord::empty();
        loop {
            // SAFETY: pinned.
            unsafe { self.seek(key, &mut rec) };
            // SAFETY: read under the pin.
            if unsafe { (*rec.leaf).find(key).is_err() } {
                return;
            }
            // SAFETY: record from a seek under this pin.
            unsafe { self.cleanup(key, &mut rec, &guard) };
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet, TreeConfig};
    use nmbst_reclaim::{Ebr, HazardEras, Leaky, Reclaim};

    /// Every scenario here stages the classic flag/tag/splice protocol,
    /// which only runs for singleton leaves — so the whole module works
    /// on `leaf_cap = 1` trees (the ablation shape, where every remove
    /// is a structural delete exactly as in the paper).
    fn cap1() -> TreeConfig {
        TreeConfig::default().with_leaf_cap(1)
    }

    fn set_with<R: Reclaim>(keys: &[u64]) -> NmTreeSet<u64, R> {
        let s = NmTreeSet::with_config(cap1());
        for &k in keys {
            s.insert(k);
        }
        s
    }

    /// Expands a generic scenario into one `#[test]` per reclaimer, so
    /// the helping paths that *retire* memory (retire-once, chain
    /// excision) run under every scheme the tree supports — `Ebr`, the
    /// hazard-record-based `HazardEras`, and the paper-faithful `Leaky`.
    macro_rules! per_reclaimer {
        ($scenario:ident: $ebr:ident, $eras:ident, $leaky:ident) => {
            #[test]
            fn $ebr() {
                $scenario::<Ebr>();
            }
            #[test]
            fn $eras() {
                $scenario::<HazardEras>();
            }
            #[test]
            fn $leaky() {
                $scenario::<Leaky>();
            }
        };
    }

    #[test]
    fn search_still_finds_flagged_but_unspliced_key() {
        // The delete's linearization point is the *splice*, not the flag
        // (§3.3), so a flagged-but-present key is still a member.
        let set = set_with::<Ebr>(&[50, 25, 75]);
        assert!(set.as_map().stall_delete_after_injection(&25));
        assert!(set.contains(&25), "flagged key must still be visible");
        set.as_map().finish_stalled_delete(&25);
        assert!(!set.contains(&25));
    }

    #[test]
    fn insert_helps_stalled_delete_at_its_injection_point() {
        // Insert(30) seeks to the leaf 25 whose edge is flagged; its CAS
        // fails, it must help the stalled delete finish, then succeed.
        let set = set_with::<Ebr>(&[50, 25, 75]);
        assert!(set.as_map().stall_delete_after_injection(&25));
        assert!(set.insert(30), "insert must help and then succeed");
        assert!(set.contains(&30));
        assert!(!set.contains(&25), "helped delete must have completed");
        let mut m = set;
        m.check_invariants().unwrap();
    }

    #[test]
    fn second_delete_of_same_key_loses_to_stalled_owner() {
        let set = set_with::<Ebr>(&[50, 25, 75]);
        assert!(set.as_map().stall_delete_after_injection(&25));
        // A competing delete of 25 must help the owner and report false:
        // the key was (logically) claimed by the stalled delete.
        assert!(!set.remove(&25));
        assert!(!set.contains(&25));
    }

    fn sibling_delete_helps_stalled_delete<R: Reclaim>() {
        // 25's edge is flagged; deleting its tree-sibling forces the
        // sibling's cleanup to interact with the flagged edge (the
        // "flag copied to the new edge" path, Algorithm 4 line 107-108).
        let set = set_with::<R>(&[50, 25, 75, 10, 30]);
        assert!(set.as_map().stall_delete_after_injection(&30));
        assert!(set.remove(&10));
        // Whatever the interleaving, 30 must end up deleted (it was
        // flagged) and the rest intact.
        set.as_map().finish_stalled_delete(&30);
        assert!(!set.contains(&30));
        for k in [50, 25, 75] {
            assert!(set.contains(&k), "lost {k}");
        }
        let mut m = set;
        let shape = m.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 3);
    }

    per_reclaimer!(sibling_delete_helps_stalled_delete:
        delete_of_sibling_helps_stalled_delete,
        delete_of_sibling_helps_stalled_delete_hazard_eras,
        delete_of_sibling_helps_stalled_delete_leaky);

    fn stalled_deletes_chain_excision<R: Reclaim>() {
        // Figure 2's situation: several flagged victims along one path.
        // Finishing any one of them (or any helper) may excise several.
        let set = set_with::<R>(&[10, 20, 30, 40, 50, 60, 70, 80]);
        for k in [30u64, 40, 50] {
            assert!(set.as_map().stall_delete_after_injection(&k), "stall {k}");
        }
        // All three remain visible (none spliced yet).
        for k in [30u64, 40, 50] {
            assert!(set.contains(&k));
        }
        for k in [30u64, 40, 50] {
            set.as_map().finish_stalled_delete(&k);
        }
        for k in [30u64, 40, 50] {
            assert!(!set.contains(&k));
        }
        for k in [10u64, 20, 60, 70, 80] {
            assert!(set.contains(&k), "lost innocent {k}");
        }
        let mut m = set;
        let shape = m.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 5);
    }

    per_reclaimer!(stalled_deletes_chain_excision:
        multiple_stalled_deletes_form_a_chain_removed_at_once,
        multiple_stalled_deletes_chain_hazard_eras,
        multiple_stalled_deletes_chain_leaky);

    #[test]
    fn edge_granularity_gives_independent_progress_figure5() {
        // §5 / Figure 5: operations touching *disjoint edges* proceed
        // independently even when they share nodes. A delete of 10 is
        // stalled mid-flight (its edge flagged); deleting its tree
        // sibling 20 — same parent node! — completes on its own and, in
        // contrast to node-locking designs (see the mirror test in
        // nmbst-baselines::efrb), does NOT have to drive the stalled
        // delete to completion: 10 stays present (flagged, hoisted with
        // its flag copied per Algorithm 4 line 107-108) until its owner
        // resumes.
        let set = set_with::<Ebr>(&[10, 20]);
        assert!(set.as_map().stall_delete_after_injection(&10));
        assert!(set.remove(&20), "sibling delete proceeds independently");
        assert!(
            set.contains(&10),
            "stalled delete was not forced to completion: 10 still visible"
        );
        // The stalled owner resumes and finishes on the hoisted edge.
        set.as_map().finish_stalled_delete(&10);
        assert!(!set.contains(&10));
        let mut m = set;
        let shape = m.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 0);
    }

    #[test]
    fn stalling_twice_on_same_key_fails_second_time() {
        let set = set_with::<Ebr>(&[5, 3, 8]);
        assert!(set.as_map().stall_delete_after_injection(&3));
        assert!(!set.as_map().stall_delete_after_injection(&3));
        set.as_map().finish_stalled_delete(&3);
    }

    fn racing_helpers_retire_once<R: Reclaim>() {
        // Many threads simultaneously help the same stalled delete; the
        // splice must happen exactly once (retire-once is implied: a
        // double retire would double-free under a reclaiming scheme and
        // crash/corrupt).
        for _trial in 0..40 {
            let set = set_with::<R>(&[50, 25, 75, 10, 30, 60, 90]);
            assert!(set.as_map().stall_delete_after_injection(&30));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let set = &set;
                    s.spawn(move || set.as_map().finish_stalled_delete(&30));
                }
            });
            assert!(!set.contains(&30));
            for k in [50, 25, 75, 10, 60, 90] {
                assert!(set.contains(&k), "lost {k}");
            }
            let mut m = set;
            let shape = m.check_invariants().unwrap();
            assert_eq!(shape.user_keys, 6);
        }
    }

    per_reclaimer!(racing_helpers_retire_once:
        racing_helpers_finish_one_stalled_delete_idempotently,
        racing_helpers_retire_once_hazard_eras,
        racing_helpers_retire_once_leaky);

    #[test]
    fn readers_see_consistent_membership_around_staged_chain() {
        // While a staged Figure 2 chain is being excised by helpers,
        // concurrent searches must never crash and must see innocent
        // keys as present throughout.
        let set = set_with::<Ebr>(&[10, 20, 30, 40, 50, 60, 70, 80]);
        for k in [30u64, 40, 50] {
            assert!(set.as_map().stall_delete_after_injection(&k));
        }
        std::thread::scope(|s| {
            for k in [30u64, 40, 50] {
                let set = &set;
                s.spawn(move || set.as_map().finish_stalled_delete(&k));
            }
            for _ in 0..2 {
                let set = &set;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        for k in [10u64, 20, 60, 70, 80] {
                            assert!(set.contains(&k), "innocent key {k} vanished");
                        }
                    }
                });
            }
        });
        let mut m = set;
        assert_eq!(m.check_invariants().unwrap().user_keys, 5);
    }

    #[test]
    fn map_values_of_chain_victims_reclaimed_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicUsize>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let map: NmTreeMap<u64, D, Ebr> = NmTreeMap::with_config(cap1());
        for k in [10, 20, 30, 40, 50] {
            map.insert(k, D(Arc::clone(&drops)));
        }
        for k in [20u64, 30, 40] {
            assert!(map.stall_delete_after_injection(&k));
        }
        for k in [20u64, 30, 40] {
            map.finish_stalled_delete(&k);
        }
        map.flush();
        drop(map);
        assert_eq!(drops.load(Ordering::Relaxed), 5, "each value dropped once");
    }
}
