//! Graphviz export for debugging and documentation.

use super::NmTreeMap;
use crate::key::Key;
use nmbst_reclaim::Reclaim;
use std::fmt::Write as _;

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + std::fmt::Debug + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Renders the tree as a Graphviz `digraph` (exclusive access).
    ///
    /// Internal nodes are ellipses, leaves boxes, sentinels grey; marked
    /// edges (impossible at quiescence, but this method is also useful
    /// from whitebox tests staging in-flight states) render dashed with
    /// their flag/tag annotation.
    ///
    /// ```
    /// use nmbst::NmTreeMap;
    ///
    /// let mut map: NmTreeMap<u32, ()> = NmTreeMap::new();
    /// map.insert(5, ());
    /// let dot = map.to_dot();
    /// assert!(dot.starts_with("digraph nmbst {"));
    /// assert!(dot.contains("Fin(5)"));
    /// ```
    pub fn to_dot(&mut self) -> String {
        let mut out = String::from("digraph nmbst {\n  node [fontname=\"monospace\"];\n");
        // SAFETY: exclusive access for the whole walk.
        unsafe {
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                if n.is_null() {
                    continue;
                }
                let id = n as usize;
                let (label, sentinel) = match &(*n).key {
                    Key::Fin(k) => (format!("Fin({k:?})"), false),
                    Key::Inf0 => ("inf0".to_string(), true),
                    Key::Inf1 => ("inf1".to_string(), true),
                    Key::Inf2 => ("inf2".to_string(), true),
                };
                let leaf = (*n).is_leaf();
                let _ = writeln!(
                    out,
                    "  n{id} [label=\"{label}\" shape={}{}];",
                    if leaf { "box" } else { "ellipse" },
                    if sentinel {
                        " style=filled fillcolor=lightgrey"
                    } else {
                        ""
                    }
                );
                for (side, edge) in [("L", (*n).left.load_mut()), ("R", (*n).right.load_mut())] {
                    let child = edge.ptr();
                    if child.is_null() {
                        continue;
                    }
                    let marks = match (edge.flag(), edge.tag()) {
                        (false, false) => String::new(),
                        (f, t) => format!(
                            " style=dashed color=red label=\"{}{}\"",
                            if f { "F" } else { "" },
                            if t { "T" } else { "" }
                        ),
                    };
                    let _ = writeln!(
                        out,
                        "  n{id} -> n{} [taillabel=\"{side}\"{marks}];",
                        child as usize
                    );
                    stack.push(child);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::NmTreeMap;
    use nmbst_reclaim::Ebr;

    #[test]
    fn empty_tree_dot_has_sentinels() {
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
        let dot = m.to_dot();
        assert_eq!(dot.matches("inf0").count(), 1);
        assert_eq!(dot.matches("inf1").count(), 2); // S and its right leaf
        assert_eq!(dot.matches("inf2").count(), 2); // R and its right leaf
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn populated_tree_lists_all_keys() {
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
        for k in [4, 2, 6] {
            m.insert(k, ());
        }
        let dot = m.to_dot();
        for k in [4, 2, 6] {
            assert!(dot.contains(&format!("Fin({k})")), "missing {k}\n{dot}");
        }
        // External tree: node count = 5 sentinels + 3 leaves + 3 internals.
        assert_eq!(dot.matches("shape=box").count(), 3 + 3);
    }

    #[test]
    fn no_marked_edges_at_quiescence() {
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
        for k in 0..20 {
            m.insert(k, ());
        }
        for k in 0..10 {
            m.remove(&k);
        }
        assert!(!m.to_dot().contains("dashed"));
    }
}
