//! Graphviz export for debugging and documentation.

use super::NmTreeMap;
use crate::key::Key;
use nmbst_reclaim::Reclaim;
use std::fmt::Write as _;

/// Escapes the characters Graphviz record labels treat as structure.
fn record_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, '{' | '}' | '|' | '<' | '>' | '"' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + std::fmt::Debug + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Renders the tree as a Graphviz `digraph` (exclusive access).
    ///
    /// Internal nodes are ellipses, sentinel leaves grey boxes, and user
    /// leaves **records**: the first field is the router key, the rest
    /// one field per stored entry, so a fat leaf block reads as
    /// `Fin(30) | 10 | 20 | 30` instead of eight anonymous boxes.
    /// Marked edges (impossible at quiescence, but this method is also
    /// useful from whitebox tests staging in-flight states) render
    /// dashed with their flag/tag annotation.
    ///
    /// ```
    /// use nmbst::NmTreeMap;
    ///
    /// let mut map: NmTreeMap<u32, ()> = NmTreeMap::new();
    /// map.insert(5, ());
    /// let dot = map.to_dot();
    /// assert!(dot.starts_with("digraph nmbst {"));
    /// assert!(dot.contains("Fin(5)"));
    /// assert!(dot.contains("shape=record"));
    /// ```
    pub fn to_dot(&mut self) -> String {
        let arena = self.arena();
        let root = self.root;
        let mut out = String::from("digraph nmbst {\n  node [fontname=\"monospace\"];\n");
        // SAFETY: exclusive access for the whole walk.
        unsafe {
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                if n.is_null() {
                    continue;
                }
                let id = n as usize;
                let (router, sentinel) = match &(*n).key {
                    Key::Fin(k) => (format!("Fin({k:?})"), false),
                    Key::Inf0 => ("inf0".to_string(), true),
                    Key::Inf1 => ("inf1".to_string(), true),
                    Key::Inf2 => ("inf2".to_string(), true),
                };
                let leaf = (*n).is_leaf();
                if leaf && (*n).len() > 0 {
                    // Fat user leaf: record node, router first, then the
                    // block's entries in stored (ascending) order.
                    let mut label = record_escape(&router);
                    for k in (*n).entry_keys() {
                        let _ = write!(label, " | {}", record_escape(&format!("{k:?}")));
                    }
                    let _ = writeln!(out, "  n{id} [label=\"{label}\" shape=record];");
                } else {
                    let _ = writeln!(
                        out,
                        "  n{id} [label=\"{router}\" shape={}{}];",
                        if leaf { "box" } else { "ellipse" },
                        if sentinel {
                            " style=filled fillcolor=lightgrey"
                        } else {
                            ""
                        }
                    );
                }
                for (side, edge) in [
                    ("L", (*n).left.load_mut(arena)),
                    ("R", (*n).right.load_mut(arena)),
                ] {
                    let child = edge.ptr();
                    if child.is_null() {
                        continue;
                    }
                    let marks = match (edge.flag(), edge.tag()) {
                        (false, false) => String::new(),
                        (f, t) => format!(
                            " style=dashed color=red label=\"{}{}\"",
                            if f { "F" } else { "" },
                            if t { "T" } else { "" }
                        ),
                    };
                    let _ = writeln!(
                        out,
                        "  n{id} -> n{} [taillabel=\"{side}\"{marks}];",
                        child as usize
                    );
                    stack.push(child);
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::TreeConfig;
    use crate::{NmTreeMap, PoolConfig};
    use nmbst_reclaim::Ebr;

    #[test]
    fn empty_tree_dot_has_sentinels() {
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
        let dot = m.to_dot();
        assert_eq!(dot.matches("inf0").count(), 1);
        assert_eq!(dot.matches("inf1").count(), 2); // S and its right leaf
        assert_eq!(dot.matches("inf2").count(), 2); // R and its right leaf
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn populated_tree_renders_one_record_block() {
        // Default leaf_cap = 8: three keys coalesce into one fat leaf.
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
        for k in [4, 2, 6] {
            m.insert(k, ());
        }
        let dot = m.to_dot();
        // Router is the block max; entries appear as record fields.
        assert!(dot.contains("Fin(6) | 2 | 4 | 6"), "block missing\n{dot}");
        assert_eq!(dot.matches("shape=record").count(), 1);
        // Sentinel leaves stay plain grey boxes.
        assert_eq!(dot.matches("shape=box").count(), 3);
    }

    #[test]
    fn leaf_cap_one_renders_singleton_records() {
        // The ablation shape: every user leaf is a 1-entry record.
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::with_config(
            TreeConfig::default()
                .with_leaf_cap(1)
                .with_pool(PoolConfig::disabled()),
        );
        for k in [4, 2, 6] {
            m.insert(k, ());
        }
        let dot = m.to_dot();
        for k in [4, 2, 6] {
            assert!(
                dot.contains(&format!("Fin({k}) | {k}")),
                "missing singleton record for {k}\n{dot}"
            );
        }
        assert_eq!(dot.matches("shape=record").count(), 3);
    }

    #[test]
    fn no_marked_edges_at_quiescence() {
        let mut m: NmTreeMap<u32, (), Ebr> = NmTreeMap::new();
        for k in 0..20 {
            m.insert(k, ());
        }
        for k in 0..10 {
            m.remove(&k);
        }
        assert!(!m.to_dot().contains("dashed"));
    }
}
