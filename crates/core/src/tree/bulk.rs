//! O(n) balanced bulk-load.
//!
//! Loop-inserting a sorted stream is the tree's worst case twice over:
//! every insert re-descends the same ever-growing right spine (O(n²)
//! total work, O(n) depth), and every node is published with its own
//! CAS. A bulk load sidesteps both: the perfectly balanced external
//! tree is built *privately* — nodes drawn from the pool, edges written
//! with plain stores, zero CAS, zero retries — and attached to the
//! sentinel scaffolding with **one** store.
//!
//! The publish argument is exclusivity, not marks: the builder runs
//! under `&mut self` (or on a tree no other thread has seen yet), so no
//! concurrent operation can observe the half-built subtree, and Rust's
//! `&mut` → `&` hand-off provides the happens-before edge that makes
//! the plain publish store visible to every later reader. See DESIGN.md
//! §12.

use super::NmTreeMap;
use crate::key::Key;
use crate::node::Node;
use crate::obs::PendingOps;
use crate::pool::NodeCache;
use nmbst_reclaim::Reclaim;
use std::iter::Peekable;

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Builds a map from an iterator of key-ascending pairs in O(n),
    /// producing a perfectly balanced tree (depth ⌈log₂ n⌉ instead of
    /// the n of a sorted loop-insert).
    ///
    /// Sorted input is the contract and the fast path; unsorted input is
    /// detected in one pass and stable-sorted first, so the result is
    /// always correct. Duplicate keys keep the **first** occurrence, as
    /// in [`insert`](Self::insert).
    ///
    /// # Examples
    ///
    /// ```
    /// use nmbst::NmTreeMap;
    ///
    /// let mut map: NmTreeMap<u64, u64> = NmTreeMap::from_sorted_iter((0..1024).map(|k| (k, k)));
    /// assert_eq!(map.get(&513), Some(513));
    /// let shape = map.check_invariants().unwrap();
    /// assert_eq!(shape.user_keys, 1024);
    /// // Balanced: 10 user levels + the sentinel prefix, not 1024.
    /// assert!(shape.max_depth <= 13);
    /// ```
    pub fn from_sorted_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Self::new();
        map.bulk_extend(iter.into_iter().collect());
        map
    }

    /// Bulk-insert behind `Extend`/`FromIterator`: balanced private
    /// build + single publish when the tree is empty, finger-anchored
    /// sorted inserts otherwise. Input in any order; duplicates keep the
    /// first occurrence.
    pub(crate) fn bulk_extend(&mut self, mut pairs: Vec<(K, V)>) {
        // One-pass sortedness check: strictly ascending keys are both
        // sorted and duplicate-free, so the common presorted case skips
        // the O(n log n) sort *and* the dedup scan.
        if !pairs.windows(2).all(|w| w[0].0 < w[1].0) {
            pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable: first duplicate wins
            pairs.dedup_by(|later, first| later.0 == first.0);
        }
        if pairs.is_empty() {
            return;
        }
        if !self.is_vacant() {
            // Non-empty tree: no single-store publish spot exists. The
            // batch path still profits from the sort (finger-anchored
            // descents).
            self.handle().insert_batch(pairs);
            return;
        }

        let n = pairs.len() as u64;
        let cap = self.leaf_cap;
        let mut cache = self.node_cache();
        let mut it = pairs.into_iter().peekable();
        let nblocks = (n as usize).div_ceil(cap);
        let user_root = build_blocks(&mut cache, &mut it, nblocks, n as usize, cap);
        debug_assert!(it.next().is_none(), "builder consumed every pair");

        // SAFETY: `&mut self` gives exclusive access; sentinels are
        // always live.
        unsafe {
            let s = self.s_node();
            let inf0_leaf = (*s).left.load(&self.pool).ptr();
            debug_assert!(
                (*inf0_leaf).is_leaf(),
                "vacant tree has the ∞₀ leaf under S"
            );
            // The same shape the first insert would produce (Figure 1a
            // at the ∞₀ leaf), generalized to n leaves: an ∞₀-keyed
            // internal with the user subtree left and the reused ∞₀
            // sentinel leaf right.
            let top = Node::new_internal_in(&mut cache, Key::Inf0, user_root, inf0_leaf);
            // The single publish. Plain store: no other thread can hold
            // a reference to this tree (`&mut self`), and the `&mut` →
            // `&` hand-off that first shares it synchronizes everything
            // written here.
            (*s).left.store_unsynchronized(crate::node::clean_edge(top));
        }

        self.metrics.add_pending(&PendingOps {
            inserts: n,
            inserted: n,
            ..PendingOps::default()
        });
    }

    /// `true` if no user key was ever inserted (the ∞₀ sentinel leaf
    /// still hangs directly under `S`). Exact under `&mut self`.
    fn is_vacant(&mut self) -> bool {
        // SAFETY: sentinels are always live; exclusive access.
        unsafe { (*(*self.s_node()).left.load(&self.pool).ptr()).is_leaf() }
    }
}

/// Builds a perfectly balanced external BST over the next `nentries`
/// pairs of `it` (ascending, unique), packed into `nblocks` leaf blocks
/// of up to `cap` entries, returning its root. Every block except
/// possibly the very last is full, so a bulk-loaded tree is maximally
/// compact: ⌈log₂⌈n/cap⌉⌉ pointer hops instead of ⌈log₂ n⌉. Each
/// internal node's routing key is the smallest key of its right subtree,
/// satisfying the external-tree invariant left < key ≤ right.
fn build_blocks<K, V, I>(
    cache: &mut NodeCache<'_>,
    it: &mut Peekable<I>,
    nblocks: usize,
    nentries: usize,
    cap: usize,
) -> *mut Node<K, V>
where
    K: Ord + Clone,
    I: Iterator<Item = (K, V)>,
{
    debug_assert!(nblocks >= 1 && nentries >= 1);
    if nblocks == 1 {
        debug_assert!(nentries <= cap);
        return Node::block_from_iter(cache, it, nentries);
    }
    // Left half: fully packed blocks (the partial block, if any, always
    // lands rightmost, matching what ascending inserts would build).
    let left_blocks = nblocks.div_ceil(2);
    let left_entries = left_blocks * cap;
    let left = build_blocks(cache, it, left_blocks, left_entries, cap);
    // The next pair is the first of the right half: its key is the
    // smallest the right subtree will contain — exactly the routing key
    // an insert-built tree would have used.
    let split = it.peek().expect("right half nonempty").0.clone();
    let right = build_blocks(
        cache,
        it,
        nblocks - left_blocks,
        nentries - left_entries,
        cap,
    );
    Node::new_internal_in(cache, Key::Fin(split), left, right)
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet};
    use nmbst_reclaim::{Ebr, Leaky};

    #[test]
    fn bulk_load_matches_loop_insert_contents() {
        let bulk: NmTreeMap<u64, u64, Ebr> =
            NmTreeMap::from_sorted_iter((0..257).map(|k| (k, k * 3)));
        let loop_built: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        for k in 0..257 {
            loop_built.insert(k, k * 3);
        }
        for k in 0..257 {
            assert_eq!(bulk.get(&k), loop_built.get(&k), "key {k}");
        }
        assert_eq!(bulk.get(&257), None);
    }

    #[test]
    fn bulk_load_is_balanced_and_valid() {
        for n in [1u64, 2, 3, 7, 8, 9, 100, 1000] {
            let mut map: NmTreeMap<u64, (), Leaky> =
                NmTreeMap::from_sorted_iter((0..n).map(|k| (k, ())));
            let shape = map
                .check_invariants()
                .unwrap_or_else(|e| panic!("n={n}: {e}"));
            assert_eq!(shape.user_keys, n as usize);
            // Depth: ⌈log₂ n⌉ user levels + the ∞₀ top internal + the
            // two sentinel levels above it.
            let balanced = (n as usize).next_power_of_two().trailing_zeros() as usize;
            assert!(
                shape.max_depth <= balanced + 3,
                "n={n}: depth {} not balanced",
                shape.max_depth
            );
        }
    }

    #[test]
    fn bulk_load_counts_metrics() {
        let map: NmTreeMap<u64, (), Ebr> = NmTreeMap::from_sorted_iter((0..50).map(|k| (k, ())));
        let m = map.metrics();
        assert_eq!(m.inserts, 50);
        assert_eq!(m.inserted, 50);
        assert_eq!(m.size_estimate, 50);
    }

    #[test]
    fn unsorted_and_duplicate_input_handled() {
        let map: NmTreeMap<i32, &str, Ebr> =
            NmTreeMap::from_sorted_iter([(3, "c"), (1, "first"), (2, "b"), (1, "second")]);
        assert_eq!(map.get(&1), Some("first"), "first duplicate wins");
        assert_eq!(map.get(&2), Some("b"));
        assert_eq!(map.get(&3), Some("c"));
        assert_eq!(map.count(), 3);
    }

    #[test]
    fn empty_bulk_load_is_empty_tree() {
        let mut map: NmTreeMap<u64, (), Ebr> = NmTreeMap::from_sorted_iter(std::iter::empty());
        assert!(map.is_empty());
        map.check_invariants().unwrap();
        // And still usable.
        assert!(map.insert(1, ()));
        assert!(map.contains(&1));
    }

    #[test]
    fn bulk_loaded_tree_supports_all_ops() {
        let mut map: NmTreeMap<u64, u64, Ebr> =
            NmTreeMap::from_sorted_iter((0..128).map(|k| (2 * k, k)));
        assert!(map.insert(3, 999)); // odd key between bulk leaves
        assert!(!map.insert(4, 999)); // bulk key rejected as duplicate
        assert!(map.remove(&0));
        assert!(map.remove(&254));
        assert!(!map.contains(&0));
        assert_eq!(map.get(&3), Some(999));
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 127);
    }

    #[test]
    fn set_twin_round_trip() {
        let set: NmTreeSet<u64, Ebr> = NmTreeSet::from_sorted_iter(0..100);
        for k in 0..100 {
            assert!(set.contains(&k));
        }
        assert!(!set.contains(&100));
    }

    #[test]
    fn bulk_load_concurrent_readers_after_publish() {
        // The `&mut` → `&` hand-off is the publish fence; hammer it.
        let map: NmTreeMap<u64, u64, Ebr> = NmTreeMap::from_sorted_iter((0..512).map(|k| (k, k)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let map = &map;
                s.spawn(move || {
                    for k in 0..512 {
                        assert_eq!(map.get(&k), Some(k));
                    }
                });
            }
        });
    }
}
