//! Read-only operations: search (Algorithm 2, lines 34–39), value access
//! and weakly consistent traversal.

use super::{NmTreeMap, SeekRecord};
use nmbst_reclaim::Reclaim;

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// `true` if `key` is in the map. Linearizable; never blocks and
    /// never restarts: a search is one root-to-leaf descent plus one
    /// in-block scan.
    pub fn contains(&self, key: &K) -> bool {
        let guard = self.reclaim.pin();
        self.metrics.note_search();
        let t = self.metrics.op_timer();
        // SAFETY: `guard` pins this tree's reclaimer for the whole call.
        let found = unsafe { self.contains_in(key, &guard) };
        self.metrics.op_finish(crate::obs::OpClass::Get, t);
        found
    }

    /// [`contains`](Self::contains) against a caller-provided guard —
    /// the shared internal entry point of the plain API and
    /// [`MapHandle`](crate::MapHandle).
    ///
    /// # Safety
    ///
    /// `guard` must pin this tree's reclaimer and stay held for the
    /// whole call.
    pub(crate) unsafe fn contains_in(&self, key: &K, guard: &R::Guard<'_>) -> bool {
        let _ = guard;
        // SAFETY: pinned for the duration of the traversal.
        let leaf = unsafe { self.search_leaf(key) };
        // SAFETY: guard-protected; published blocks are immutable.
        unsafe { (*leaf).find(key).is_ok() }
    }

    /// Applies `f` to the value stored under `key`, if present.
    ///
    /// The reference passed to `f` is valid only during the call (it is
    /// protected by an internal reclamation guard); this is the
    /// zero-copy alternative to [`get`](Self::get).
    pub fn with_value<T>(&self, key: &K, f: impl FnOnce(&V) -> T) -> Option<T> {
        let guard = self.reclaim.pin();
        self.metrics.note_search();
        let t = self.metrics.op_timer();
        // SAFETY: `guard` pins this tree's reclaimer for the whole call.
        let out = unsafe { self.with_value_in(key, f, &guard) };
        self.metrics.op_finish(crate::obs::OpClass::Get, t);
        out
    }

    /// [`with_value`](Self::with_value) against a caller-provided guard.
    ///
    /// # Safety
    ///
    /// Same contract as [`contains_in`](Self::contains_in).
    pub(crate) unsafe fn with_value_in<T>(
        &self,
        key: &K,
        f: impl FnOnce(&V) -> T,
        guard: &R::Guard<'_>,
    ) -> Option<T> {
        let _ = guard;
        // SAFETY: pinned.
        let leaf = unsafe { self.search_leaf(key) };
        // SAFETY: guard-protected; block contents are immutable after
        // publication.
        unsafe {
            match (*leaf).find(key) {
                Ok(pos) => Some(f(&(*leaf).entry_vals()[pos])),
                Err(_) => None,
            }
        }
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.with_value(key, V::clone)
    }

    /// Batch-op read: [`with_value_in`](Self::with_value_in) through a
    /// full record-producing seek anchored at `rec`'s previous position
    /// (see [`seek_finger`](Self::seek_finger)) — unlike the plain read
    /// path's `search_leaf`, this leaves `rec` usable as the next op's
    /// finger. Returns `(value, finger_hit)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`contains_in`](Self::contains_in); when
    /// `finger` is true, `rec` must additionally hold a record produced
    /// under the same continuously-held guard.
    pub(crate) unsafe fn get_from<T>(
        &self,
        key: &K,
        f: impl FnOnce(&V) -> T,
        guard: &R::Guard<'_>,
        rec: &mut SeekRecord<K, V>,
        finger: bool,
    ) -> (Option<T>, bool) {
        let _ = guard;
        // SAFETY: pinned per contract; `finger` vouches for the record.
        let hit = unsafe { self.seek_finger(key, rec, finger) };
        let leaf = rec.leaf;
        // SAFETY: guard-protected; block contents are immutable after
        // publication.
        let value = unsafe {
            match (*leaf).find(key) {
                Ok(pos) => Some(f(&(*leaf).entry_vals()[pos])),
                Err(_) => None,
            }
        };
        (value, hit)
    }

    /// Visits every `(key, value)` pair in ascending key order.
    ///
    /// **Weakly consistent**: every key present for the *entire* call is
    /// reported exactly once, in order. Keys concurrently inserted or
    /// removed may be missed or included; a key removed and re-inserted
    /// during the call may even be reported twice (once through a
    /// detached-but-still-readable subtree, once at its new position),
    /// and keys inserted mid-call into subtrees hoisted by concurrent
    /// deletes can arrive out of order — the usual contract of
    /// concurrent-map iterators. For an exact snapshot use
    /// [`keys`](Self::keys) (requires `&mut`).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        let _guard = self.reclaim.pin();
        let arena = self.arena();
        let mut stack = vec![self.s_node()];
        while let Some(node) = stack.pop() {
            // SAFETY: every pointer on the stack was read from a live
            // edge under the pin.
            unsafe {
                let left = (*node).left.load(arena).ptr();
                if left.is_null() {
                    // Leaf block: entries are stored sorted ascending
                    // (sentinel leaves hold none).
                    for (k, v) in (*node).entry_keys().iter().zip((*node).entry_vals()) {
                        f(k, v);
                    }
                } else {
                    // In-order: right pushed first so left pops first.
                    stack.push((*node).right.load(arena).ptr());
                    stack.push(left);
                }
            }
        }
    }

    /// The number of keys, counted by a weakly consistent traversal.
    /// Exact when no writer is concurrent.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each(|_, _| n += 1);
        n
    }

    /// `true` if a weakly consistent traversal found no keys.
    ///
    /// Short-circuits on the first populated leaf block encountered, so
    /// a populated tree answers in O(depth of leftmost descent), not
    /// O(n).
    pub fn is_empty(&self) -> bool {
        let _guard = self.reclaim.pin();
        let arena = self.arena();
        let mut stack = vec![self.s_node()];
        while let Some(node) = stack.pop() {
            // SAFETY: every pointer on the stack was read from a live
            // edge under the pin.
            unsafe {
                let left = (*node).left.load(arena).ptr();
                if left.is_null() {
                    if (*node).len() > 0 {
                        return false;
                    }
                } else {
                    stack.push((*node).right.load(arena).ptr());
                    stack.push(left);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::NmTreeMap;
    use nmbst_reclaim::Ebr;

    #[test]
    fn with_value_zero_copy() {
        let map: NmTreeMap<u32, Vec<u8>, Ebr> = NmTreeMap::new();
        map.insert(1, vec![1, 2, 3]);
        let len = map.with_value(&1, |v| v.len());
        assert_eq!(len, Some(3));
        assert_eq!(map.with_value(&2, |v| v.len()), None);
    }

    #[test]
    fn for_each_in_ascending_order() {
        let map: NmTreeMap<i64, i64, Ebr> = NmTreeMap::new();
        let keys = [9, 1, 7, 3, 5, 8, 2, 6, 4, 0];
        for k in keys {
            map.insert(k, k * 10);
        }
        let mut seen = Vec::new();
        map.for_each(|k, v| {
            assert_eq!(*v, k * 10);
            seen.push(*k);
        });
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn count_and_is_empty() {
        let map: NmTreeMap<i64, (), Ebr> = NmTreeMap::new();
        assert!(map.is_empty());
        assert_eq!(map.count(), 0);
        for k in 0..37 {
            map.insert(k, ());
        }
        assert_eq!(map.count(), 37);
        map.remove(&0);
        assert_eq!(map.count(), 36);
        assert!(!map.is_empty());
    }

    #[test]
    fn for_each_skips_sentinels_on_empty_tree() {
        let map: NmTreeMap<i64, (), Ebr> = NmTreeMap::new();
        let mut called = false;
        map.for_each(|_, _| called = true);
        assert!(!called);
    }
}
