//! Ordered queries: range traversal with subtree pruning, minimum and
//! maximum. All weakly consistent, like [`for_each`](NmTreeMap::for_each):
//! each visited key was present at some moment during the call.

use super::NmTreeMap;
use crate::key::Key;
use nmbst_reclaim::Reclaim;
use std::ops::{Bound, RangeBounds};

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Visits every `(key, value)` with key inside `range`, in ascending
    /// order, pruning subtrees that cannot intersect it.
    ///
    /// # Examples
    ///
    /// ```
    /// use nmbst::NmTreeMap;
    ///
    /// let map: NmTreeMap<u32, u32> = NmTreeMap::new();
    /// for k in 0..100 {
    ///     map.insert(k, k * 2);
    /// }
    /// let mut hits = Vec::new();
    /// map.range_for_each(10..13, |k, _| hits.push(*k));
    /// assert_eq!(hits, vec![10, 11, 12]);
    /// ```
    pub fn range_for_each<Q: RangeBounds<K>>(&self, range: Q, mut f: impl FnMut(&K, &V)) {
        let _guard = self.reclaim.pin();
        // A routing key `nk` splits its node into: left = keys < nk,
        // right = keys ≥ nk.
        let may_go_left = |nk: &Key<K>| match range.start_bound() {
            Bound::Unbounded => true,
            // Keys below `nk` can intersect [s, ..) / (s, ..) iff s < nk.
            Bound::Included(s) | Bound::Excluded(s) => {
                nk.cmp_user(s) == std::cmp::Ordering::Greater
            }
        };
        let may_go_right = |nk: &Key<K>| match range.end_bound() {
            Bound::Unbounded => true,
            // Keys ≥ nk can intersect (.., e] iff nk ≤ e.
            Bound::Included(e) => nk.cmp_user(e) != std::cmp::Ordering::Greater,
            // Keys ≥ nk can intersect (.., e) iff nk < e.
            Bound::Excluded(e) => nk.cmp_user(e) == std::cmp::Ordering::Less,
        };
        let mut stack = vec![self.s_node()];
        while let Some(node) = stack.pop() {
            // SAFETY: pointers read from live edges under the pin.
            unsafe {
                let left = (*node).left.load().ptr();
                if left.is_null() {
                    if let (Key::Fin(k), Some(v)) = (&(*node).key, &(*node).value) {
                        if range.contains(k) {
                            f(k, v);
                        }
                    }
                } else {
                    let nk = &(*node).key;
                    if may_go_right(nk) {
                        stack.push((*node).right.load().ptr());
                    }
                    if may_go_left(nk) {
                        stack.push(left);
                    }
                }
            }
        }
    }

    /// Collects the keys (and cloned values) inside `range`, ascending.
    pub fn range_collect<Q: RangeBounds<K>>(&self, range: Q) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.range_for_each(range, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// The smallest key (with its value), or `None` if empty.
    ///
    /// One left-spine descent: the leftmost leaf is the minimum user key
    /// (or the ∞₀ sentinel when the tree is empty).
    pub fn first(&self) -> Option<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let _guard = self.reclaim.pin();
        let mut node = self.s_node();
        // SAFETY: descent under the pin; sentinels are permanent.
        unsafe {
            loop {
                let left = (*node).left.load().ptr();
                if left.is_null() {
                    break;
                }
                node = left;
            }
            match (&(*node).key, &(*node).value) {
                (Key::Fin(k), Some(v)) => Some((k.clone(), v.clone())),
                _ => None,
            }
        }
    }

    /// The largest key (with its value), or `None` if empty.
    ///
    /// Right-first depth-first search returning the first finite leaf;
    /// the sentinel leaves at the far right are skipped by backtracking.
    pub fn last(&self) -> Option<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let _guard = self.reclaim.pin();
        let mut stack = vec![self.s_node()];
        while let Some(node) = stack.pop() {
            // SAFETY: descent under the pin.
            unsafe {
                let left = (*node).left.load().ptr();
                if left.is_null() {
                    if let (Key::Fin(k), Some(v)) = (&(*node).key, &(*node).value) {
                        return Some((k.clone(), v.clone()));
                    }
                    // Sentinel leaf: backtrack.
                } else {
                    // Left pushed first so right pops (and resolves) first.
                    stack.push(left);
                    stack.push((*node).right.load().ptr());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet};
    use nmbst_reclaim::Ebr;

    fn map_0_to(n: u32) -> NmTreeMap<u32, u32, Ebr> {
        let m = NmTreeMap::new();
        for k in 0..n {
            m.insert(k, k * 10);
        }
        m
    }

    #[test]
    fn range_inclusive_exclusive_unbounded() {
        let m = map_0_to(50);
        assert_eq!(
            m.range_collect(10..15)
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>(),
            vec![10, 11, 12, 13, 14]
        );
        assert_eq!(
            m.range_collect(10..=12)
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(m.range_collect(..3).len(), 3);
        assert_eq!(m.range_collect(47..).len(), 3);
        assert_eq!(m.range_collect(..).len(), 50);
        assert!(m.range_collect(20..20).is_empty());
        assert!(m.range_collect(60..80).is_empty());
    }

    #[test]
    fn range_values_come_along() {
        let m = map_0_to(10);
        let pairs = m.range_collect(4..6);
        assert_eq!(pairs, vec![(4, 40), (5, 50)]);
    }

    #[test]
    fn range_on_empty_tree() {
        let m: NmTreeMap<u32, u32, Ebr> = NmTreeMap::new();
        assert!(m.range_collect(..).is_empty());
        assert_eq!(m.first(), None);
        assert_eq!(m.last(), None);
    }

    #[test]
    fn first_and_last_track_membership() {
        let m = map_0_to(0);
        m.insert(500, 0);
        assert_eq!(m.first().map(|(k, _)| k), Some(500));
        assert_eq!(m.last().map(|(k, _)| k), Some(500));
        m.insert(100, 0);
        m.insert(900, 0);
        assert_eq!(m.first().map(|(k, _)| k), Some(100));
        assert_eq!(m.last().map(|(k, _)| k), Some(900));
        m.remove(&900);
        assert_eq!(m.last().map(|(k, _)| k), Some(500));
        m.remove(&100);
        m.remove(&500);
        assert_eq!(m.first(), None);
        assert_eq!(m.last(), None);
    }

    #[test]
    fn range_matches_model_randomly() {
        let m: NmTreeMap<u64, (), Ebr> = NmTreeMap::new();
        let mut model = std::collections::BTreeSet::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 512;
            if x & 1 == 0 {
                m.insert(k, ());
                model.insert(k);
            } else {
                m.remove(&k);
                model.remove(&k);
            }
            // Occasionally compare a random window.
            if x.is_multiple_of(17) {
                let lo = x.rotate_left(7) % 512;
                let hi = (lo + x % 64).min(512);
                let got: Vec<u64> = m
                    .range_collect(lo..hi)
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                let want: Vec<u64> = model.range(lo..hi).copied().collect();
                assert_eq!(got, want, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn set_range_and_extremes() {
        let s: NmTreeSet<i64, Ebr> = NmTreeSet::new();
        for k in [-5i64, 0, 5, 10] {
            s.insert(k);
        }
        let mut got = Vec::new();
        s.range_for_each(-5..=5, |k| got.push(*k));
        assert_eq!(got, vec![-5, 0, 5]);
        assert_eq!(s.first(), Some(-5));
        assert_eq!(s.last(), Some(10));
    }

    #[test]
    fn range_concurrent_with_writers_does_not_crash() {
        let m: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        for k in 0..256 {
            m.insert(k, k);
        }
        std::thread::scope(|s| {
            let m = &m;
            s.spawn(move || {
                for round in 0..200u64 {
                    for k in 0..256 {
                        if (k + round) % 3 == 0 {
                            m.remove(&k);
                        } else {
                            m.insert(k, k);
                        }
                    }
                }
            });
            s.spawn(move || {
                for _ in 0..500 {
                    let mut seen_stable = std::collections::HashSet::new();
                    m.range_for_each(64..192, |k, _| {
                        assert!((64..192).contains(k));
                        // Keys of the *stable* residue (k % 3 != 0 for all
                        // rounds is not stable here; none are) cannot be
                        // asserted unique: concurrent remove+reinsert can
                        // surface a key twice, and concurrent inserts into
                        // hoisted subtrees can appear out of order. Only
                        // range membership and termination are guaranteed
                        // mid-churn.
                        seen_stable.insert(*k);
                    });
                }
            });
        });
    }
}
