//! Ordered queries: range traversal with subtree pruning, minimum and
//! maximum. All weakly consistent, like [`for_each`](NmTreeMap::for_each):
//! each visited key was present at some moment during the call.

use super::NmTreeMap;
use crate::key::Key;
use crate::node::{prefetch_wide, Node};
use nmbst_reclaim::Reclaim;
use std::ops::{Bound, RangeBounds};

/// Inline capacity of [`TraversalStack`]. A DFS stack never holds more
/// than one pending sibling per level of the current path, so 64 slots
/// cover any balanced tree (2⁶⁰⁺ keys) without touching the heap; only
/// adversarially degenerate shapes (e.g. a loop-inserted sorted stream)
/// spill.
const INLINE_STACK: usize = 64;

/// A DFS stack for tree traversals with inline storage: the first
/// [`INLINE_STACK`] entries live on the *caller's* stack frame, so the
/// common case does zero heap allocation; deeper pushes spill to a heap
/// `Vec`.
///
/// Invariant: every spill entry is newer than every inline entry, so
/// `pop` drains the spill first — which also means the inline half can
/// never be part-empty while the spill is non-empty.
struct TraversalStack<K, V> {
    inline: [*mut Node<K, V>; INLINE_STACK],
    len: usize,
    spill: Vec<*mut Node<K, V>>,
}

impl<K, V> TraversalStack<K, V> {
    #[inline]
    fn new(root: *mut Node<K, V>) -> Self {
        let mut s = TraversalStack {
            inline: [std::ptr::null_mut(); INLINE_STACK],
            len: 0,
            spill: Vec::new(),
        };
        s.push(root);
        s
    }

    #[inline]
    fn push(&mut self, node: *mut Node<K, V>) {
        if self.len < INLINE_STACK && self.spill.is_empty() {
            self.inline[self.len] = node;
            self.len += 1;
        } else {
            self.spill.push(node);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<*mut Node<K, V>> {
        self.spill.pop().or_else(|| {
            self.len = self.len.checked_sub(1)?;
            Some(self.inline[self.len])
        })
    }

    /// Hints the next frame to pop — header line plus entry line, since
    /// a traversal block-scans every leaf it visits.
    #[inline]
    fn prefetch_top(&self) {
        let next = self
            .spill
            .last()
            .copied()
            .or_else(|| self.len.checked_sub(1).map(|i| self.inline[i]));
        if let Some(node) = next {
            prefetch_wide(node);
        }
    }
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Visits every `(key, value)` with key inside `range`, in ascending
    /// order, pruning subtrees that cannot intersect it.
    ///
    /// # Examples
    ///
    /// ```
    /// use nmbst::NmTreeMap;
    ///
    /// let map: NmTreeMap<u32, u32> = NmTreeMap::new();
    /// for k in 0..100 {
    ///     map.insert(k, k * 2);
    /// }
    /// let mut hits = Vec::new();
    /// map.range_for_each(10..13, |k, _| hits.push(*k));
    /// assert_eq!(hits, vec![10, 11, 12]);
    /// ```
    pub fn range_for_each<Q: RangeBounds<K>>(&self, range: Q, mut f: impl FnMut(&K, &V)) {
        let _guard = self.reclaim.pin();
        // Whole-call timing (one clock pair amortized over the scan).
        let t = self.metrics.call_timer();
        // A routing key `nk` splits its node into: left = keys < nk,
        // right = keys ≥ nk.
        let may_go_left = |nk: &Key<K>| match range.start_bound() {
            Bound::Unbounded => true,
            // Keys below `nk` can intersect [s, ..) / (s, ..) iff s < nk.
            Bound::Included(s) | Bound::Excluded(s) => {
                nk.cmp_user(s) == std::cmp::Ordering::Greater
            }
        };
        let may_go_right = |nk: &Key<K>| match range.end_bound() {
            Bound::Unbounded => true,
            // Keys ≥ nk can intersect (.., e] iff nk ≤ e.
            Bound::Included(e) => nk.cmp_user(e) != std::cmp::Ordering::Greater,
            // Keys ≥ nk can intersect (.., e) iff nk < e.
            Bound::Excluded(e) => nk.cmp_user(e) == std::cmp::Ordering::Less,
        };
        let arena = self.arena();
        let mut stack = TraversalStack::new(self.s_node());
        while let Some(node) = stack.pop() {
            // The scan visits (and block-scans) every node it pops, so
            // fetching both the header line and the entry lines of the
            // *next* frame overlaps this frame's work.
            stack.prefetch_top();
            // SAFETY: pointers read from live edges under the pin.
            unsafe {
                let left = (*node).left.load(arena).ptr();
                if left.is_null() {
                    // Leaf block: entries are sorted, so the in-range ones
                    // form a contiguous run.
                    for (k, v) in (*node).entry_keys().iter().zip((*node).entry_vals()) {
                        if range.contains(k) {
                            f(k, v);
                        }
                    }
                } else {
                    let nk = &(*node).key;
                    if may_go_right(nk) {
                        stack.push((*node).right.load(arena).ptr());
                    }
                    if may_go_left(nk) {
                        stack.push(left);
                    }
                }
            }
        }
        self.metrics.op_finish(crate::obs::OpClass::Range, t);
    }

    /// Collects the keys (and cloned values) inside `range`, ascending.
    pub fn range_collect<Q: RangeBounds<K>>(&self, range: Q) -> Vec<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let mut out = Vec::new();
        self.range_for_each(range, |k, v| out.push((k.clone(), v.clone())));
        out
    }

    /// The smallest key (with its value), or `None` if empty.
    ///
    /// One left-spine descent: the leftmost leaf is the minimum user key
    /// (or the ∞₀ sentinel when the tree is empty).
    pub fn first(&self) -> Option<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let _guard = self.reclaim.pin();
        let arena = self.arena();
        let mut node = self.s_node();
        // SAFETY: descent under the pin; sentinels are permanent.
        unsafe {
            loop {
                let left = (*node).left.load(arena).ptr();
                if left.is_null() {
                    break;
                }
                node = left;
            }
            // The leftmost leaf is a sentinel only when the tree is
            // empty; otherwise its first (smallest) entry is the minimum.
            let keys = (*node).entry_keys();
            let vals = (*node).entry_vals();
            keys.first().map(|k| (k.clone(), vals[0].clone()))
        }
    }

    /// The largest key (with its value), or `None` if empty.
    ///
    /// Right-first depth-first search returning the first finite leaf;
    /// the sentinel leaves at the far right are skipped by backtracking.
    pub fn last(&self) -> Option<(K, V)>
    where
        K: Clone,
        V: Clone,
    {
        let _guard = self.reclaim.pin();
        let arena = self.arena();
        let mut stack = TraversalStack::new(self.s_node());
        while let Some(node) = stack.pop() {
            // SAFETY: descent under the pin.
            unsafe {
                let left = (*node).left.load(arena).ptr();
                if left.is_null() {
                    let n = (*node).len();
                    if n > 0 {
                        // Rightmost populated block: its last entry is
                        // the maximum.
                        return Some((
                            (*node).entry_keys()[n - 1].clone(),
                            (*node).entry_vals()[n - 1].clone(),
                        ));
                    }
                    // Sentinel leaf: backtrack.
                } else {
                    // Left pushed first so right pops (and resolves) first.
                    stack.push(left);
                    stack.push((*node).right.load(arena).ptr());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, NmTreeSet, TreeConfig};
    use nmbst_reclaim::Ebr;

    fn map_0_to(n: u32) -> NmTreeMap<u32, u32, Ebr> {
        let m = NmTreeMap::new();
        for k in 0..n {
            m.insert(k, k * 10);
        }
        m
    }

    #[test]
    fn range_inclusive_exclusive_unbounded() {
        let m = map_0_to(50);
        assert_eq!(
            m.range_collect(10..15)
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>(),
            vec![10, 11, 12, 13, 14]
        );
        assert_eq!(
            m.range_collect(10..=12)
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        assert_eq!(m.range_collect(..3).len(), 3);
        assert_eq!(m.range_collect(47..).len(), 3);
        assert_eq!(m.range_collect(..).len(), 50);
        assert!(m.range_collect(20..20).is_empty());
        assert!(m.range_collect(60..80).is_empty());
    }

    #[test]
    fn range_values_come_along() {
        let m = map_0_to(10);
        let pairs = m.range_collect(4..6);
        assert_eq!(pairs, vec![(4, 40), (5, 50)]);
    }

    #[test]
    fn range_on_empty_tree() {
        let m: NmTreeMap<u32, u32, Ebr> = NmTreeMap::new();
        assert!(m.range_collect(..).is_empty());
        assert_eq!(m.first(), None);
        assert_eq!(m.last(), None);
    }

    #[test]
    fn first_and_last_track_membership() {
        let m = map_0_to(0);
        m.insert(500, 0);
        assert_eq!(m.first().map(|(k, _)| k), Some(500));
        assert_eq!(m.last().map(|(k, _)| k), Some(500));
        m.insert(100, 0);
        m.insert(900, 0);
        assert_eq!(m.first().map(|(k, _)| k), Some(100));
        assert_eq!(m.last().map(|(k, _)| k), Some(900));
        m.remove(&900);
        assert_eq!(m.last().map(|(k, _)| k), Some(500));
        m.remove(&100);
        m.remove(&500);
        assert_eq!(m.first(), None);
        assert_eq!(m.last(), None);
    }

    #[test]
    fn range_matches_model_randomly() {
        let m: NmTreeMap<u64, (), Ebr> = NmTreeMap::new();
        let mut model = std::collections::BTreeSet::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 512;
            if x & 1 == 0 {
                m.insert(k, ());
                model.insert(k);
            } else {
                m.remove(&k);
                model.remove(&k);
            }
            // Occasionally compare a random window.
            if x.is_multiple_of(17) {
                let lo = x.rotate_left(7) % 512;
                let hi = (lo + x % 64).min(512);
                let got: Vec<u64> = m
                    .range_collect(lo..hi)
                    .into_iter()
                    .map(|(k, _)| k)
                    .collect();
                let want: Vec<u64> = model.range(lo..hi).copied().collect();
                assert_eq!(got, want, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn set_range_and_extremes() {
        let s: NmTreeSet<i64, Ebr> = NmTreeSet::new();
        for k in [-5i64, 0, 5, 10] {
            s.insert(k);
        }
        let mut got = Vec::new();
        s.range_for_each(-5..=5, |k| got.push(*k));
        assert_eq!(got, vec![-5, 0, 5]);
        assert_eq!(s.first(), Some(-5));
        assert_eq!(s.last(), Some(10));
    }

    #[test]
    fn degenerate_deep_tree_spills_and_stays_correct() {
        // Loop-inserting an ascending stream builds a right spine ~400
        // deep — far past INLINE_STACK — so this drives the spill path
        // of `TraversalStack` end to end. Single-entry leaves keep the
        // spine one node per key (fat blocks would compress it 8×).
        let m: NmTreeMap<u32, u32, Ebr> =
            NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(1));
        for k in 0..400 {
            m.insert(k, k);
        }
        let got: Vec<u32> = m.range_collect(..).into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, (0..400).collect::<Vec<_>>());
        let window: Vec<u32> = m
            .range_collect(100..300)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(window, (100..300).collect::<Vec<_>>());
        assert_eq!(m.last().map(|(k, _)| k), Some(399));
    }

    /// The PR 5 chaos satellite: a traversal racing a splice must report
    /// every key that is present for the *whole* call window. The
    /// deleter is parked deterministically between its tag and its
    /// splice CAS ([`Point::Splice`]) — the victim is flagged and its
    /// parent tagged, so the traversal crosses marked edges mid-surgery
    /// — and every innocent key must still surface.
    #[cfg(feature = "chaos")]
    #[test]
    fn range_during_stalled_splice_reports_every_stable_key() {
        use crate::chaos::{FaultPlan, Point, StallCell};

        for victim in [3u32, 10, 17] {
            // cap 1: every remove runs the flag/tag/splice protocol (a
            // multi-entry block would COW instead and never reach the
            // stalled point).
            let m: NmTreeMap<u32, u32, Ebr> =
                NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(1));
            for k in 0..20 {
                m.insert(k, k);
            }
            let cell = StallCell::new();
            std::thread::scope(|s| {
                let deleter_cell = cell.clone();
                let m2 = &m;
                s.spawn(move || {
                    let removed = FaultPlan::new()
                        .stall_at(Point::Splice, deleter_cell)
                        .run(|| m2.remove(&victim));
                    assert!(removed, "victim {victim} was present");
                });
                // Only traverse once the deleter is provably parked
                // mid-splice; every run exercises the same window. The
                // tested guarantee (DESIGN.md §8, and the server's SCAN
                // verb): every key present for the entire call is
                // visited **exactly once** — the mid-splice chain, with
                // its transient second path to the hoisted sibling, must
                // yield neither misses nor duplicates.
                cell.wait_arrival();
                let mut seen = std::collections::BTreeMap::new();
                m.range_for_each(.., |k, _| {
                    *seen.entry(*k).or_insert(0u32) += 1;
                });
                for k in (0..20).filter(|k| *k != victim) {
                    assert_eq!(
                        seen.get(&k),
                        Some(&1),
                        "stable key {k} must appear exactly once mid-splice"
                    );
                }
                // The victim is logically deleted (its edge is flagged)
                // but may still be physically present: at most once.
                assert!(
                    seen.get(&victim).is_none_or(|c| *c == 1),
                    "victim {victim} duplicated mid-splice"
                );
                cell.resume();
            });
            assert!(!m.contains(&victim));
            let mut m = m;
            let shape = m.check_invariants().unwrap();
            assert_eq!(shape.user_keys, 19);
        }
    }

    /// The same exactly-once guarantee at the *other* deterministic
    /// window — the deleter parked between the flag and the tag (the
    /// hoisted edge not yet tagged) — and through a *bounded* range, so
    /// the pruned descent crosses the in-progress delete too.
    #[test]
    #[cfg(feature = "chaos")]
    fn bounded_range_during_stalled_tag_is_exactly_once() {
        use crate::chaos::{FaultPlan, Point, StallCell};

        for victim in [5u32, 11] {
            // cap 1: see `range_during_stalled_splice_reports_every_stable_key`.
            let m: NmTreeMap<u32, u32, Ebr> =
                NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(1));
            for k in 0..24 {
                m.insert(k, k);
            }
            let cell = StallCell::new();
            std::thread::scope(|s| {
                let deleter_cell = cell.clone();
                let m2 = &m;
                s.spawn(move || {
                    let removed = FaultPlan::new()
                        .stall_at(Point::Tag, deleter_cell)
                        .run(|| m2.remove(&victim));
                    assert!(removed, "victim {victim} was present");
                });
                cell.wait_arrival();
                let mut seen = std::collections::BTreeMap::new();
                m.range_for_each(4..=20, |k, _| {
                    *seen.entry(*k).or_insert(0u32) += 1;
                });
                for k in (4..=20).filter(|k| *k != victim) {
                    assert_eq!(
                        seen.get(&k),
                        Some(&1),
                        "stable key {k} must appear exactly once mid-tag"
                    );
                }
                assert!(
                    seen.get(&victim).is_none_or(|c| *c == 1),
                    "victim {victim} duplicated mid-tag"
                );
                assert!(
                    seen.keys().all(|k| (4..=20).contains(k)),
                    "keys outside the bound leaked into the range"
                );
                cell.resume();
            });
            assert!(!m.contains(&victim));
            let mut m = m;
            let shape = m.check_invariants().unwrap();
            assert_eq!(shape.user_keys, 23);
        }
    }

    #[test]
    fn range_concurrent_with_writers_does_not_crash() {
        let m: NmTreeMap<u64, u64, Ebr> = NmTreeMap::new();
        for k in 0..256 {
            m.insert(k, k);
        }
        std::thread::scope(|s| {
            let m = &m;
            s.spawn(move || {
                for round in 0..200u64 {
                    for k in 0..256 {
                        if (k + round) % 3 == 0 {
                            m.remove(&k);
                        } else {
                            m.insert(k, k);
                        }
                    }
                }
            });
            s.spawn(move || {
                for _ in 0..500 {
                    let mut seen_stable = std::collections::HashSet::new();
                    m.range_for_each(64..192, |k, _| {
                        assert!((64..192).contains(k));
                        // Keys of the *stable* residue (k % 3 != 0 for all
                        // rounds is not stable here; none are) cannot be
                        // asserted unique: concurrent remove+reinsert can
                        // surface a key twice, and concurrent inserts into
                        // hoisted subtrees can appear out of order. Only
                        // range membership and termination are guaranteed
                        // mid-churn.
                        seen_stable.insert(*k);
                    });
                }
            });
        });
    }
}
