//! The lock-free external BST (the paper's Algorithm 1–4).

mod bulk;
mod collect;
mod dot;
mod range;
mod read;
mod seek;
mod validate;
mod whitebox;
mod write;

pub use validate::TreeShape;

pub(crate) use seek::SeekRecord;

use crate::handle::MapHandle;
use crate::node::{self, Node, LEAF_CAP};
use crate::obs::{self, LatencyConfig, MetricsSnapshot};
use crate::packed::TagMode;
use crate::pool::{NodeCache, PoolConfig, HANDLE_CACHE_CAP};
use nmbst_reclaim::{Ebr, NodePool, Reclaim};
use std::alloc::Layout;
use std::marker::PhantomData;
use std::sync::Arc;

/// Where a modify operation restarts its descent after a failed CAS.
///
/// The paper restarts every retry from the root. Chatterjee et al.
/// (arXiv:1404.3272) observe that most CAS failures are *local* — the
/// conflicting operation touched only the bottom of the access path —
/// so restarting from the last recorded untagged anchor skips the
/// redundant prefix. The anchor is revalidated before use and any doubt
/// falls back to a full root seek, so both policies execute the same
/// set of linearizable interleavings (see DESIGN.md, "Local restart").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Retry from the seek record's `(ancestor → successor)` edge when
    /// it revalidates; fall back to the root otherwise.
    #[default]
    Local,
    /// Always retry from the root (the paper's Algorithm 2/3 verbatim).
    Root,
}

/// Every tuning knob of a tree, bundled so constructors stay stable as
/// knobs accrue. `TreeConfig::default()` is the shipping configuration;
/// builder-style `with_*` methods override one knob at a time:
///
/// ```
/// use nmbst::{NmTreeMap, PoolConfig, TreeConfig};
///
/// let ablation = TreeConfig::default()
///     .with_pool(PoolConfig::disabled())
///     .with_leaf_cap(1); // the pre-PR 7 one-key-per-leaf shape
/// let map: NmTreeMap<u64, u64> = NmTreeMap::with_config(ablation);
/// assert!(map.insert(1, 10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// BTS vs CAS-only tagging in the cleanup routine (§6).
    pub tag_mode: TagMode,
    /// Root vs local restart for modify-path retries.
    pub restart: RestartPolicy,
    /// Node-recycling pool: on/off and free-list capacity.
    pub pool: PoolConfig,
    /// Maximum entries per leaf block, `1..=LEAF_CAP` (values outside are
    /// clamped). `1` reproduces the classic one-key-per-leaf shape
    /// exactly (every insert publishes a two-node subtree, every remove
    /// runs flag/tag/splice); the default packs a cache line.
    pub leaf_cap: usize,
    /// Latency recording behavior: sampling rate and slow-op threshold
    /// (ignored when compiled without `feature = "obs-latency"`).
    pub lat: LatencyConfig,
}

impl TreeConfig {
    /// Overrides the [`TagMode`] knob.
    pub fn with_tag_mode(mut self, tag_mode: TagMode) -> Self {
        self.tag_mode = tag_mode;
        self
    }

    /// Overrides the [`RestartPolicy`] knob.
    pub fn with_restart(mut self, restart: RestartPolicy) -> Self {
        self.restart = restart;
        self
    }

    /// Overrides the [`PoolConfig`] knob.
    pub fn with_pool(mut self, pool: PoolConfig) -> Self {
        self.pool = pool;
        self
    }

    /// Overrides the leaf-block capacity (clamped to `1..=LEAF_CAP` at
    /// tree construction).
    pub fn with_leaf_cap(mut self, leaf_cap: usize) -> Self {
        self.leaf_cap = leaf_cap;
        self
    }

    /// Overrides the [`LatencyConfig`] knob.
    pub fn with_latency(mut self, lat: LatencyConfig) -> Self {
        self.lat = lat;
        self
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            tag_mode: TagMode::default(),
            restart: RestartPolicy::default(),
            pool: PoolConfig::default(),
            leaf_cap: LEAF_CAP,
            lat: LatencyConfig::default(),
        }
    }
}

/// A concurrent lock-free ordered map backed by the Natarajan–Mittal
/// external binary search tree, with cache-line leaf blocks.
///
/// * `search`/`get`/`contains` are wait-free with respect to other
///   readers and lock-free overall.
/// * `insert` publishes with **one** CAS; `remove` of a multi-entry leaf
///   publishes a copied block with **one** CAS, and removing a leaf's
///   last entry needs one CAS to linearize (flagging the victim's
///   incoming edge) and two more atomic instructions (a BTS and a CAS)
///   to physically splice — the costs of Table 1 at `leaf_cap = 1`.
/// * Conflicts are coordinated purely through two bits stolen from child
///   edge words; there are no operation descriptor objects and helping
///   never allocates.
///
/// Nodes live in a per-tree slab arena addressed by `u32` slot indices
/// (half-width edges); user keys live in immutable sorted leaf blocks of
/// up to [`TreeConfig::leaf_cap`] entries.
///
/// The tree is generic over the reclamation scheme `R`
/// ([`Ebr`](nmbst_reclaim::Ebr) by default;
/// [`Leaky`](nmbst_reclaim::Leaky) reproduces the paper's no-reclamation
/// evaluation mode).
///
/// Keys follow the paper's dictionary semantics: duplicates are
/// rejected, `insert` returns whether the key set changed, and values
/// are immutable once inserted (no in-place update operation exists in
/// the algorithm).
///
/// # Examples
///
/// ```
/// use nmbst::NmTreeMap;
///
/// let map: NmTreeMap<u64, &str> = NmTreeMap::new();
/// assert!(map.insert(3, "three"));
/// assert!(!map.insert(3, "again")); // duplicate key rejected
/// assert_eq!(map.get(&3), Some("three"));
/// assert!(map.remove(&3));
/// assert_eq!(map.get(&3), None);
/// ```
pub struct NmTreeMap<K, V, R: Reclaim = Ebr> {
    /// The permanent sentinel root `R` (key ∞₂); see
    /// [`node::sentinel_tree`].
    pub(crate) root: *mut Node<K, V>,
    pub(crate) reclaim: R,
    pub(crate) tag_mode: TagMode,
    pub(crate) restart: RestartPolicy,
    /// Effective leaf-block capacity, `1..=LEAF_CAP`.
    pub(crate) leaf_cap: usize,
    pub(crate) metrics: obs::Metrics,
    /// The slab arena every node of this tree lives in. Declared after
    /// `reclaim` so the reclaimer — whose drop runs pending recycle
    /// deferrals against arena slots — goes first; deferrals that outlive
    /// even that (straggler collector threads) are covered by the `Arc`
    /// clone parked in the reclaimer at construction.
    pub(crate) pool: Arc<NodePool>,
    /// The tree logically owns its nodes.
    _own: PhantomData<Box<Node<K, V>>>,
}

// SAFETY: all shared mutation goes through atomic edges; nodes move
// between threads (retirement / value reads), hence `Send + Sync` on both
// parameters.
unsafe impl<K: Send + Sync, V: Send + Sync, R: Reclaim> Send for NmTreeMap<K, V, R> {}
unsafe impl<K: Send + Sync, V: Send + Sync, R: Reclaim> Sync for NmTreeMap<K, V, R> {}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::with_tag_mode(TagMode::default())
    }

    /// Creates an empty map using the given [`TagMode`] for the cleanup
    /// routine's tag step (BTS vs CAS-only; see §6 and the `ablation_bts`
    /// bench).
    pub fn with_tag_mode(tag_mode: TagMode) -> Self {
        Self::with_config(TreeConfig::default().with_tag_mode(tag_mode))
    }

    /// Creates an empty map using the given [`RestartPolicy`] for the
    /// modify-path retry loops (see the `perf` bin's root-vs-local
    /// restart cells).
    pub fn with_restart_policy(restart: RestartPolicy) -> Self {
        Self::with_config(TreeConfig::default().with_restart(restart))
    }

    /// Creates an empty map with every tuning knob explicit.
    pub fn with_config(config: TreeConfig) -> Self {
        let pool = Arc::new(NodePool::new(
            Layout::new::<Node<K, V>>(),
            config.pool.effective_capacity(),
        ));
        let reclaim = R::new();
        // Recycle deferrals reference the pool by raw pointer; this
        // parked clone is what keeps it alive for straggling collector
        // threads that run deferrals after the tree is gone (see
        // `pool::recycle_deferred`). The arena is the node store now, so
        // the keepalive is unconditional.
        reclaim.hold(Box::new(Arc::clone(&pool)));
        let root = node::sentinel_tree(&mut NodeCache::direct(&pool));
        NmTreeMap {
            root,
            reclaim,
            tag_mode: config.tag_mode,
            restart: config.restart,
            leaf_cap: config.leaf_cap.clamp(1, LEAF_CAP),
            metrics: obs::Metrics::new(config.lat),
            pool,
            _own: PhantomData,
        }
    }

    /// A point-in-time [`MetricsSnapshot`] of this tree: operation
    /// counters, size estimate, depth histogram and max observed depth,
    /// the reclaimer's health gauges, and the node pool's hit/recycle
    /// stats. Cheap (sums a few cache lines); never blocks operations.
    /// See the [`obs`](crate::obs) module docs.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.reclaim.gauges(), Some(self.pool.stats()))
    }

    /// The arena every node of this tree lives in: the context for
    /// resolving edge words into node addresses.
    #[inline]
    pub(crate) fn arena(&self) -> &NodePool {
        &self.pool
    }

    /// A transient [`NodeCache`] for one plain-API modify call: no local
    /// slot hoarding, shared pool touched directly.
    #[inline]
    pub(crate) fn node_cache(&self) -> NodeCache<'_> {
        NodeCache::direct(&self.pool)
    }

    /// The [`NodeCache`] a long-lived handle embeds: keeps a private
    /// slot stash so hot loops skip the shared free list.
    pub(crate) fn handle_cache(&self) -> NodeCache<'_> {
        NodeCache::with_local(&self.pool, HANDLE_CACHE_CAP)
    }

    /// Pins the current thread, returning a guard other read methods can
    /// amortize over (see [`with_value`](Self::with_value)).
    pub fn pin(&self) -> R::Guard<'_> {
        self.reclaim.pin()
    }

    /// Makes this thread's retired nodes eligible for reclamation
    /// without waiting for thread exit (see
    /// [`Reclaim::flush`]).
    pub fn flush(&self) {
        self.reclaim.flush();
    }

    /// The sentinel routing node `S` (key ∞₁): the left child of `R`.
    /// Its incoming edge is never marked.
    #[inline]
    pub(crate) fn s_node(&self) -> *mut Node<K, V> {
        // SAFETY: `root` is always the live sentinel `R`, whose left edge
        // is never marked and always points at the live sentinel `S`.
        unsafe { (*self.root).left.load(&self.pool).ptr() }
    }
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Returns a pin-amortizing [`MapHandle`] bound to this map: it
    /// holds one reclamation guard and one seek-record scratch across
    /// many operations, re-pinning periodically so reclamation still
    /// progresses. The fastest way to drive a hot loop from one thread.
    pub fn handle(&self) -> MapHandle<'_, K, V, R> {
        MapHandle::new(self)
    }
}

impl<K, V, R> Default for NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V, R: Reclaim> Drop for NmTreeMap<K, V, R> {
    fn drop(&mut self) {
        // Exclusive access: free every node still reachable from the
        // root. Nodes already retired are unreachable from the root and
        // are handled by the reclaimer's own drop (which runs after this,
        // field order) or by straggling deferrals against the Arc-kept
        // arena.
        // SAFETY: `&mut self` gives exclusive ownership of the reachable
        // subtree, and every reachable node owns all its entries.
        unsafe { node::free_subtree(self.root, &self.pool) };
    }
}

impl<K, V, R> std::fmt::Debug for NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NmTreeMap")
            .field("tag_mode", &self.tag_mode)
            .field("restart", &self.restart)
            .field("leaf_cap", &self.leaf_cap)
            .finish_non_exhaustive()
    }
}
