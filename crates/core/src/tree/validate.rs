//! Structural validation and exclusive-access utilities.
//!
//! These methods require `&mut self` — i.e. provable quiescence — and are
//! meant for tests, debugging and snapshotting. In a quiescent tree
//! every operation has completed, so no reachable edge may still carry a
//! flag or tag; validation checks that along with the BST ordering and
//! external-tree shape the proof of §3.3 relies on.

use super::NmTreeMap;
use crate::key::Key;
use crate::node::{self, Node};
use nmbst_reclaim::Reclaim;

/// Shape summary returned by a successful
/// [`check_invariants`](NmTreeMap::check_invariants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Number of user keys (entries summed across all leaf blocks).
    pub user_keys: usize,
    /// Number of internal (routing) nodes, sentinels included.
    pub internal_nodes: usize,
    /// Number of leaf nodes (blocks and sentinels alike — a block of 8
    /// entries counts once).
    pub leaf_nodes: usize,
    /// Longest root-to-leaf path, in edges. Entries inside a block add
    /// no depth: this is the pointer-chase depth a descent pays, the
    /// same quantity the `max_depth` metrics gauge tracks.
    pub max_depth: usize,
}

impl<K, V, R> NmTreeMap<K, V, R>
where
    K: Ord + Send + Sync + 'static,
    V: Send + Sync + 'static,
    R: Reclaim,
{
    /// Validates every structural invariant of the quiescent tree:
    ///
    /// 1. the sentinel scaffolding of Figure 3 is intact,
    /// 2. no reachable edge carries a flag or tag,
    /// 3. every node is either a leaf (two null children) or internal
    ///    (two non-null children),
    /// 4. BST order: left-subtree keys `<` node key `≤` right-subtree
    ///    keys,
    /// 5. every internal node has exactly two children (external-tree
    ///    shape),
    /// 6. leaf-block invariants: entries strictly ascending, occupancy
    ///    between 1 and this tree's `leaf_cap` for user blocks and 0 for
    ///    sentinels, the block's routing key equal to its largest entry,
    ///    and every entry inside the key window its position implies
    ///    (blocks of neighbouring subtrees are disjoint).
    ///
    /// Returns the tree's shape on success, a description of the first
    /// violation otherwise.
    pub fn check_invariants(&mut self) -> Result<TreeShape, String> {
        let leaf_cap = self.leaf_cap;
        // SAFETY: exclusive access throughout.
        unsafe {
            let arena = &*self.pool;
            let root = self.root;
            if (*root).key != Key::Inf2 {
                return Err("root key is not ∞₂".into());
            }
            let root_right = (*root).right.load_mut(arena);
            if root_right.marked() {
                return Err("edge R→leaf(∞₂) is marked".into());
            }
            let r_leaf = root_right.ptr();
            if r_leaf.is_null() || !(*r_leaf).is_leaf() || (*r_leaf).key != Key::Inf2 {
                return Err("right child of R is not the ∞₂ sentinel leaf".into());
            }
            let root_left = (*root).left.load_mut(arena);
            if root_left.marked() {
                return Err("edge R→S is marked".into());
            }
            let s = root_left.ptr();
            if s.is_null() || (*s).key != Key::Inf1 {
                return Err("left child of R is not the sentinel S (∞₁)".into());
            }

            let mut shape = TreeShape {
                user_keys: 0,
                internal_nodes: 0,
                leaf_nodes: 0,
                max_depth: 0,
            };
            // Iterative DFS with ordering bounds: (node, lower, upper,
            // depth); bounds are exclusive below / inclusive above in the
            // external-BST sense (left < key ≤ right).
            type Bound<'a, K> = Option<&'a Key<K>>;
            type Frame<'a, K, V> = (*mut Node<K, V>, Bound<'a, K>, Bound<'a, K>, usize);
            let mut stack: Vec<Frame<'_, K, V>> = vec![(root, None, None, 0)];
            while let Some((n, low, high, depth)) = stack.pop() {
                shape.max_depth = shape.max_depth.max(depth);
                let key = &(*n).key;
                if let Some(low) = low {
                    if key < low {
                        return Err(format!("ordering violated: a key sits left of its lower bound at depth {depth}"));
                    }
                }
                if let Some(high) = high {
                    if key >= high {
                        return Err(format!("ordering violated: a key sits at/above its upper bound at depth {depth}"));
                    }
                }
                let left = (*n).left.load_mut(arena);
                let right = (*n).right.load_mut(arena);
                if left.marked() || right.marked() {
                    return Err(format!(
                        "marked edge reachable in quiescent tree at depth {depth}"
                    ));
                }
                match (left.ptr().is_null(), right.ptr().is_null()) {
                    (true, true) => {
                        shape.leaf_nodes += 1;
                        let entries = (*n).entry_keys();
                        match key {
                            Key::Fin(_) => {
                                if entries.is_empty() {
                                    return Err("user leaf block with zero entries".into());
                                }
                            }
                            _ => {
                                if !entries.is_empty() {
                                    return Err("sentinel leaf carries entries".into());
                                }
                            }
                        }
                        if entries.len() > leaf_cap {
                            return Err(format!(
                                "block occupancy {} above leaf_cap {leaf_cap}",
                                entries.len()
                            ));
                        }
                        if entries.windows(2).any(|w| w[0] >= w[1]) {
                            return Err(format!(
                                "block entries not strictly ascending at depth {depth}"
                            ));
                        }
                        if let Some(last) = entries.last() {
                            // Router = max entry, so sibling blocks stay
                            // disjoint and router-consistent.
                            if !key.is_user(last) {
                                return Err(format!(
                                    "block routing key is not its largest entry at depth {depth}"
                                ));
                            }
                            // Sortedness makes the first/last entries the
                            // extremes; the router bound check above
                            // already pinned the router (= max) inside
                            // [low, high), so only the low side remains.
                            let first = &entries[0];
                            if let Some(low) = low {
                                if low.cmp_user(first) == std::cmp::Ordering::Greater {
                                    return Err(format!(
                                        "block entry below its subtree's lower bound at depth {depth}"
                                    ));
                                }
                            }
                        }
                        shape.user_keys += entries.len();
                    }
                    (false, false) => {
                        shape.internal_nodes += 1;
                        if (*n).len() != 0 {
                            return Err("internal node carries entries".into());
                        }
                        // Left strictly below `key`; right at/above it.
                        stack.push((left.ptr(), low, Some(&(*n).key), depth + 1));
                        stack.push((right.ptr(), Some(&(*n).key), high, depth + 1));
                    }
                    _ => {
                        return Err(format!(
                            "node with exactly one child at depth {depth} (tree must be external)"
                        ));
                    }
                }
            }
            // External tree: #internal = #leaves - 1.
            if shape.internal_nodes + 1 != shape.leaf_nodes {
                return Err(format!(
                    "external-shape violation: {} internal vs {} leaves",
                    shape.internal_nodes, shape.leaf_nodes
                ));
            }
            Ok(shape)
        }
    }

    /// Exact number of keys. Exclusive access; `O(n)`.
    pub fn len(&mut self) -> usize {
        let mut n = 0;
        self.for_each(|_, _| n += 1);
        n
    }

    /// All keys in ascending order (exact snapshot; exclusive access).
    pub fn keys(&mut self) -> Vec<K>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        self.for_each(|k, _| out.push(k.clone()));
        out
    }

    /// Removes every key, resetting the tree to the empty sentinel shape
    /// and freeing all user nodes immediately (their arena slots return
    /// to this tree's pool).
    pub fn clear(&mut self) {
        // SAFETY: exclusive access; rebuild from scratch.
        unsafe {
            node::free_subtree(self.root, &self.pool);
        }
        self.root = node::sentinel_tree(&mut crate::pool::NodeCache::direct(&self.pool));
    }
}

#[cfg(test)]
mod tests {
    use crate::{NmTreeMap, TreeConfig};
    use nmbst_reclaim::Ebr;

    type Map = NmTreeMap<i64, i64, Ebr>;

    #[test]
    fn empty_tree_is_valid() {
        let mut map = Map::new();
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 0);
        assert_eq!(shape.leaf_nodes, 3);
        assert_eq!(shape.internal_nodes, 2);
        assert_eq!(shape.max_depth, 2);
    }

    #[test]
    fn shape_after_inserts() {
        let mut map = Map::new();
        for k in 0..100 {
            map.insert(k, k);
        }
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 100);
        // Ascending inserts pack full blocks of LEAF_CAP = 8: 13 blocks
        // (12 full + one of 4) + 3 sentinel leaves, each block creation
        // having added one internal to the 2 sentinel internals.
        assert_eq!(shape.leaf_nodes, 16);
        assert_eq!(shape.internal_nodes, 15);
    }

    #[test]
    fn shape_after_inserts_cap1_matches_paper_arithmetic() {
        let mut map: NmTreeMap<i64, i64, Ebr> =
            NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(1));
        for k in 0..100 {
            map.insert(k, k);
        }
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 100);
        // External tree at cap 1: each insert adds one internal + one leaf.
        assert_eq!(shape.leaf_nodes, 103);
        assert_eq!(shape.internal_nodes, 102);
    }

    #[test]
    fn shape_after_churn() {
        let mut map = Map::new();
        for k in 0..200 {
            map.insert(k, k);
        }
        for k in (0..200).step_by(2) {
            assert!(map.remove(&k));
        }
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 100);
        assert_eq!(map.len(), 100);
        assert_eq!(
            map.keys(),
            (0..200).filter(|k| k % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut map = Map::new();
        for k in 0..50 {
            map.insert(k, k);
        }
        map.clear();
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 0);
        assert!(map.is_empty());
        // Usable after clear.
        assert!(map.insert(1, 1));
        assert!(map.contains(&1));
    }

    #[test]
    fn sorted_inserts_make_degenerate_but_valid_tree() {
        let mut map: NmTreeMap<i64, i64, Ebr> =
            NmTreeMap::with_config(TreeConfig::default().with_leaf_cap(1));
        for k in 0..1000 {
            map.insert(k, k);
        }
        let shape = map.check_invariants().unwrap();
        assert!(shape.max_depth >= 1000, "expected a deep spine");
    }

    #[test]
    fn fat_leaves_compress_the_degenerate_spine() {
        // The same adversarial stream at the default cap: one spine node
        // per *block*, so the pointer-chase depth shrinks ~8×.
        let mut map = Map::new();
        for k in 0..1000 {
            map.insert(k, k);
        }
        let shape = map.check_invariants().unwrap();
        assert_eq!(shape.user_keys, 1000);
        assert!(
            shape.max_depth <= 1000 / 8 + 8,
            "expected a block-compressed spine, got depth {}",
            shape.max_depth
        );
    }
}
